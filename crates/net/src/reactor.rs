//! The network front-end: a hand-rolled non-blocking reactor over
//! `std::net` that multiplexes wire connections onto a [`Backend`].
//!
//! One reactor thread owns the listener and every connection. All sockets
//! are in non-blocking mode; each sweep the reactor
//!
//! 1. accepts new connections (refusing with a retry-after frame past
//!    `max_connections`),
//! 2. reads from every connection round-robin under a per-sweep byte budget
//!    (per-client fairness: one firehose client cannot monopolize a sweep),
//! 3. parses complete frames, runs **admission control** — wire content-hash
//!    verification, per-client and global token buckets, route existence —
//!    and submits admitted requests to the backend without blocking,
//! 4. polls every in-flight ticket (the backend answers when ready),
//!    pumps the backend's own I/O once,
//! 5. flushes response bytes, again without blocking.
//!
//! The backend decides what "executing a request" means:
//! [`LocalBackend`] submits to an in-process gateway's bounded shard queues
//! (this is [`NetServer::bind`]); the `sesr-cluster` router backend forwards
//! frames to the worker process owning the request's hash arc
//! ([`NetServer::bind_with_backend`]). Either way, nothing in the loop ever
//! parks on a peer: a stalled client, a half-written frame or a dead
//! cluster member can delay only its own connection's buffers, never the
//! reactor.
//!
//! **Load shedding is structured, not silent.** A full shard queue, an
//! SLO-Unhealthy route, an exhausted token bucket or a degraded cluster arc
//! all produce a [`ResponseBody::RetryAfter`] reply carrying a backoff
//! hint — the connection stays open and the client decides when to come
//! back, instead of being dropped mid-stream.
//!
//! **Deadlines propagate from the wire.** A request's `deadline_ms` becomes
//! the gateway deadline; a job that expires while still queued is answered
//! [`ResponseBody::DeadlineExceeded`] without ever being handed to a
//! worker.

use crate::admission::TokenBucket;
use crate::backend::{Backend, BackendRequest, LocalBackend, Submit};
use crate::metrics::NetMetrics;
use crate::wire::{self, Frame, FrameDecode, ResponseBody, RetryReason, WireRequest, WireResponse};
use sesr_serve::{content_hash, GatewayClient};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Connection-table bound; further connections are answered with one
    /// retry-after frame and closed (default 64).
    pub max_connections: usize,
    /// Largest accepted frame payload in bytes (default 16 MiB).
    pub max_frame_payload: usize,
    /// Per-connection token bucket; `None` disables per-client limiting
    /// (default 256-token burst, 512/s sustained).
    pub per_client_limit: Option<crate::admission::RateLimit>,
    /// Listener-wide token bucket across all connections; `None` disables
    /// (default none).
    pub global_limit: Option<crate::admission::RateLimit>,
    /// In-flight requests per connection before the reactor stops parsing
    /// (and, buffers permitting, reading) that connection — admission-side
    /// backpressure (default 32).
    pub max_inflight_per_conn: usize,
    /// Bytes read per connection per sweep — the fairness quantum
    /// (default 64 KiB).
    pub read_budget: usize,
    /// Backoff hint in retry-after replies for queue-full/Unhealthy sheds;
    /// rate-limit sheds hint the exact token wait instead (default 25 ms).
    pub overload_retry_after: Duration,
    /// Sleep when a sweep made no progress at all (default 200 µs).
    pub idle_sleep: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 64,
            max_frame_payload: wire::DEFAULT_MAX_PAYLOAD,
            per_client_limit: Some(crate::admission::RateLimit::new(256, 512)),
            global_limit: None,
            max_inflight_per_conn: 32,
            read_budget: 64 * 1024,
            overload_retry_after: Duration::from_millis(25),
            idle_sleep: Duration::from_micros(200),
        }
    }
}

/// One request admitted to the backend and awaiting its reply.
struct Inflight {
    id: u64,
    ticket: u64,
    started: Instant,
}

/// Per-connection state owned by the reactor.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    inflight: Vec<Inflight>,
    bucket: Option<TokenBucket>,
    /// Protocol violation seen: close once the error reply is flushed.
    broken: bool,
    /// Remove this connection at the end of the sweep.
    dead: bool,
}

struct Reactor<B: Backend> {
    backend: B,
    config: NetConfig,
    metrics: NetMetrics,
    global_bucket: Option<TokenBucket>,
}

/// The running network front-end; owns the reactor thread.
///
/// When backed by a local gateway it holds a [`GatewayClient`] clone, so —
/// like a [`ReloadWatcher`](sesr_serve::ReloadWatcher) — call
/// [`NetServer::stop`] before `DefenseGateway::shutdown`, or the shutdown
/// join will wait. Dropping the handle without stopping also ends the
/// reactor (it notices the closed stop channel on its next sweep), but does
/// not wait for it.
pub struct NetServer {
    stop_tx: mpsc::Sender<()>,
    thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl NetServer {
    /// Bind `addr` (use port 0 to let the OS pick) and start the reactor
    /// serving `client`'s gateway through a [`LocalBackend`].
    ///
    /// # Errors
    ///
    /// Any I/O error binding or configuring the listener.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: NetConfig,
        client: GatewayClient,
    ) -> std::io::Result<NetServer> {
        let backend = LocalBackend::new(client, config.overload_retry_after);
        NetServer::bind_with_backend(addr, config, backend)
    }

    /// Bind `addr` and start the reactor serving an arbitrary [`Backend`] —
    /// this is how the cluster router tier embeds itself in the reactor.
    ///
    /// # Errors
    ///
    /// Any I/O error binding or configuring the listener.
    pub fn bind_with_backend(
        addr: impl ToSocketAddrs,
        config: NetConfig,
        backend: impl Backend,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::register(&backend.telemetry());
        let global_bucket = config
            .global_limit
            .map(|limit| TokenBucket::new(limit, Instant::now()));
        let mut reactor = Reactor {
            backend,
            config,
            metrics,
            global_bucket,
        };
        let (stop_tx, stop_rx) = mpsc::channel();
        let thread = std::thread::spawn(move || reactor.run(&listener, &stop_rx));
        Ok(NetServer {
            stop_tx,
            thread: Some(thread),
            local_addr,
        })
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True when the reactor thread has exited. A healthy server returns
    /// false until [`NetServer::stop`]; supervisors (like `sesr-netd`) poll
    /// this so a dead reactor becomes a visible failure instead of a
    /// listener that never answers.
    pub fn is_finished(&self) -> bool {
        self.thread
            .as_ref()
            .is_none_or(|thread| thread.is_finished())
    }

    /// Stop the reactor and join its thread. Connections are closed;
    /// replies still in flight are discarded.
    pub fn stop(mut self) {
        let _ = self.stop_tx.send(());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl<B: Backend> Reactor<B> {
    fn run(&mut self, listener: &TcpListener, stop_rx: &mpsc::Receiver<()>) {
        let mut conns: Vec<Conn> = Vec::new();
        let mut sweep: usize = 0;
        loop {
            match stop_rx.try_recv() {
                Ok(()) | Err(mpsc::TryRecvError::Disconnected) => break,
                Err(mpsc::TryRecvError::Empty) => {}
            }
            let mut progress = false;

            // 1. Accept.
            loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        progress = true;
                        self.accept(stream, &mut conns);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }

            // 2–3. Read + parse, round-robin from a rotating start so no
            // connection is structurally first in line every sweep.
            let count = conns.len();
            for k in 0..count {
                let conn = &mut conns[(sweep + k) % count];
                progress |= self.service_read(conn);
                progress |= self.parse_frames(conn);
            }

            // 4. Give the backend one I/O turn (a cluster router flushes
            // and reads its member connections here; a local gateway is a
            // no-op), then poll in-flight replies and flush.
            progress |= self.backend.pump();
            for conn in conns.iter_mut() {
                progress |= self.poll_inflight(conn);
                progress |= self.flush(conn);
            }

            // Reap.
            let mut i = 0;
            while i < conns.len() {
                if conns[i].dead {
                    let conn = conns.swap_remove(i);
                    self.metrics.closed.incr();
                    self.metrics.connections.add(-1);
                    self.metrics.inflight.add(-(conn.inflight.len() as i64));
                    for inflight in &conn.inflight {
                        self.backend.forget(inflight.ticket);
                    }
                    progress = true;
                } else {
                    i += 1;
                }
            }

            sweep = sweep.wrapping_add(1);
            if !progress {
                std::thread::sleep(self.config.idle_sleep);
            }
        }
        // Stop path: account for the connections being dropped so the
        // gauges return to zero and `net.closed` stays an honest total.
        for conn in conns {
            self.metrics.closed.incr();
            self.metrics.connections.add(-1);
            self.metrics.inflight.add(-(conn.inflight.len() as i64));
            for inflight in &conn.inflight {
                self.backend.forget(inflight.ticket);
            }
        }
    }

    fn accept(&mut self, stream: TcpStream, conns: &mut Vec<Conn>) {
        if conns.len() >= self.config.max_connections {
            // Best-effort structured refusal: one retry-after frame, then
            // the connection is closed. A client that sees it knows the
            // listener (not its route) is saturated.
            self.metrics.conn_rejected.incr();
            let refusal = wire::encode(&Frame::Response(WireResponse {
                id: 0,
                body: ResponseBody::RetryAfter {
                    retry_after_ms: self.retry_after_ms(self.config.overload_retry_after),
                    reason: RetryReason::Overloaded,
                },
            }));
            let mut stream = stream;
            let _ = stream.write(&refusal);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        self.metrics.accepted.incr();
        self.metrics.connections.add(1);
        self.metrics.accept_probe.observe(0, Duration::ZERO);
        conns.push(Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: Vec::new(),
            bucket: self
                .config
                .per_client_limit
                .map(|limit| TokenBucket::new(limit, Instant::now())),
            broken: false,
            dead: false,
        });
    }

    /// Read under the fairness budget; backpressure a connection that is at
    /// its in-flight cap *and* already has a frame's worth of bytes queued
    /// by leaving further bytes in the kernel buffer (TCP flow control does
    /// the rest).
    fn service_read(&mut self, conn: &mut Conn) -> bool {
        if conn.dead || conn.broken {
            return false;
        }
        let mut chunk = [0u8; 4096];
        let mut read_total = 0usize;
        while read_total < self.config.read_budget {
            if conn.inflight.len() >= self.config.max_inflight_per_conn
                && conn.read_buf.len() >= wire::HEADER_LEN + self.config.max_frame_payload
            {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    read_total += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if read_total > 0 {
            self.metrics.bytes_rx.add(read_total as u64);
        }
        read_total > 0
    }

    fn parse_frames(&mut self, conn: &mut Conn) -> bool {
        let mut progressed = false;
        while !conn.broken && conn.inflight.len() < self.config.max_inflight_per_conn {
            match wire::decode(&conn.read_buf, self.config.max_frame_payload) {
                Ok(FrameDecode::Incomplete { .. }) => break,
                Ok(FrameDecode::Complete { frame, consumed }) => {
                    conn.read_buf.drain(..consumed);
                    self.metrics.frames_rx.incr();
                    progressed = true;
                    self.handle_frame(conn, frame);
                }
                Err(err) => {
                    // The stream is unsynchronized: answer with a typed
                    // error frame, then close once it is flushed. This is
                    // deliberate — resynchronizing a length-prefixed stream
                    // after garbage is guesswork.
                    self.metrics.decode_errors.incr();
                    self.metrics.decode_probe.observe(0, Duration::ZERO);
                    self.queue_response(
                        conn,
                        WireResponse {
                            id: 0,
                            body: ResponseBody::InvalidRequest(err.to_string()),
                        },
                    );
                    conn.broken = true;
                    conn.read_buf.clear();
                    progressed = true;
                }
            }
        }
        progressed
    }

    fn handle_frame(&mut self, conn: &mut Conn, frame: Frame) {
        match frame {
            Frame::Request(request) => self.handle_request(conn, request),
            Frame::Stats { id } => {
                let json = self.backend.stats_json();
                conn.write_buf
                    .extend_from_slice(&wire::encode(&Frame::StatsReply { id, json }));
                self.metrics.frames_tx.incr();
            }
            Frame::Reload { id, route } => {
                let (ok, message) = match self.backend.reload(&route) {
                    Ok(message) => (true, message),
                    Err(message) => (false, message),
                };
                conn.write_buf
                    .extend_from_slice(&wire::encode(&Frame::ReloadReply { id, ok, message }));
                self.metrics.frames_tx.incr();
            }
            Frame::Response(_) | Frame::StatsReply { .. } | Frame::ReloadReply { .. } => {
                // Server-to-client frames arriving at the server are a
                // protocol violation.
                self.metrics.decode_errors.incr();
                self.queue_response(
                    conn,
                    WireResponse {
                        id: 0,
                        body: ResponseBody::InvalidRequest(
                            "client sent a server-side frame kind".to_string(),
                        ),
                    },
                );
                conn.broken = true;
            }
        }
    }

    fn handle_request(&mut self, conn: &mut Conn, request: WireRequest) {
        let WireRequest {
            id,
            route,
            deadline_ms,
            skip_cache,
            content_hash: claimed_hash,
            image,
        } = request;

        // Integrity: the wire hash must match the payload. This catches
        // corruption *and* keeps downstream cache keys (and the cluster's
        // hash-ring placement) honest.
        if content_hash(&image, "") != claimed_hash {
            self.metrics.hash_mismatch.incr();
            self.queue_response(
                conn,
                WireResponse {
                    id,
                    body: ResponseBody::InvalidRequest(
                        "content hash does not match the image payload".to_string(),
                    ),
                },
            );
            return;
        }

        // Rate limiting: the client's own bucket first, then the listener's
        // global one. (A request that passes the per-client check but loses
        // the global race has spent a client token — acceptable: the global
        // bucket only engages when the listener as a whole is saturated.)
        let now = Instant::now();
        let denied = conn
            .bucket
            .as_ref()
            .and_then(|bucket| bucket.try_acquire_at(now).err())
            .or_else(|| {
                self.global_bucket
                    .as_ref()
                    .and_then(|bucket| bucket.try_acquire_at(now).err())
            });
        if let Some(wait) = denied {
            self.metrics.shed_rate_limit.incr();
            self.metrics.shed_probe.observe(id, wait);
            self.queue_response(
                conn,
                WireResponse {
                    id,
                    body: ResponseBody::RetryAfter {
                        retry_after_ms: self.retry_after_ms(wait),
                        reason: RetryReason::RateLimited,
                    },
                },
            );
            return;
        }

        // Route existence: empty label = the backend's default.
        if !route.is_empty() && !self.backend.has_route(&route) {
            self.queue_response(
                conn,
                WireResponse {
                    id,
                    body: ResponseBody::UnknownRoute(route),
                },
            );
            return;
        }

        match self.backend.submit(BackendRequest {
            route,
            deadline_ms,
            skip_cache,
            content_hash: claimed_hash,
            image,
        }) {
            Submit::Ticket(ticket) => {
                self.metrics.admitted.incr();
                self.metrics.inflight.add(1);
                conn.inflight.push(Inflight {
                    id,
                    ticket,
                    started: now,
                });
            }
            Submit::Reply(body) => {
                self.note_reply(id, &body);
                self.queue_response(conn, WireResponse { id, body });
            }
        }
    }

    /// Account for a backend-produced shed reply: overload sheds (whatever
    /// their origin — full queue, Unhealthy route, degraded cluster arc)
    /// and relayed deadline misses keep the same `net.*` counters the
    /// gateway-backed reactor always had.
    fn note_reply(&self, id: u64, body: &ResponseBody) {
        match body {
            ResponseBody::RetryAfter { retry_after_ms, .. } => {
                self.metrics.shed_overload.incr();
                self.metrics
                    .shed_probe
                    .observe(id, Duration::from_millis(u64::from(*retry_after_ms)));
            }
            ResponseBody::DeadlineExceeded => self.metrics.deadline_exceeded.incr(),
            _ => {}
        }
    }

    fn poll_inflight(&mut self, conn: &mut Conn) -> bool {
        let mut progressed = false;
        let mut i = 0;
        while i < conn.inflight.len() {
            match self.backend.poll(conn.inflight[i].ticket) {
                Some(body) => {
                    let inflight = conn.inflight.swap_remove(i);
                    self.metrics
                        .request_probe
                        .observe(inflight.id, inflight.started.elapsed());
                    self.metrics.inflight.add(-1);
                    self.note_reply(inflight.id, &body);
                    self.queue_response(
                        conn,
                        WireResponse {
                            id: inflight.id,
                            body,
                        },
                    );
                    progressed = true;
                }
                None => i += 1,
            }
        }
        progressed
    }

    fn queue_response(&mut self, conn: &mut Conn, response: WireResponse) {
        conn.write_buf
            .extend_from_slice(&wire::encode(&Frame::Response(response)));
        self.metrics.frames_tx.incr();
    }

    fn flush(&mut self, conn: &mut Conn) -> bool {
        if conn.write_pos >= conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            if conn.broken {
                conn.dead = true;
            }
            return false;
        }
        let mut wrote = 0usize;
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    wrote += n;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.write_pos >= conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            if conn.broken {
                conn.dead = true;
            }
        }
        if wrote > 0 {
            self.metrics.bytes_tx.add(wrote as u64);
        }
        wrote > 0
    }

    fn retry_after_ms(&self, wait: Duration) -> u32 {
        u32::try_from(wait.as_millis().max(1)).unwrap_or(u32::MAX)
    }
}
