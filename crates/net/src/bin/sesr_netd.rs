//! `sesr-netd` — stand up a defense gateway behind the network front-end.
//!
//! ```text
//! sesr-netd [flags]
//!
//!   --addr HOST:PORT        bind address (default 127.0.0.1:0 = OS-chosen
//!                           port; the bound address is printed either way)
//!   --workers N             worker threads per route (default 2)
//!   --queue-capacity N      bounded submission queue per route (default 64)
//!   --cache-capacity N      LRU output-cache entries (default 256)
//!   --max-connections N     connection-table bound (default 64)
//!   --per-client B:R        per-connection token bucket, burst B refilled
//!                           at R tokens/s (default 256:512; 0:0 disables)
//!   --global B:R            listener-wide bucket (default disabled)
//!   --telemetry PATH        export the telemetry snapshot to PATH once a
//!                           second (readable live with sesr-top)
//!   --max-runtime-secs N    exit cleanly after N seconds (CI harnesses;
//!                           default: run until killed)
//! ```
//!
//! The gateway serves three interpolation routes — cheap enough that the
//! front-end, not the SR math, is what a loopback driver measures:
//!
//! ```text
//! nearest-neighbor:x2:raw                 (default route)
//! bicubic:x2:raw
//! nearest-neighbor:x2:jpeg75+wavelet2     (full paper preprocessing)
//! ```
//!
//! Every flag may be given at most once; unknown or duplicate flags are a
//! usage error (exit 2).

#![forbid(unsafe_code)]

use sesr_defense::pipeline::PreprocessConfig;
use sesr_models::SrModelKind;
use sesr_net::{NetConfig, NetServer, RateLimit};
use sesr_serve::{GatewayBuilder, RouteConfig, RouteKey};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: sesr-netd [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
         [--cache-capacity N] [--max-connections N] [--per-client B:R] [--global B:R] \
         [--telemetry PATH] [--max-runtime-secs N]"
    );
    std::process::exit(2);
}

struct Args {
    addr: String,
    workers: usize,
    queue_capacity: usize,
    cache_capacity: usize,
    max_connections: usize,
    per_client: Option<RateLimit>,
    global: Option<RateLimit>,
    telemetry: Option<String>,
    max_runtime: Option<Duration>,
}

/// Parse `BURST:RATE` into a limit; `0:0` means "disabled".
fn parse_limit(flag: &str, value: &str) -> Option<RateLimit> {
    let Some((burst, rate)) = value.split_once(':') else {
        eprintln!("{flag} needs BURST:RATE (e.g. 256:512)");
        usage()
    };
    match (burst.parse::<u64>(), rate.parse::<u64>()) {
        (Ok(0), Ok(0)) => None,
        (Ok(burst), Ok(rate)) if burst > 0 => Some(RateLimit::new(burst, rate)),
        _ => {
            eprintln!("{flag} needs BURST:RATE with a positive burst (or 0:0 to disable)");
            usage()
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        cache_capacity: 256,
        max_connections: 64,
        per_client: Some(RateLimit::new(256, 512)),
        global: None,
        telemetry: None,
        max_runtime: None,
    };
    let mut seen: Vec<String> = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        if seen.contains(&arg) {
            eprintln!("{arg} given twice");
            usage()
        }
        seen.push(arg.clone());
        let mut value = || match iter.next() {
            Some(value) => value,
            None => {
                eprintln!("{arg} needs a value");
                usage()
            }
        };
        let parse_usize = |flag: &str, value: String| match value.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer");
                usage()
            }
        };
        match arg.as_str() {
            "--addr" => args.addr = value(),
            "--workers" => args.workers = parse_usize("--workers", value()),
            "--queue-capacity" => args.queue_capacity = parse_usize("--queue-capacity", value()),
            "--cache-capacity" => args.cache_capacity = parse_usize("--cache-capacity", value()),
            "--max-connections" => args.max_connections = parse_usize("--max-connections", value()),
            "--per-client" => args.per_client = parse_limit("--per-client", &value()),
            "--global" => args.global = parse_limit("--global", &value()),
            "--telemetry" => args.telemetry = Some(value()),
            "--max-runtime-secs" => {
                args.max_runtime = Some(Duration::from_secs(parse_usize(
                    "--max-runtime-secs",
                    value(),
                ) as u64))
            }
            _ => {
                eprintln!("unknown flag {arg}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();

    let nearest = RouteKey::new(SrModelKind::NearestNeighbor, 2, PreprocessConfig::none());
    let bicubic = RouteKey::new(SrModelKind::Bicubic, 2, PreprocessConfig::none());
    let paper = RouteKey::paper(SrModelKind::NearestNeighbor, 2);
    let route_config = RouteConfig {
        num_workers: args.workers,
        queue_capacity: args.queue_capacity,
        ..RouteConfig::default()
    };
    let gateway = match GatewayBuilder::new()
        .route_with(nearest, route_config.clone())
        .route_with(bicubic, route_config.clone())
        .route_with(paper, route_config)
        .default_route(nearest)
        .cache_capacity(args.cache_capacity)
        .build()
    {
        Ok(gateway) => gateway,
        Err(err) => {
            eprintln!("cannot build gateway: {err}");
            std::process::exit(1);
        }
    };
    let client = gateway.client();

    let exporter = args.telemetry.as_ref().map(|path| {
        match client.export_telemetry(path, Duration::from_secs(1)) {
            Ok(exporter) => exporter,
            Err(err) => {
                eprintln!("cannot export telemetry to {path}: {err}");
                std::process::exit(1);
            }
        }
    });

    let config = NetConfig {
        max_connections: args.max_connections,
        per_client_limit: args.per_client,
        global_limit: args.global,
        ..NetConfig::default()
    };
    let server = match NetServer::bind(&args.addr, config, client) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cannot bind {}: {err}", args.addr);
            std::process::exit(1);
        }
    };
    // The harness contract: exactly one "listening on ADDR" line on stdout,
    // flushed before traffic starts (CI greps the port out of it).
    println!("listening on {}", server.local_addr());
    for route in server_routes() {
        println!("route {route}");
    }
    println!("default route {nearest}");

    let deadline = args
        .max_runtime
        .map(|runtime| std::time::Instant::now() + runtime);
    loop {
        if server.is_finished() {
            eprintln!("reactor thread exited unexpectedly");
            std::process::exit(1);
        }
        if deadline.is_some_and(|deadline| std::time::Instant::now() >= deadline) {
            break;
        }
        std::thread::sleep(Duration::from_millis(250));
    }

    server.stop();
    if let Some(exporter) = exporter {
        if let Err(err) = exporter.stop() {
            eprintln!("telemetry export error: {err}");
        }
    }
    gateway.shutdown();
    println!("clean shutdown");
}

fn server_routes() -> [RouteKey; 3] {
    [
        RouteKey::new(SrModelKind::NearestNeighbor, 2, PreprocessConfig::none()),
        RouteKey::new(SrModelKind::Bicubic, 2, PreprocessConfig::none()),
        RouteKey::paper(SrModelKind::NearestNeighbor, 2),
    ]
}
