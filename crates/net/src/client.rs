//! A small blocking client for the SESR wire protocol.
//!
//! [`NetClient`] owns one TCP connection and a reassembly buffer. Sending is
//! fire-and-forget ([`NetClient::send_request`] / [`NetClient::send_stats`]);
//! receiving is pull-based ([`NetClient::recv`] with a timeout), so a caller
//! can pipeline many requests and collect the out-of-order replies — exactly
//! what the open-loop traffic generator needs. [`NetClient::defend`] wraps
//! the common one-request / wait-for-its-reply case.
//!
//! **Connection loss is typed, and recovery is built in.** Socket-level
//! resets surface as [`NetError::ConnectionLost`] (never a raw `io::Error`
//! the caller has to pattern-match on kind), the client remembers its peer
//! address so [`NetClient::reconnect`] can re-dial it with exponential
//! backoff, and [`NetClient::defend_with_retry`] folds the whole loop —
//! reconnect on loss, honor `RetryAfter` backoff hints — into one call.
//! The cluster supervisor's health probes and the examples use these
//! instead of hand-rolling retry loops.

use crate::wire::{self, Frame, FrameDecode, WireError, WireRequest, WireResponse};
use sesr_serve::content_hash;
use sesr_tensor::Tensor;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure talking to a [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure that is not a lost connection (address errors,
    /// permission errors, …).
    Io(std::io::Error),
    /// The transport dropped mid-conversation (reset, broken pipe,
    /// refused re-dial) — the typed signal that a
    /// [`NetClient::reconnect`] is worth attempting.
    ConnectionLost(String),
    /// The server sent bytes that do not decode as a frame.
    Wire(WireError),
    /// The server closed the connection cleanly (EOF).
    Disconnected,
    /// No frame arrived within the allowed wait.
    TimedOut,
}

impl NetError {
    /// True when the connection is gone (cleanly or not) and a reconnect
    /// could help; false for timeouts, protocol garbage and other I/O.
    pub fn is_connection_lost(&self) -> bool {
        matches!(self, NetError::ConnectionLost(_) | NetError::Disconnected)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "socket error: {err}"),
            NetError::ConnectionLost(detail) => write!(f, "connection lost: {detail}"),
            NetError::Wire(err) => write!(f, "protocol error: {err}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
            NetError::TimedOut => write!(f, "timed out waiting for a frame"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match err.kind() {
            ErrorKind::BrokenPipe
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::ConnectionRefused
            | ErrorKind::NotConnected
            | ErrorKind::UnexpectedEof => NetError::ConnectionLost(err.to_string()),
            _ => NetError::Io(err),
        }
    }
}

impl From<WireError> for NetError {
    fn from(err: WireError) -> Self {
        NetError::Wire(err)
    }
}

/// Exponential-backoff schedule for dialing (and re-dialing) a server.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Connection attempts before giving up (default 5).
    pub max_attempts: u32,
    /// Wait after the first failure (default 50 ms); doubles per attempt.
    pub initial_backoff: Duration,
    /// Backoff ceiling (default 1 s).
    pub max_backoff: Duration,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl ReconnectPolicy {
    /// The wait before attempt `attempt` (0-based): exponential from
    /// [`ReconnectPolicy::initial_backoff`], capped at
    /// [`ReconnectPolicy::max_backoff`]. Attempt 0 waits nothing.
    pub fn backoff(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1).min(16);
        self.initial_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
    }
}

/// Options for building a [`WireRequest`] without spelling the struct out.
#[derive(Debug, Clone, Default)]
pub struct RequestOptions {
    /// Route label; empty = the server's default route.
    pub route: String,
    /// Soft deadline in ms from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// Bypass the server's output cache.
    pub skip_cache: bool,
}

/// One blocking connection to a network front-end.
pub struct NetClient {
    stream: TcpStream,
    peer: SocketAddr,
    read_buf: Vec<u8>,
    pending: VecDeque<Frame>,
    max_payload: usize,
    next_id: u64,
}

impl NetClient {
    /// Connect to `addr`.
    ///
    /// # Errors
    ///
    /// Any I/O error connecting or configuring the socket.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(NetClient {
            stream,
            peer,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            max_payload: wire::DEFAULT_MAX_PAYLOAD,
            next_id: 1,
        })
    }

    /// Connect to `addr`, retrying with `policy`'s exponential backoff —
    /// for dialing a server that is still starting (or restarting).
    ///
    /// # Errors
    ///
    /// The last attempt's error once `policy.max_attempts` is exhausted.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        policy: &ReconnectPolicy,
    ) -> Result<NetClient, NetError> {
        let mut last: Option<NetError> = None;
        for attempt in 0..policy.max_attempts.max(1) {
            std::thread::sleep(policy.backoff(attempt));
            match NetClient::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(err) => last = Some(err.into()),
            }
        }
        Err(last.unwrap_or(NetError::TimedOut))
    }

    /// The address this client dialed (and re-dials on
    /// [`NetClient::reconnect`]).
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Drop the broken transport and re-dial the remembered peer address
    /// with `policy`'s backoff. Buffered partial frames and unclaimed
    /// replies are discarded (they belonged to the dead connection);
    /// correlation ids keep counting, so replies cannot alias across the
    /// reconnect.
    ///
    /// # Errors
    ///
    /// The last attempt's error once `policy.max_attempts` is exhausted;
    /// the client keeps its old (dead) transport in that case.
    pub fn reconnect(&mut self, policy: &ReconnectPolicy) -> Result<(), NetError> {
        let fresh = NetClient::connect_with_retry(self.peer, policy)?;
        self.stream = fresh.stream;
        self.read_buf.clear();
        self.pending.clear();
        Ok(())
    }

    /// Build a request for `image` with a fresh correlation id; the content
    /// hash is computed here so the server's integrity check passes.
    pub fn make_request(&mut self, image: Tensor, options: &RequestOptions) -> WireRequest {
        let id = self.next_id;
        self.next_id += 1;
        WireRequest {
            id,
            route: options.route.clone(),
            deadline_ms: options.deadline_ms,
            skip_cache: options.skip_cache,
            content_hash: content_hash(&image, ""),
            image,
        }
    }

    /// Write one request frame; replies arrive via [`NetClient::recv`].
    ///
    /// # Errors
    ///
    /// Socket-level write failure ([`NetError::ConnectionLost`] when the
    /// transport dropped).
    pub fn send_request(&mut self, request: &WireRequest) -> Result<(), NetError> {
        let bytes = wire::encode(&Frame::Request(request.clone()));
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Ask for the server's telemetry snapshot; returns the correlation id
    /// the eventual [`Frame::StatsReply`] will echo.
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn send_stats(&mut self) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&wire::encode(&Frame::Stats { id }))?;
        Ok(id)
    }

    /// Receive the next frame, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::TimedOut`] if no whole frame arrives in time,
    /// [`NetError::Disconnected`] on EOF, [`NetError::Wire`] on garbage.
    pub fn recv(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        self.recv_from_socket(Instant::now() + timeout)
    }

    /// Receive the next frame from the socket itself, bypassing the reorder
    /// buffer. The selective receivers ([`NetClient::recv_response`],
    /// [`NetClient::stats`]) must use this: pulling from the reorder buffer
    /// while also pushing non-matching frames back into it would cycle the
    /// buffer forever without ever reading the wire.
    fn recv_from_socket(&mut self, deadline: Instant) -> Result<Frame, NetError> {
        let mut chunk = [0u8; 4096];
        loop {
            match wire::decode(&self.read_buf, self.max_payload)? {
                FrameDecode::Complete { frame, consumed } => {
                    self.read_buf.drain(..consumed);
                    return Ok(frame);
                }
                FrameDecode::Incomplete { .. } => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::TimedOut);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::TimedOut);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Receive until the response with `id` arrives (other frames are
    /// buffered for later [`NetClient::recv`] calls), within `timeout`
    /// overall.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn recv_response(&mut self, id: u64, timeout: Duration) -> Result<WireResponse, NetError> {
        // Serve from the reorder buffer first.
        if let Some(at) = self
            .pending
            .iter()
            .position(|frame| matches!(frame, Frame::Response(response) if response.id == id))
        {
            if let Some(Frame::Response(response)) = self.pending.remove(at) {
                return Ok(response);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::TimedOut);
            }
            match self.recv_from_socket(deadline)? {
                Frame::Response(response) if response.id == id => return Ok(response),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Send one request for `image` and block for its reply.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn defend(
        &mut self,
        image: Tensor,
        options: &RequestOptions,
        timeout: Duration,
    ) -> Result<WireResponse, NetError> {
        let request = self.make_request(image, options);
        self.send_request(&request)?;
        self.recv_response(request.id, timeout)
    }

    /// [`NetClient::defend`] with recovery: a lost connection triggers a
    /// backoff reconnect and a resend, and a
    /// [`RetryAfter`](crate::ResponseBody::RetryAfter) reply sleeps its
    /// hinted delay (capped at `policy.max_backoff`) and resends. At most
    /// `policy.max_attempts` sends in total.
    ///
    /// # Errors
    ///
    /// The terminal error (or the last `RetryAfter` response is returned
    /// as `Ok` once attempts run out — the caller sees the structured shed
    /// rather than a synthetic failure).
    pub fn defend_with_retry(
        &mut self,
        image: Tensor,
        options: &RequestOptions,
        timeout: Duration,
        policy: &ReconnectPolicy,
    ) -> Result<WireResponse, NetError> {
        let mut last_err: Option<NetError> = None;
        for _attempt in 0..policy.max_attempts.max(1) {
            match self.defend(image.clone(), options, timeout) {
                Ok(response) => match response.body {
                    wire::ResponseBody::RetryAfter { retry_after_ms, .. } => {
                        last_err = None;
                        std::thread::sleep(
                            Duration::from_millis(u64::from(retry_after_ms))
                                .min(policy.max_backoff),
                        );
                        // Fall through to the next attempt; the final
                        // attempt's shed is returned below.
                        if _attempt + 1 == policy.max_attempts.max(1) {
                            return Ok(response);
                        }
                    }
                    _ => return Ok(response),
                },
                Err(err) if err.is_connection_lost() => {
                    last_err = Some(err);
                    self.reconnect(policy)?;
                }
                Err(err) => return Err(err),
            }
        }
        // Attempts exhausted with the connection repeatedly lost.
        match self.defend(image, options, timeout) {
            Ok(response) => Ok(response),
            Err(err) => Err(last_err.unwrap_or(err)),
        }
    }

    /// Fetch the server's telemetry snapshot JSON.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn stats(&mut self, timeout: Duration) -> Result<String, NetError> {
        let want = self.send_stats()?;
        let deadline = Instant::now() + timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::TimedOut);
            }
            match self.recv_from_socket(deadline)? {
                Frame::StatsReply { id, json } if id == want => return Ok(json),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Ask the server to hot-reload `route` (empty = every reloadable
    /// route) and block for the outcome: `(ok, message)`. The cluster
    /// supervisor's reload fan-out is built on this.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn reload(&mut self, route: &str, timeout: Duration) -> Result<(bool, String), NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&wire::encode(&Frame::Reload {
            id,
            route: route.to_string(),
        }))?;
        let deadline = Instant::now() + timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::TimedOut);
            }
            match self.recv_from_socket(deadline)? {
                Frame::ReloadReply {
                    id: got,
                    ok,
                    message,
                } if got == id => return Ok((ok, message)),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Write raw bytes to the socket — for tests that need to speak
    /// malformed protocol on purpose.
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_classify_connection_loss() {
        use std::io::{Error, ErrorKind};
        for kind in [
            ErrorKind::BrokenPipe,
            ErrorKind::ConnectionReset,
            ErrorKind::ConnectionAborted,
            ErrorKind::ConnectionRefused,
            ErrorKind::NotConnected,
            ErrorKind::UnexpectedEof,
        ] {
            let err: NetError = Error::new(kind, "boom").into();
            assert!(
                matches!(err, NetError::ConnectionLost(_)),
                "{kind:?} must classify as ConnectionLost"
            );
            assert!(err.is_connection_lost());
        }
        let err: NetError = Error::new(ErrorKind::PermissionDenied, "boom").into();
        assert!(matches!(err, NetError::Io(_)));
        assert!(!err.is_connection_lost());
        assert!(NetError::Disconnected.is_connection_lost());
        assert!(!NetError::TimedOut.is_connection_lost());
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = ReconnectPolicy {
            max_attempts: 8,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(300),
        };
        assert_eq!(policy.backoff(0), Duration::ZERO);
        assert_eq!(policy.backoff(1), Duration::from_millis(50));
        assert_eq!(policy.backoff(2), Duration::from_millis(100));
        assert_eq!(policy.backoff(3), Duration::from_millis(200));
        assert_eq!(policy.backoff(4), Duration::from_millis(300));
        assert_eq!(policy.backoff(31), Duration::from_millis(300));
    }

    #[test]
    fn connect_with_retry_reports_the_last_error() {
        // A port nothing listens on: every attempt must fail fast with a
        // typed connection error, not a raw io::Error.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        let addr = listener.local_addr().expect("probe addr");
        drop(listener);
        let policy = ReconnectPolicy {
            max_attempts: 2,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        match NetClient::connect_with_retry(addr, &policy) {
            Err(NetError::ConnectionLost(_)) | Err(NetError::Io(_)) => {}
            Err(other) => panic!("expected a connect failure, got {other:?}"),
            Ok(_) => panic!("nothing listens on the probe port"),
        }
    }
}
