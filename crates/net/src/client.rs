//! A small blocking client for the SESR wire protocol.
//!
//! [`NetClient`] owns one TCP connection and a reassembly buffer. Sending is
//! fire-and-forget ([`NetClient::send_request`] / [`NetClient::send_stats`]);
//! receiving is pull-based ([`NetClient::recv`] with a timeout), so a caller
//! can pipeline many requests and collect the out-of-order replies — exactly
//! what the open-loop traffic generator needs. [`NetClient::defend`] wraps
//! the common one-request / wait-for-its-reply case.

use crate::wire::{self, Frame, FrameDecode, WireError, WireRequest, WireResponse};
use sesr_serve::content_hash;
use sesr_tensor::Tensor;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure talking to a [`NetServer`](crate::NetServer).
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode as a frame.
    Wire(WireError),
    /// The server closed the connection.
    Disconnected,
    /// No frame arrived within the allowed wait.
    TimedOut,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "socket error: {err}"),
            NetError::Wire(err) => write!(f, "protocol error: {err}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
            NetError::TimedOut => write!(f, "timed out waiting for a frame"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        NetError::Io(err)
    }
}

impl From<WireError> for NetError {
    fn from(err: WireError) -> Self {
        NetError::Wire(err)
    }
}

/// Options for building a [`WireRequest`] without spelling the struct out.
#[derive(Debug, Clone, Default)]
pub struct RequestOptions {
    /// Route label; empty = the server's default route.
    pub route: String,
    /// Soft deadline in ms from server receipt; 0 = none.
    pub deadline_ms: u32,
    /// Bypass the server's output cache.
    pub skip_cache: bool,
}

/// One blocking connection to a network front-end.
pub struct NetClient {
    stream: TcpStream,
    read_buf: Vec<u8>,
    pending: VecDeque<Frame>,
    max_payload: usize,
    next_id: u64,
}

impl NetClient {
    /// Connect to `addr`.
    ///
    /// # Errors
    ///
    /// Any I/O error connecting or configuring the socket.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient {
            stream,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            max_payload: wire::DEFAULT_MAX_PAYLOAD,
            next_id: 1,
        })
    }

    /// Build a request for `image` with a fresh correlation id; the content
    /// hash is computed here so the server's integrity check passes.
    pub fn make_request(&mut self, image: Tensor, options: &RequestOptions) -> WireRequest {
        let id = self.next_id;
        self.next_id += 1;
        WireRequest {
            id,
            route: options.route.clone(),
            deadline_ms: options.deadline_ms,
            skip_cache: options.skip_cache,
            content_hash: content_hash(&image, ""),
            image,
        }
    }

    /// Write one request frame; replies arrive via [`NetClient::recv`].
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn send_request(&mut self, request: &WireRequest) -> Result<(), NetError> {
        let bytes = wire::encode(&Frame::Request(request.clone()));
        self.stream.write_all(&bytes)?;
        Ok(())
    }

    /// Ask for the server's telemetry snapshot; returns the correlation id
    /// the eventual [`Frame::StatsReply`] will echo.
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn send_stats(&mut self) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&wire::encode(&Frame::Stats { id }))?;
        Ok(id)
    }

    /// Receive the next frame, waiting at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`NetError::TimedOut`] if no whole frame arrives in time,
    /// [`NetError::Disconnected`] on EOF, [`NetError::Wire`] on garbage.
    pub fn recv(&mut self, timeout: Duration) -> Result<Frame, NetError> {
        if let Some(frame) = self.pending.pop_front() {
            return Ok(frame);
        }
        self.recv_from_socket(Instant::now() + timeout)
    }

    /// Receive the next frame from the socket itself, bypassing the reorder
    /// buffer. The selective receivers ([`NetClient::recv_response`],
    /// [`NetClient::stats`]) must use this: pulling from the reorder buffer
    /// while also pushing non-matching frames back into it would cycle the
    /// buffer forever without ever reading the wire.
    fn recv_from_socket(&mut self, deadline: Instant) -> Result<Frame, NetError> {
        let mut chunk = [0u8; 4096];
        loop {
            match wire::decode(&self.read_buf, self.max_payload)? {
                FrameDecode::Complete { frame, consumed } => {
                    self.read_buf.drain(..consumed);
                    return Ok(frame);
                }
                FrameDecode::Incomplete { .. } => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::TimedOut);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Disconnected),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::TimedOut);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    /// Receive until the response with `id` arrives (other frames are
    /// buffered for later [`NetClient::recv`] calls), within `timeout`
    /// overall.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn recv_response(&mut self, id: u64, timeout: Duration) -> Result<WireResponse, NetError> {
        // Serve from the reorder buffer first.
        if let Some(at) = self
            .pending
            .iter()
            .position(|frame| matches!(frame, Frame::Response(response) if response.id == id))
        {
            if let Some(Frame::Response(response)) = self.pending.remove(at) {
                return Ok(response);
            }
        }
        let deadline = Instant::now() + timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::TimedOut);
            }
            match self.recv_from_socket(deadline)? {
                Frame::Response(response) if response.id == id => return Ok(response),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Send one request for `image` and block for its reply.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn defend(
        &mut self,
        image: Tensor,
        options: &RequestOptions,
        timeout: Duration,
    ) -> Result<WireResponse, NetError> {
        let request = self.make_request(image, options);
        self.send_request(&request)?;
        self.recv_response(request.id, timeout)
    }

    /// Fetch the server's telemetry snapshot JSON.
    ///
    /// # Errors
    ///
    /// As [`NetClient::recv`].
    pub fn stats(&mut self, timeout: Duration) -> Result<String, NetError> {
        let want = self.send_stats()?;
        let deadline = Instant::now() + timeout;
        loop {
            if Instant::now() >= deadline {
                return Err(NetError::TimedOut);
            }
            match self.recv_from_socket(deadline)? {
                Frame::StatsReply { id, json } if id == want => return Ok(json),
                other => self.pending.push_back(other),
            }
        }
    }

    /// Write raw bytes to the socket — for tests that need to speak
    /// malformed protocol on purpose.
    ///
    /// # Errors
    ///
    /// Socket-level write failure.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), NetError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }
}
