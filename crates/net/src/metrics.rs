//! The `net.*` metric namespace: counters, gauges and journal probes the
//! reactor publishes into the gateway's shared [`Telemetry`] hub, so wire
//! activity lands in the same snapshot as the per-route serving stages and
//! `sesr-top` renders both.

use sesr_telemetry::{Counter, Gauge, Level, Probe, Telemetry};
use std::sync::Arc;

/// Handles to every `net.*` metric the reactor records. Registered once at
/// server start; recording is lock-free.
pub struct NetMetrics {
    /// Connections accepted (`net.accepted`).
    pub accepted: Arc<Counter>,
    /// Connections closed, by either side (`net.closed`).
    pub closed: Arc<Counter>,
    /// Connections refused because the table was full (`net.conn_rejected`).
    pub conn_rejected: Arc<Counter>,
    /// Live connections right now (`net.connections`).
    pub connections: Arc<Gauge>,
    /// Requests in flight between admission and reply (`net.inflight`).
    pub inflight: Arc<Gauge>,
    /// Whole frames parsed off the wire (`net.frames_rx`).
    pub frames_rx: Arc<Counter>,
    /// Frames written to the wire (`net.frames_tx`).
    pub frames_tx: Arc<Counter>,
    /// Bytes read (`net.bytes_rx`) and written (`net.bytes_tx`).
    pub bytes_rx: Arc<Counter>,
    /// See [`NetMetrics::bytes_rx`].
    pub bytes_tx: Arc<Counter>,
    /// Requests admitted to a shard queue (`net.admitted`).
    pub admitted: Arc<Counter>,
    /// Retry-after replies for exhausted token buckets
    /// (`net.shed.rate_limit`).
    pub shed_rate_limit: Arc<Counter>,
    /// Retry-after replies for full queues / Unhealthy routes
    /// (`net.shed.overload`).
    pub shed_overload: Arc<Counter>,
    /// `DeadlineExceeded` replies relayed to the wire
    /// (`net.deadline_exceeded`).
    pub deadline_exceeded: Arc<Counter>,
    /// Protocol violations that unsynchronized a connection
    /// (`net.decode_errors`).
    pub decode_errors: Arc<Counter>,
    /// Requests whose wire content hash did not match the payload
    /// (`net.hash_mismatch`).
    pub hash_mismatch: Arc<Counter>,
    /// Journal probe per accepted connection (`net.accept`).
    pub accept_probe: Probe,
    /// Journal probe per shed request (`net.shed`), value = wire id.
    pub shed_probe: Probe,
    /// Journal probe per decode error (`net.decode_error`).
    pub decode_probe: Probe,
    /// Wire-level request latency, admission → reply written
    /// (`net.request`, histogram `net.request_ns`).
    pub request_probe: Probe,
}

impl NetMetrics {
    /// Register every `net.*` metric in `telemetry`. Idempotent: the same
    /// names resolve to the same handles.
    pub fn register(telemetry: &Telemetry) -> Self {
        let metrics = telemetry.metrics();
        NetMetrics {
            accepted: metrics.counter("net.accepted"),
            closed: metrics.counter("net.closed"),
            conn_rejected: metrics.counter("net.conn_rejected"),
            connections: metrics.gauge("net.connections"),
            inflight: metrics.gauge("net.inflight"),
            frames_rx: metrics.counter("net.frames_rx"),
            frames_tx: metrics.counter("net.frames_tx"),
            bytes_rx: metrics.counter("net.bytes_rx"),
            bytes_tx: metrics.counter("net.bytes_tx"),
            admitted: metrics.counter("net.admitted"),
            shed_rate_limit: metrics.counter("net.shed.rate_limit"),
            shed_overload: metrics.counter("net.shed.overload"),
            deadline_exceeded: metrics.counter("net.deadline_exceeded"),
            decode_errors: metrics.counter("net.decode_errors"),
            hash_mismatch: metrics.counter("net.hash_mismatch"),
            accept_probe: telemetry.probe("net.accept", Level::Info, None),
            shed_probe: telemetry.probe("net.shed", Level::Warn, None),
            decode_probe: telemetry.probe("net.decode_error", Level::Warn, None),
            request_probe: telemetry.probe("net.request", Level::Debug, Some("net.request_ns")),
        }
    }
}
