//! The single-pipeline serving façade, now a thin one-route compatibility
//! shim over the multi-model [`DefenseGateway`].
//!
//! [`DefenseServer::start`] keeps its original closure-factory signature —
//! build `num_workers` private pipelines, serve one defense — but the engine
//! behind it is a gateway with exactly one route (which is also the default
//! route), so the queue → batcher → worker behaviour, backpressure and
//! caching semantics are the gateway's. New code should use
//! [`GatewayBuilder`] directly and declare
//! its routes; this module also hosts the types both layers share
//! ([`ServeError`], [`ServeConfig`], [`WorkerAssets`], [`DefenseResponse`],
//! [`PendingResponse`]).

use crate::gateway::{DefenseGateway, GatewayBuilder, GatewayClient};
use crate::route::{DefenseRequest, RouteConfig, RouteKey};
use crate::shard::JobResult;
use crate::stats::ServeStats;
use sesr_defense::pipeline::{DefensePipeline, PreprocessConfig};
use sesr_models::SrModelKind;
use sesr_nn::Layer;
use sesr_store::ModelRegistry;
use sesr_tensor::{Tensor, TensorError};
use std::path::Path;
use std::sync::mpsc::Receiver;
use std::time::Duration;

/// Errors surfaced to serving clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded submission queue is full; the caller should shed load or
    /// retry later.
    Overloaded,
    /// The server has shut down (or a worker disappeared mid-request).
    Closed,
    /// The request named a route the gateway does not serve (the payload is
    /// the route's label).
    UnknownRoute(String),
    /// The request's per-request deadline passed while it was still queued;
    /// it was answered without being defended.
    DeadlineExceeded,
    /// The request was malformed (wrong rank or batch dimension).
    InvalidRequest(String),
    /// A pipeline stage failed while processing the request.
    Pipeline(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "submission queue is full (overloaded)"),
            ServeError::Closed => write!(f, "defense server is shut down"),
            ServeError::UnknownRoute(route) => write!(f, "no such route: {route}"),
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline passed before a worker reached it")
            }
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::Pipeline(msg) => write!(f, "defense pipeline failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TensorError> for ServeError {
    fn from(err: TensorError) -> Self {
        ServeError::Pipeline(err.to_string())
    }
}

/// Tuning knobs of the single-route serving shim (see
/// [`RouteConfig`] for the per-route gateway
/// equivalent; `From<&ServeConfig>` maps between them).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, each owning an independent pipeline (default 4).
    pub num_workers: usize,
    /// Maximum images coalesced into one defend call (default 8).
    pub max_batch: usize,
    /// Longest the batcher waits for more requests after the first one
    /// (default 1 ms; `Duration::ZERO` dispatches immediately).
    pub max_linger: Duration,
    /// Bounded submission-queue capacity; submissions beyond it are rejected
    /// with [`ServeError::Overloaded`] (default 64).
    pub queue_capacity: usize,
    /// LRU cache capacity in defended images; 0 disables caching
    /// (default 256).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            num_workers: 4,
            max_batch: 8,
            max_linger: Duration::from_millis(1),
            queue_capacity: 64,
            cache_capacity: 256,
        }
    }
}

/// Everything one worker owns: a defense pipeline, an optional classifier
/// run on the defended output to produce labels, and a private
/// [`ScratchSpace`](sesr_models::ScratchSpace) whose arena is reused across
/// requests — after the first few batches the SR forward pass performs zero
/// heap allocations.
pub struct WorkerAssets {
    pub(crate) pipeline: DefensePipeline,
    pub(crate) classifier: Option<Box<dyn Layer>>,
    pub(crate) scratch: sesr_models::ScratchSpace,
}

impl WorkerAssets {
    /// A defend-only worker.
    pub fn new(pipeline: DefensePipeline) -> Self {
        WorkerAssets {
            pipeline,
            classifier: None,
            scratch: sesr_models::ScratchSpace::new(),
        }
    }

    /// A defend-then-classify worker; responses carry the predicted label.
    pub fn with_classifier(pipeline: DefensePipeline, classifier: Box<dyn Layer>) -> Self {
        WorkerAssets {
            pipeline,
            classifier: Some(classifier),
            scratch: sesr_models::ScratchSpace::new(),
        }
    }

    /// Build a defend-only worker whose upscaler is hydrated with trained
    /// weights from a model store (see
    /// [`SrModelKind::build_from_store`](sesr_models::SrModelKind::build_from_store)).
    ///
    /// Every worker built from the same registry hydrates from the same
    /// memoized checkpoint, so the whole pool computes bitwise-identical
    /// defenses — and the artifact is read and validated from disk only once.
    /// When nothing is stored for `(kind, scale)` the worker falls back to
    /// the seeded-random network; corrupt artifacts fail construction with a
    /// typed error.
    ///
    /// # Errors
    ///
    /// Everything `build_from_store` can return.
    pub fn from_store(
        registry: &ModelRegistry,
        kind: SrModelKind,
        scale: usize,
        preprocess: PreprocessConfig,
        seed: u64,
    ) -> sesr_tensor::Result<WorkerAssets> {
        let upscaler = kind.build_from_store(scale, registry, seed)?;
        Ok(WorkerAssets::new(DefensePipeline::new(
            preprocess, upscaler,
        )))
    }

    /// The route key matching this worker's pipeline: scale and
    /// preprocessing read off the pipeline, the model recovered from the
    /// upscaler name (falling back to the nearest-neighbor baseline for
    /// custom upscalers the zoo cannot name).
    pub(crate) fn route_key(&self) -> RouteKey {
        let model = SrModelKind::parse(self.pipeline.upscaler_name())
            .unwrap_or(SrModelKind::NearestNeighbor);
        RouteKey::new(
            model,
            self.pipeline.scale(),
            self.pipeline.preprocess_config(),
        )
    }
}

/// The answer to one request.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseResponse {
    /// The defended `[1, 3, H*scale, W*scale]` image.
    pub defended: Tensor,
    /// Predicted label, when the workers carry a classifier.
    pub label: Option<usize>,
    /// `true` when the response was served from the LRU cache.
    pub cache_hit: bool,
}

/// A response that may already be resolved (cache hit) or still in flight.
pub struct PendingResponse {
    inner: PendingInner,
}

enum PendingInner {
    Ready(Box<DefenseResponse>),
    Waiting(Receiver<JobResult>),
    /// The result was already taken by [`PendingResponse::try_wait`].
    Taken,
}

impl PendingResponse {
    pub(crate) fn ready(response: DefenseResponse) -> Self {
        PendingResponse {
            inner: PendingInner::Ready(Box::new(response)),
        }
    }

    pub(crate) fn waiting(receiver: Receiver<JobResult>) -> Self {
        PendingResponse {
            inner: PendingInner::Waiting(receiver),
        }
    }

    /// Block until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Closed`] if the server shut down before
    /// answering (or the result was already taken by
    /// [`PendingResponse::try_wait`]), or the pipeline error for this
    /// request.
    pub fn wait(self) -> JobResult {
        match self.inner {
            PendingInner::Ready(response) => Ok(*response),
            PendingInner::Waiting(receiver) => receiver.recv().map_err(|_| ServeError::Closed)?,
            PendingInner::Taken => Err(ServeError::Closed),
        }
    }

    /// Poll for the response without blocking: `Some` exactly once when the
    /// result is available (a cache hit resolves on the first poll), `None`
    /// while the request is still in flight. This is what lets a
    /// single-threaded event loop (the `sesr-net` reactor) multiplex many
    /// in-flight requests without parking a thread per request.
    ///
    /// Once the result has been taken, further polls (and
    /// [`PendingResponse::wait`]) report [`ServeError::Closed`].
    pub fn try_wait(&mut self) -> Option<JobResult> {
        match std::mem::replace(&mut self.inner, PendingInner::Taken) {
            PendingInner::Ready(response) => Some(Ok(*response)),
            PendingInner::Waiting(receiver) => match receiver.try_recv() {
                Ok(result) => Some(result),
                Err(std::sync::mpsc::TryRecvError::Empty) => {
                    self.inner = PendingInner::Waiting(receiver);
                    None
                }
                Err(std::sync::mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
            },
            PendingInner::Taken => Some(Err(ServeError::Closed)),
        }
    }
}

/// Cloneable submission handle to a running [`DefenseServer`]: a
/// [`GatewayClient`] pinned to the server's single route.
#[derive(Clone)]
pub struct DefenseClient {
    inner: GatewayClient,
}

impl DefenseClient {
    /// Submit one `[1, 3, H, W]` image without blocking.
    ///
    /// On an LRU hit the returned [`PendingResponse`] is already resolved; on
    /// a miss the request is enqueued for batching.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the submission queue is full,
    /// [`ServeError::InvalidRequest`] for non-`[1, C, H, W]` inputs,
    /// [`ServeError::Closed`] when the server is gone.
    pub fn submit(&self, image: Tensor) -> Result<PendingResponse, ServeError> {
        self.inner.submit(DefenseRequest::new(image))
    }

    /// Submit and wait: the convenience path for synchronous callers.
    ///
    /// # Errors
    ///
    /// Propagates every [`ServeError`] that [`DefenseClient::submit`] or
    /// [`PendingResponse::wait`] can produce.
    pub fn defend_blocking(&self, image: Tensor) -> JobResult {
        self.submit(image)?.wait()
    }

    /// Snapshot of the server's latency/throughput statistics.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats().global
    }
}

/// The single-defense serving engine: a [`DefenseGateway`] with exactly one
/// route, kept for callers that deploy one model per process.
pub struct DefenseServer {
    gateway: DefenseGateway,
    client: DefenseClient,
}

impl DefenseServer {
    /// Start the engine. `factory(worker_index)` is called once per worker on
    /// the calling thread to build that worker's private pipeline (and
    /// optional classifier); use a deterministic factory (e.g.
    /// [`SrModelKind::build_seeded_upscaler`](sesr_models::SrModelKind::build_seeded_upscaler)
    /// with a fixed seed) when all workers must compute the same function.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the factory fails.
    pub fn start<F>(config: ServeConfig, mut factory: F) -> Result<DefenseServer, ServeError>
    where
        F: FnMut(usize) -> sesr_tensor::Result<WorkerAssets>,
    {
        if config.num_workers == 0 {
            return Err(ServeError::InvalidRequest(
                "num_workers, max_batch and queue_capacity must all be positive".to_string(),
            ));
        }
        // Legacy factories are neither `Send` nor `'static`, so the assets
        // are built here and handed to the gateway pre-built; the resulting
        // route is not hot-reloadable (use `GatewayBuilder` for that).
        let mut assets = Vec::with_capacity(config.num_workers);
        for worker in 0..config.num_workers {
            assets.push(factory(worker)?);
        }
        let key = assets[0].route_key();
        let gateway = GatewayBuilder::new()
            .cache_capacity(config.cache_capacity)
            .route_with_assets(key, RouteConfig::from(&config), assets)
            .build()?;
        let client = DefenseClient {
            inner: gateway.client(),
        };
        Ok(DefenseServer { gateway, client })
    }

    /// Start the engine with every worker hydrated from a trained-weight
    /// store at `store_path`: the *deploy many* half of the train-once /
    /// deploy-many workflow.
    ///
    /// One [`ModelRegistry`] is shared across the pool, so the newest
    /// artifact for `(kind, scale)` is read and validated once and all
    /// `config.num_workers` workers receive identical weights. With an empty
    /// store the pool falls back to the seeded-random network (still
    /// identical across workers, since all use `seed`); a corrupt or
    /// version-mismatched artifact aborts startup with a typed error instead
    /// of serving damaged weights.
    ///
    /// # Errors
    ///
    /// Returns an error if the store cannot be opened, the artifact fails
    /// validation, or the configuration is invalid.
    pub fn start_from_store(
        config: ServeConfig,
        store_path: impl AsRef<Path>,
        kind: SrModelKind,
        scale: usize,
        preprocess: PreprocessConfig,
        seed: u64,
    ) -> Result<DefenseServer, ServeError> {
        let gateway = GatewayBuilder::new()
            .cache_capacity(config.cache_capacity)
            .seed(seed)
            .open_store(store_path)?
            .route_with(
                RouteKey::new(kind, scale, preprocess),
                RouteConfig::from(&config),
            )
            .build()?;
        let client = DefenseClient {
            inner: gateway.client(),
        };
        Ok(DefenseServer { gateway, client })
    }

    /// A cloneable submission handle.
    pub fn client(&self) -> DefenseClient {
        self.client.clone()
    }

    /// Snapshot of the latency/throughput statistics.
    pub fn stats(&self) -> ServeStats {
        self.gateway.stats().global
    }

    /// Stop the engine and join all threads.
    ///
    /// Dropping the server's own client closes the submission channel once
    /// every external [`DefenseClient`] clone is gone; the batcher then
    /// drains the queue and exits, which closes the work queue and stops the
    /// workers. Drop outstanding client clones (or stop submitting) before
    /// calling `shutdown`, otherwise the join blocks until the last clone
    /// disappears.
    pub fn shutdown(self) {
        let DefenseServer { gateway, client } = self;
        drop(client);
        gateway.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_defense::pipeline::PreprocessConfig;
    use sesr_models::{SrModelKind, Upscaler};
    use sesr_tensor::{init, Shape};

    fn nearest_assets() -> sesr_tensor::Result<WorkerAssets> {
        Ok(WorkerAssets::new(DefensePipeline::new(
            PreprocessConfig::paper(),
            SrModelKind::NearestNeighbor.build_seeded_upscaler(2, 0)?,
        )))
    }

    fn test_image(seed: u64, size: usize) -> Tensor {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        init::uniform(Shape::new(&[1, 3, size, size]), 0.0, 1.0, &mut rng)
    }

    #[test]
    fn round_trip_matches_direct_defend() {
        let server = DefenseServer::start(ServeConfig::default(), |_| nearest_assets()).unwrap();
        let client = server.client();
        let image = test_image(1, 16);
        let response = client.defend_blocking(image.clone()).unwrap();
        assert_eq!(response.defended.shape().dims(), &[1, 3, 32, 32]);
        assert!(!response.cache_hit);

        let direct = DefensePipeline::new(
            PreprocessConfig::paper(),
            SrModelKind::NearestNeighbor.build_interpolation(2).unwrap(),
        )
        .defend(&image)
        .unwrap();
        assert_eq!(response.defended, direct);
        drop(client);
        server.shutdown();
    }

    #[test]
    fn mixed_shapes_are_batched_separately() {
        let config = ServeConfig {
            max_linger: Duration::from_millis(20),
            ..ServeConfig::default()
        };
        let server = DefenseServer::start(config, |_| nearest_assets()).unwrap();
        let client = server.client();
        let pending: Vec<_> = (0..8)
            .map(|i| {
                let size = if i % 2 == 0 { 8 } else { 16 };
                client.submit(test_image(i, size)).unwrap()
            })
            .collect();
        for (i, pending) in pending.into_iter().enumerate() {
            let response = pending.wait().unwrap();
            let expected = if i % 2 == 0 { 16 } else { 32 };
            assert_eq!(
                response.defended.shape().dims(),
                &[1, 3, expected, expected]
            );
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn invalid_requests_are_rejected_synchronously() {
        let server = DefenseServer::start(ServeConfig::default(), |_| nearest_assets()).unwrap();
        let client = server.client();
        let rank2 = Tensor::zeros(Shape::new(&[4, 4]));
        assert!(matches!(
            client.submit(rank2),
            Err(ServeError::InvalidRequest(_))
        ));
        let multi = Tensor::zeros(Shape::new(&[2, 3, 8, 8]));
        assert!(matches!(
            client.submit(multi),
            Err(ServeError::InvalidRequest(_))
        ));
        drop(client);
        server.shutdown();
    }

    #[test]
    fn labels_come_from_the_worker_classifier() {
        use rand::{rngs::StdRng, SeedableRng};
        let server = DefenseServer::start(ServeConfig::default(), |_| {
            let mut rng = StdRng::seed_from_u64(3);
            let classifier = sesr_classifiers::ClassifierKind::MobileNetV2.build_local(4, &mut rng);
            Ok(WorkerAssets::with_classifier(
                DefensePipeline::new(
                    PreprocessConfig::paper(),
                    SrModelKind::NearestNeighbor.build_seeded_upscaler(2, 0)?,
                ),
                classifier,
            ))
        })
        .unwrap();
        let client = server.client();
        let response = client.defend_blocking(test_image(5, 16)).unwrap();
        assert!(response.label.is_some());
        assert!(response.label.unwrap() < 4);
        drop(client);
        server.shutdown();
    }

    /// An upscaler that sleeps, to make backpressure deterministic in tests.
    struct SlowUpscaler {
        delay: Duration,
        inner: Box<dyn Upscaler>,
    }

    impl Upscaler for SlowUpscaler {
        fn name(&self) -> &str {
            "slow"
        }
        fn scale(&self) -> usize {
            self.inner.scale()
        }
        fn upscale(&self, input: &Tensor) -> sesr_tensor::Result<Tensor> {
            std::thread::sleep(self.delay);
            self.inner.upscale(input)
        }
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let config = ServeConfig {
            num_workers: 1,
            max_batch: 1,
            max_linger: Duration::ZERO,
            queue_capacity: 2,
            cache_capacity: 0,
        };
        let server = DefenseServer::start(config, |_| {
            Ok(WorkerAssets::new(DefensePipeline::new(
                PreprocessConfig::none(),
                Box::new(SlowUpscaler {
                    delay: Duration::from_millis(40),
                    inner: SrModelKind::NearestNeighbor.build_interpolation(2).unwrap(),
                }),
            )))
        })
        .unwrap();
        let client = server.client();
        let mut pending = Vec::new();
        let mut rejected = 0usize;
        for seed in 0..32 {
            match client.submit(test_image(seed, 8)) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded) => rejected += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(
            rejected > 0,
            "a 2-slot queue behind a 40ms/image worker must reject a 32-image burst"
        );
        assert_eq!(server.stats().rejected, rejected as u64);
        for p in pending {
            p.wait().unwrap();
        }
        drop(client);
        server.shutdown();
    }

    #[test]
    fn cache_hits_skip_recomputation() {
        let server = DefenseServer::start(ServeConfig::default(), |_| nearest_assets()).unwrap();
        let client = server.client();
        let image = test_image(9, 16);
        let first = client.defend_blocking(image.clone()).unwrap();
        assert!(!first.cache_hit);
        let second = client.defend_blocking(image.clone()).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.defended, second.defended);
        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1, "the first lookup was a miss");
        assert_eq!(stats.cache_hit_rate(), 0.5);
        assert_eq!(
            stats.computed_images, 1,
            "the second request must not recompute"
        );
        drop(client);
        server.shutdown();
    }

    #[test]
    fn start_from_store_hydrates_identical_workers() {
        use sesr_store::{Checkpoint, ModelStore};
        let dir = std::env::temp_dir().join(format!("sesr_serve_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Populate the store with a (random but fixed) trained-weight stand-in.
        {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(77);
            let network = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
            let store = ModelStore::open(&dir).unwrap();
            store
                .save(&Checkpoint::from_layer("SESR-M2", 2, 0, network.as_ref()))
                .unwrap();
        }
        let config = ServeConfig {
            num_workers: 2,
            cache_capacity: 0, // force every request through a worker
            ..ServeConfig::default()
        };
        let server = DefenseServer::start_from_store(
            config,
            &dir,
            SrModelKind::SesrM2,
            2,
            PreprocessConfig::none(),
            0,
        )
        .unwrap();
        let client = server.client();
        let image = test_image(4, 8);
        // Sequential submissions land on whichever worker is free; identical
        // outputs prove the pool hydrated identical weights.
        let first = client.defend_blocking(image.clone()).unwrap();
        for _ in 0..6 {
            let next = client.defend_blocking(image.clone()).unwrap();
            assert_eq!(first.defended, next.defended);
        }
        // And those outputs are the stored network's, not the seeded fallback.
        let fallback = DefensePipeline::new(
            PreprocessConfig::none(),
            SrModelKind::SesrM2.build_seeded_upscaler(2, 0).unwrap(),
        )
        .defend(&image)
        .unwrap();
        assert_ne!(first.defended, fallback);
        drop(client);
        server.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn start_from_store_rejects_a_corrupt_artifact() {
        use sesr_store::{Checkpoint, ModelStore};
        let dir = std::env::temp_dir().join(format!("sesr_serve_corrupt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let artifact = {
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(1);
            let network = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
            let store = ModelStore::open(&dir).unwrap();
            store
                .save(&Checkpoint::from_layer("SESR-M2", 2, 0, network.as_ref()))
                .unwrap()
        };
        let mut bytes = std::fs::read(&artifact.path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&artifact.path, &bytes).unwrap();
        let result = DefenseServer::start_from_store(
            ServeConfig::default(),
            &dir,
            SrModelKind::SesrM2,
            2,
            PreprocessConfig::none(),
            0,
        );
        assert!(
            matches!(result, Err(ServeError::Pipeline(_))),
            "a corrupt artifact must abort startup, not serve damaged weights"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_joins_cleanly_and_closes_the_queue() {
        let server = DefenseServer::start(ServeConfig::default(), |_| nearest_assets()).unwrap();
        let client = server.client();
        client.defend_blocking(test_image(2, 8)).unwrap();
        drop(client);
        server.shutdown();
    }

    #[test]
    fn zero_worker_config_is_rejected() {
        let config = ServeConfig {
            num_workers: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            DefenseServer::start(config, |_| nearest_assets()),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn route_key_recovery_names_zoo_models_and_falls_back() {
        let assets = nearest_assets().unwrap();
        let key = assets.route_key();
        assert_eq!(key.model, SrModelKind::NearestNeighbor);
        assert_eq!(key.scale, 2);

        let custom = WorkerAssets::new(DefensePipeline::new(
            PreprocessConfig::none(),
            Box::new(SlowUpscaler {
                delay: Duration::ZERO,
                inner: SrModelKind::Bicubic.build_interpolation(2).unwrap(),
            }),
        ));
        assert_eq!(
            custom.route_key().model,
            SrModelKind::NearestNeighbor,
            "unrecognised upscaler names fall back to the baseline key"
        );
    }
}
