//! Keyed LRU cache of defended outputs.
//!
//! The gateway keys the cache by `(RouteKey, content-hash)` — the route
//! identifies *which* defense produced the output, the 64-bit FNV-1a content
//! hash identifies the input image — so two routes serving different models
//! can never return each other's defended outputs. A 64-bit digest is not
//! collision-proof in the cryptographic sense, but for a bounded cache of
//! image tensors the collision probability is negligible (~n²/2⁶⁵) and a
//! collision only ever returns a *previously defended* output of the same
//! route, never corrupts state.

use sesr_tensor::Tensor;
use std::collections::HashMap;
use std::hash::Hash;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a content hash of an image tensor's shape and exact f32 bit
/// patterns, salted with `salt` (empty when the cache key already carries the
/// route identity).
pub fn content_hash(image: &Tensor, salt: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for byte in salt.as_bytes() {
        eat(*byte);
    }
    for dim in image.shape().dims() {
        for byte in (*dim as u64).to_le_bytes() {
            eat(byte);
        }
    }
    for value in image.data() {
        for byte in value.to_bits().to_le_bytes() {
            eat(byte);
        }
    }
    hash
}

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used cache with O(1) get/insert, generic
/// over the key type (the serving gateway uses `(RouteKey, u64)` composite
/// keys; plain `u64` works too).
///
/// Implemented as a slab-backed doubly linked recency list plus a key → slot
/// index map; no unsafe code and no external dependencies. Capacity 0 turns
/// the cache into a no-op (every lookup misses, inserts are dropped), which
/// is how `sesr-serve` disables caching.
pub struct LruCache<K, V> {
    capacity: usize,
    nodes: Vec<Node<K, V>>,
    index: HashMap<K, usize>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            nodes: Vec::with_capacity(capacity.min(1024)),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime `(hits, misses)` counters for this cache.
    pub fn hit_counts(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lifetime count of capacity evictions (entries displaced by `insert`
    /// when the cache was full; `retain` purges are not evictions).
    pub fn eviction_count(&self) -> u64 {
        self.evictions
    }

    fn detach(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.index.get(key).copied() {
            Some(slot) => {
                self.detach(slot);
                self.push_front(slot);
                self.hits += 1;
                Some(&self.nodes[slot].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the least-recently-used entry if
    /// the cache is full. With capacity 0 this is a no-op.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(slot) = self.index.get(&key).copied() {
            self.nodes[slot].value = value;
            self.detach(slot);
            self.push_front(slot);
            return;
        }
        if self.index.len() >= self.capacity {
            let victim = self.tail;
            self.detach(victim);
            self.index.remove(&self.nodes[victim].key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot].key = key.clone();
                self.nodes[slot].value = value;
                slot
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.index.insert(key, slot);
        self.push_front(slot);
    }

    /// Drop every entry whose key fails `keep`, preserving the recency order
    /// of the survivors. O(len); used by hot reload to purge one route's
    /// now-stale outputs without touching other routes. Purged values are
    /// dropped immediately (defended tensors are large; they must not linger
    /// in dead slab slots waiting for reuse), so the slab is rebuilt from
    /// the survivors.
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        // Recency order, most to least recent, before tearing the slab down.
        let mut order = Vec::with_capacity(self.index.len());
        let mut slot = self.head;
        while slot != NIL {
            order.push(slot);
            slot = self.nodes[slot].next;
        }
        let mut old_nodes: Vec<Option<Node<K, V>>> = std::mem::take(&mut self.nodes)
            .into_iter()
            .map(Some)
            .collect();
        self.index.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        // Reinsert survivors least-recent first so insert()'s push-front
        // rebuilds the same recency order; victims drop with `old_nodes`.
        for slot in order.into_iter().rev() {
            // Every slot on the recency list holds a node; a vacant one
            // would mean the list and arena disagree — skip it.
            let Some(node) = old_nodes[slot].take() else {
                continue;
            };
            if keep(&node.key) {
                self.insert(node.key, node.value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_tensor::Shape;

    #[test]
    fn evicts_least_recently_used() {
        let mut cache: LruCache<u64, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(&10)); // 1 is now most recent.
        cache.insert(3, 30); // evicts 2.
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&10));
        assert_eq!(cache.get(&3), Some(&30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_refreshes_value_and_recency() {
        let mut cache: LruCache<u64, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11); // refresh 1, making 2 the LRU entry.
        cache.insert(3, 30); // evicts 2.
        assert_eq!(cache.get(&1), Some(&11));
        assert_eq!(cache.get(&2), None);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let mut cache: LruCache<u64, u32> = LruCache::new(0);
        cache.insert(1, 10);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.hit_counts(), (0, 1));
    }

    #[test]
    fn eviction_counter_tracks_capacity_displacements() {
        let mut cache: LruCache<u64, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.eviction_count(), 0);
        cache.insert(1, 11); // refresh, not an eviction
        assert_eq!(cache.eviction_count(), 0);
        cache.insert(3, 30); // evicts 2
        cache.insert(4, 40); // evicts 1
        assert_eq!(cache.eviction_count(), 2);
        cache.retain(|_| false); // purges are not evictions
        assert_eq!(cache.eviction_count(), 2);
    }

    #[test]
    fn heavy_churn_keeps_len_bounded() {
        let mut cache: LruCache<u64, u64> = LruCache::new(8);
        for key in 0..1000u64 {
            cache.insert(key, key * 2);
            assert!(cache.len() <= 8);
        }
        // The eight most recent keys survive.
        for key in 992..1000 {
            assert_eq!(cache.get(&key), Some(&(key * 2)));
        }
    }

    #[test]
    fn composite_keys_separate_identical_hashes() {
        // The cache-poisoning regression at the data-structure level: the
        // same content hash under two different route components must be two
        // distinct entries.
        let mut cache: LruCache<(&str, u64), u32> = LruCache::new(4);
        cache.insert(("sesr-m2", 42), 1);
        cache.insert(("bicubic", 42), 2);
        assert_eq!(cache.get(&("sesr-m2", 42)), Some(&1));
        assert_eq!(cache.get(&("bicubic", 42)), Some(&2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn retain_purges_selectively_and_keeps_recency_order() {
        let mut cache: LruCache<(u8, u64), u32> = LruCache::new(8);
        for i in 0..4u64 {
            cache.insert((0, i), i as u32);
            cache.insert((1, i), 100 + i as u32);
        }
        cache.retain(|(route, _)| *route != 0);
        assert_eq!(cache.len(), 4);
        for i in 0..4u64 {
            assert_eq!(cache.get(&(0, i)), None, "route 0 must be purged");
            assert_eq!(cache.get(&(1, i)), Some(&(100 + i as u32)));
        }
        // The slab stays bounded after a purge.
        for i in 0..8u64 {
            cache.insert((2, i), i as u32);
        }
        assert_eq!(cache.len(), 8);
        assert!(cache.nodes.len() <= 8, "slab must not grow past capacity");
        // Survivors kept their recency: (2, 0..8) filled the cache, so the
        // route-1 entries (older) are gone and the newest survive in order.
        assert_eq!(cache.get(&(1, 0)), None);
        assert_eq!(cache.get(&(2, 7)), Some(&7));
    }

    #[test]
    fn retain_drops_purged_values_immediately() {
        use std::sync::Arc;
        let mut cache: LruCache<u8, Arc<()>> = LruCache::new(8);
        let purged = Arc::new(());
        let kept = Arc::new(());
        cache.insert(0, Arc::clone(&purged));
        cache.insert(1, Arc::clone(&kept));
        cache.retain(|key| *key != 0);
        assert_eq!(
            Arc::strong_count(&purged),
            1,
            "a purged value must be dropped by retain, not parked in a dead slot"
        );
        assert_eq!(Arc::strong_count(&kept), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn content_hash_separates_values_shapes_and_salts() {
        let a = Tensor::full(Shape::new(&[1, 3, 4, 4]), 0.5);
        let b = Tensor::full(Shape::new(&[1, 3, 4, 4]), 0.25);
        let c = Tensor::full(Shape::new(&[1, 3, 2, 8]), 0.5);
        assert_eq!(content_hash(&a, "s"), content_hash(&a, "s"));
        assert_ne!(content_hash(&a, "s"), content_hash(&b, "s"));
        assert_ne!(content_hash(&a, "s"), content_hash(&c, "s"));
        assert_ne!(content_hash(&a, "nearest"), content_hash(&a, "bicubic"));
    }
}
