//! Latency and throughput accounting for the serving subsystem.
//!
//! Every [`StatsRecorder`] aggregates one stream of events into a
//! [`ServeStats`] snapshot. The gateway keeps one recorder per route plus a
//! global one (each event is recorded on both), and snapshots them together
//! as [`GatewayStats`]: the global view the old single-pipeline server
//! reported, alongside a per-[`RouteKey`] breakdown.

use crate::route::RouteKey;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency samples kept for percentile estimation. Memory stays bounded on a
/// long-lived server (a ring of the most recent completions) and
/// [`StatsRecorder::snapshot`] sorts at most this many entries, so snapshots
/// never stall the hot path for longer than a fixed O(window) amount.
const LATENCY_WINDOW: usize = 8192;

/// Thread-safe recorder fed by the client (rejections, cache hits) and the
/// workers (completions, batch sizes). Cheap enough to call per request: one
/// short mutexed push per event, all aggregation deferred to
/// [`StatsRecorder::snapshot`]. Percentiles and the mean are computed over a
/// sliding window of the most recent `LATENCY_WINDOW` completions; the
/// counters cover the server's whole lifetime.
pub struct StatsRecorder {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    latencies_us: Vec<u64>,
    latency_cursor: usize,
    completed: u64,
    computed_images: u64,
    cache_hits: u64,
    cache_misses: u64,
    rejected: u64,
    errors: u64,
    expired: u64,
    batches: u64,
    batched_images: u64,
    largest_batch: usize,
    first_completion: Option<Instant>,
    last_completion: Option<Instant>,
}

impl StatsRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        StatsRecorder {
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("stats mutex poisoned")
    }

    /// Record one finished request with its end-to-end latency.
    pub fn record_completion(&self, latency: Duration, cache_hit: bool) {
        let now = Instant::now();
        let mut inner = self.lock();
        inner.completed += 1;
        if cache_hit {
            inner.cache_hits += 1;
        }
        let sample = latency.as_micros() as u64;
        if inner.latencies_us.len() < LATENCY_WINDOW {
            inner.latencies_us.push(sample);
        } else {
            let cursor = inner.latency_cursor;
            inner.latencies_us[cursor] = sample;
        }
        inner.latency_cursor = (inner.latency_cursor + 1) % LATENCY_WINDOW;
        inner.first_completion.get_or_insert(now);
        inner.last_completion = Some(now);
    }

    /// Record images that actually went through the defense pipeline (as
    /// opposed to being served from cache).
    pub fn record_computed(&self, images: usize) {
        self.lock().computed_images += images as u64;
    }

    /// Record an LRU lookup that missed (hits are counted by
    /// [`StatsRecorder::record_completion`], which sees the resolved
    /// response). Mirrors the cache's own lifetime counters
    /// ([`LruCache::hit_counts`](crate::cache::LruCache::hit_counts)) into
    /// the snapshot every client can read.
    pub fn record_cache_miss(&self) {
        self.lock().cache_misses += 1;
    }

    /// Record a submission rejected with `Overloaded`.
    pub fn record_rejection(&self) {
        self.lock().rejected += 1;
    }

    /// Record a request that failed inside the pipeline.
    pub fn record_error(&self) {
        self.lock().errors += 1;
    }

    /// Record a request whose per-request deadline passed before a worker
    /// reached it (answered with `DeadlineExceeded`, never defended).
    pub fn record_expired(&self) {
        self.lock().expired += 1;
    }

    /// Record one dispatched batch of `size` images.
    pub fn record_batch(&self, size: usize) {
        let mut inner = self.lock();
        inner.batches += 1;
        inner.batched_images += size as u64;
        inner.largest_batch = inner.largest_batch.max(size);
    }

    /// Aggregate everything recorded so far.
    pub fn snapshot(&self) -> ServeStats {
        let inner = self.lock();
        let mut sorted = inner.latencies_us.clone();
        sorted.sort_unstable();
        let percentile = |q: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            Duration::from_micros(sorted[rank - 1])
        };
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_micros(sorted.iter().sum::<u64>() / sorted.len() as u64)
        };
        let elapsed = match (inner.first_completion, inner.last_completion) {
            (Some(first), Some(last)) => last.duration_since(first),
            _ => Duration::ZERO,
        };
        let images_per_sec = if elapsed.as_secs_f64() > 0.0 && inner.completed > 1 {
            // The first completion opens the window, so it is not part of the
            // rate measured across the window.
            (inner.completed - 1) as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        ServeStats {
            completed: inner.completed,
            computed_images: inner.computed_images,
            cache_hits: inner.cache_hits,
            cache_misses: inner.cache_misses,
            rejected: inner.rejected,
            errors: inner.errors,
            expired: inner.expired,
            batches: inner.batches,
            mean_batch: if inner.batches > 0 {
                inner.batched_images as f64 / inner.batches as f64
            } else {
                0.0
            },
            largest_batch: inner.largest_batch,
            p50: percentile(0.50),
            p95: percentile(0.95),
            p99: percentile(0.99),
            mean,
            images_per_sec,
        }
    }
}

impl Default for StatsRecorder {
    fn default() -> Self {
        StatsRecorder::new()
    }
}

/// A point-in-time aggregate of serving behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests answered (including cache hits).
    pub completed: u64,
    /// Images that actually ran through the defense pipeline.
    pub computed_images: u64,
    /// Requests served from the LRU cache.
    pub cache_hits: u64,
    /// Cache lookups that missed and went on to the pipeline (0 when caching
    /// is disabled, since no lookups happen at all).
    pub cache_misses: u64,
    /// Submissions rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests that failed inside the pipeline.
    pub errors: u64,
    /// Requests answered with `DeadlineExceeded` (deadline passed in queue).
    pub expired: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Mean images per dispatched batch.
    pub mean_batch: f64,
    /// Largest batch dispatched.
    pub largest_batch: usize,
    /// Median end-to-end latency over the recent-completion window.
    pub p50: Duration,
    /// 95th-percentile end-to-end latency over the recent-completion window.
    pub p95: Duration,
    /// 99th-percentile end-to-end latency over the recent-completion window.
    pub p99: Duration,
    /// Mean end-to-end latency over the recent-completion window.
    pub mean: Duration,
    /// Completions per second across the first→last completion window.
    pub images_per_sec: f64,
}

impl ServeStats {
    /// Fraction of cache lookups that hit, in `[0, 1]`; 0.0 when no lookup
    /// has happened (cache disabled or no traffic yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} (cache {}/{} hits, {:.0}% | rejected {}, errors {}, expired {}) | \
             {} batches, mean {:.2} img/batch, max {} | \
             latency p50 {:?} p95 {:?} p99 {:?} mean {:?} | {:.1} images/sec",
            self.completed,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.rejected,
            self.errors,
            self.expired,
            self.batches,
            self.mean_batch,
            self.largest_batch,
            self.p50,
            self.p95,
            self.p99,
            self.mean,
            self.images_per_sec
        )
    }
}

/// Snapshot of a whole gateway: the global aggregate plus one [`ServeStats`]
/// per route, in route-declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayStats {
    /// Aggregate over every route (what a single-pipeline server reported).
    pub global: ServeStats,
    /// Per-route breakdown, in the order routes were declared.
    pub per_route: Vec<(RouteKey, ServeStats)>,
}

impl GatewayStats {
    /// The breakdown entry for `route`, if the gateway serves it.
    pub fn route(&self, route: &RouteKey) -> Option<&ServeStats> {
        self.per_route
            .iter()
            .find(|(key, _)| key == route)
            .map(|(_, stats)| stats)
    }
}

impl std::fmt::Display for GatewayStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "gateway: {}", self.global)?;
        for (route, stats) in &self.per_route {
            writeln!(
                f,
                "  {route}: {} jobs | p50 {:?} p95 {:?} p99 {:?} | cache {:.0}% | \
                 rejected {}, errors {}, expired {}",
                stats.completed,
                stats.p50,
                stats.p95,
                stats.p99,
                stats.cache_hit_rate() * 100.0,
                stats.rejected,
                stats.errors,
                stats.expired,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_order_statistics() {
        let recorder = StatsRecorder::new();
        for ms in 1..=100u64 {
            recorder.record_completion(Duration::from_millis(ms), false);
        }
        let stats = recorder.snapshot();
        assert_eq!(stats.completed, 100);
        assert_eq!(stats.p50, Duration::from_millis(50));
        assert_eq!(stats.p95, Duration::from_millis(95));
        assert_eq!(stats.p99, Duration::from_millis(99));
        assert_eq!(stats.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn empty_recorder_snapshots_zeros() {
        let stats = StatsRecorder::new().snapshot();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.p99, Duration::ZERO);
        assert_eq!(stats.images_per_sec, 0.0);
    }

    #[test]
    fn latency_window_is_bounded_and_keeps_recent_samples() {
        let recorder = StatsRecorder::new();
        // Fill far past the window with 1ms, then overwrite with 2ms.
        for _ in 0..LATENCY_WINDOW {
            recorder.record_completion(Duration::from_millis(1), false);
        }
        for _ in 0..LATENCY_WINDOW {
            recorder.record_completion(Duration::from_millis(2), false);
        }
        let stats = recorder.snapshot();
        assert_eq!(stats.completed, 2 * LATENCY_WINDOW as u64);
        // Every retained sample is from the recent (2ms) traffic.
        assert_eq!(stats.p50, Duration::from_millis(2));
        assert_eq!(stats.p99, Duration::from_millis(2));
        assert_eq!(stats.mean, Duration::from_millis(2));
    }

    #[test]
    fn gateway_stats_index_and_render_per_route() {
        use sesr_models::SrModelKind;
        let recorder = StatsRecorder::new();
        recorder.record_completion(Duration::from_millis(3), false);
        let route = RouteKey::paper(SrModelKind::SesrM2, 2);
        let other = RouteKey::paper(SrModelKind::Fsrcnn, 2);
        let stats = GatewayStats {
            global: recorder.snapshot(),
            per_route: vec![(route, recorder.snapshot())],
        };
        assert_eq!(stats.route(&route).unwrap().completed, 1);
        assert!(stats.route(&other).is_none());
        let text = stats.to_string();
        assert!(text.contains("gateway:"));
        assert!(text.contains("sesr-m2:x2:jpeg75+wavelet2"));
    }

    #[test]
    fn counters_accumulate() {
        let recorder = StatsRecorder::new();
        recorder.record_rejection();
        recorder.record_error();
        recorder.record_expired();
        recorder.record_batch(3);
        recorder.record_batch(5);
        recorder.record_computed(8);
        recorder.record_cache_miss();
        recorder.record_completion(Duration::from_millis(1), true);
        let stats = recorder.snapshot();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.mean_batch, 4.0);
        assert_eq!(stats.largest_batch, 5);
        assert_eq!(stats.computed_images, 8);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hit_rate(), 0.5);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn cache_hit_rate_handles_no_lookups() {
        let stats = StatsRecorder::new().snapshot();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
    }
}
