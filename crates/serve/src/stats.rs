//! Latency and throughput accounting for the serving subsystem.
//!
//! Every [`StatsRecorder`] aggregates one stream of events into a
//! [`ServeStats`] snapshot. The gateway keeps one recorder per route plus a
//! global one (each event is recorded on both), and snapshots them together
//! as [`GatewayStats`]: the global view the old single-pipeline server
//! reported, alongside a per-[`RouteKey`] breakdown.
//!
//! Since the telemetry refactor the recorder is a **thin view over a
//! [`MetricsRegistry`]**: every counter lives in the registry under a scoped
//! name (`gateway.completed`, `route.<label>.completed`, …) and latency goes
//! into a shared log-bucketed [`Histogram`] covering the server's whole
//! lifetime. Recording is a handful of relaxed atomic adds — no mutex (so a
//! panicking worker can never poison the stats for everyone else, which the
//! old `Mutex<Inner>` implementation did via its
//! `expect("stats mutex poisoned")`), no allocation, and snapshots are an
//! O(buckets) merge instead of a sort of an 8192-sample window.
//!
//! Semantics of [`ServeStats`] are preserved with one documented shift:
//! `p50`/`p95`/`p99` are now whole-lifetime estimates with ~2% relative
//! error (bucket midpoints) instead of exact order statistics over a
//! sliding window, and `mean` is the exact lifetime mean.

use crate::route::RouteKey;
use sesr_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Thread-safe recorder fed by the client (rejections, cache hits) and the
/// workers (completions, batch sizes). Cheap enough to call per request:
/// every event is a few relaxed atomic adds on registry-owned handles, all
/// aggregation deferred to [`StatsRecorder::snapshot`].
pub struct StatsRecorder {
    epoch: Instant,
    latency_ns: Arc<Histogram>,
    completed: Arc<Counter>,
    computed_images: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    rejected: Arc<Counter>,
    errors: Arc<Counter>,
    expired: Arc<Counter>,
    batches: Arc<Counter>,
    batched_images: Arc<Counter>,
    largest_batch: Arc<Gauge>,
    first_completion_us: Arc<Gauge>,
    last_completion_us: Arc<Gauge>,
}

impl StatsRecorder {
    /// Create a recorder backed by its own private registry (scope
    /// `"serve"`). Gateways instead register their recorders in a shared
    /// registry via [`StatsRecorder::registered`] so one
    /// [`TelemetrySnapshot`](sesr_telemetry::TelemetrySnapshot) covers
    /// every route.
    pub fn new() -> Self {
        Self::registered(&MetricsRegistry::new(), "serve")
    }

    /// Create a recorder whose metrics live in `registry` under
    /// `scope.<metric>` names (e.g. `gateway.completed`,
    /// `route.sesr-m2:x2:jpeg75+wavelet2.latency_ns`). Registration is
    /// idempotent: two recorders built with the same registry and scope
    /// share the same underlying metrics.
    pub fn registered(registry: &MetricsRegistry, scope: &str) -> Self {
        let counter = |metric: &str| registry.counter(&format!("{scope}.{metric}"));
        let gauge = |metric: &str| registry.gauge(&format!("{scope}.{metric}"));
        StatsRecorder {
            epoch: Instant::now(),
            latency_ns: registry.histogram(&format!("{scope}.latency_ns")),
            completed: counter("completed"),
            computed_images: counter("computed_images"),
            cache_hits: counter("cache_hits"),
            cache_misses: counter("cache_misses"),
            rejected: counter("rejected"),
            errors: counter("errors"),
            expired: counter("expired"),
            batches: counter("batches"),
            batched_images: counter("batched_images"),
            largest_batch: gauge("largest_batch"),
            first_completion_us: gauge("first_completion_us"),
            last_completion_us: gauge("last_completion_us"),
        }
    }

    /// The lifetime latency histogram backing the percentile fields.
    pub fn latency_histogram(&self) -> &Arc<Histogram> {
        &self.latency_ns
    }

    /// Record one finished request with its end-to-end latency.
    pub fn record_completion(&self, latency: Duration, cache_hit: bool) {
        self.completed.incr();
        if cache_hit {
            self.cache_hits.incr();
        }
        self.latency_ns.record_duration(latency);
        // Completion timestamps are micros since the recorder's epoch,
        // clamped to at least 1 so 0 keeps meaning "never".
        let now = u64::try_from(self.epoch.elapsed().as_micros())
            .unwrap_or(u64::MAX)
            .max(1);
        let now = i64::try_from(now).unwrap_or(i64::MAX);
        self.first_completion_us.set_if_unset(now);
        self.last_completion_us.set_max(now);
    }

    /// Record images that actually went through the defense pipeline (as
    /// opposed to being served from cache).
    pub fn record_computed(&self, images: usize) {
        self.computed_images.add(images as u64);
    }

    /// Record an LRU lookup that missed (hits are counted by
    /// [`StatsRecorder::record_completion`], which sees the resolved
    /// response). Mirrors the cache's own lifetime counters
    /// ([`LruCache::hit_counts`](crate::cache::LruCache::hit_counts)) into
    /// the snapshot every client can read.
    pub fn record_cache_miss(&self) {
        self.cache_misses.incr();
    }

    /// Record a submission rejected with `Overloaded`.
    pub fn record_rejection(&self) {
        self.rejected.incr();
    }

    /// Record a request that failed inside the pipeline.
    pub fn record_error(&self) {
        self.errors.incr();
    }

    /// Record a request whose per-request deadline passed before a worker
    /// reached it (answered with `DeadlineExceeded`, never defended).
    pub fn record_expired(&self) {
        self.expired.incr();
    }

    /// Record one dispatched batch of `size` images.
    pub fn record_batch(&self, size: usize) {
        self.batches.incr();
        self.batched_images.add(size as u64);
        self.largest_batch
            .set_max(i64::try_from(size).unwrap_or(i64::MAX));
    }

    /// Aggregate everything recorded so far.
    pub fn snapshot(&self) -> ServeStats {
        let latency = self.latency_ns.snapshot();
        let completed = self.completed.get();
        let batches = self.batches.get();
        let first_us = self.first_completion_us.get();
        let last_us = self.last_completion_us.get();
        let elapsed = Duration::from_micros((last_us - first_us).max(0) as u64);
        let images_per_sec = if elapsed.as_secs_f64() > 0.0 && completed > 1 {
            // The first completion opens the window, so it is not part of the
            // rate measured across the window.
            (completed - 1) as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        ServeStats {
            completed,
            computed_images: self.computed_images.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            rejected: self.rejected.get(),
            errors: self.errors.get(),
            expired: self.expired.get(),
            batches,
            mean_batch: if batches > 0 {
                self.batched_images.get() as f64 / batches as f64
            } else {
                0.0
            },
            largest_batch: self.largest_batch.get().max(0) as usize,
            p50: latency.quantile_duration(0.50),
            p95: latency.quantile_duration(0.95),
            p99: latency.quantile_duration(0.99),
            mean: latency.mean_duration(),
            images_per_sec,
        }
    }
}

impl Default for StatsRecorder {
    fn default() -> Self {
        StatsRecorder::new()
    }
}

impl std::fmt::Debug for StatsRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsRecorder")
            .field("completed", &self.completed.get())
            .field("batches", &self.batches.get())
            .finish()
    }
}

/// A point-in-time aggregate of serving behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Requests answered (including cache hits).
    pub completed: u64,
    /// Images that actually ran through the defense pipeline.
    pub computed_images: u64,
    /// Requests served from the LRU cache.
    pub cache_hits: u64,
    /// Cache lookups that missed and went on to the pipeline (0 when caching
    /// is disabled, since no lookups happen at all).
    pub cache_misses: u64,
    /// Submissions rejected with `Overloaded`.
    pub rejected: u64,
    /// Requests that failed inside the pipeline.
    pub errors: u64,
    /// Requests answered with `DeadlineExceeded` (deadline passed in queue).
    pub expired: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Mean images per dispatched batch.
    pub mean_batch: f64,
    /// Largest batch dispatched.
    pub largest_batch: usize,
    /// Median end-to-end latency over the server's lifetime (log-bucketed
    /// estimate, ~2% relative error).
    pub p50: Duration,
    /// 95th-percentile end-to-end latency (lifetime, ~2% estimate).
    pub p95: Duration,
    /// 99th-percentile end-to-end latency (lifetime, ~2% estimate).
    pub p99: Duration,
    /// Exact mean end-to-end latency over the server's lifetime.
    pub mean: Duration,
    /// Completions per second across the first→last completion window.
    pub images_per_sec: f64,
}

impl ServeStats {
    /// Fraction of cache lookups that hit, in `[0, 1]`; 0.0 when no lookup
    /// has happened (cache disabled or no traffic yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} (cache {}/{} hits, {:.0}% | rejected {}, errors {}, expired {}) | \
             {} batches, mean {:.2} img/batch, max {} | \
             latency p50 {:?} p95 {:?} p99 {:?} mean {:?} | {:.1} images/sec",
            self.completed,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.cache_hit_rate() * 100.0,
            self.rejected,
            self.errors,
            self.expired,
            self.batches,
            self.mean_batch,
            self.largest_batch,
            self.p50,
            self.p95,
            self.p99,
            self.mean,
            self.images_per_sec
        )
    }
}

/// Snapshot of a whole gateway: the global aggregate plus one [`ServeStats`]
/// per route, in route-declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayStats {
    /// Aggregate over every route (what a single-pipeline server reported).
    pub global: ServeStats,
    /// Per-route breakdown, in the order routes were declared.
    pub per_route: Vec<(RouteKey, ServeStats)>,
}

impl GatewayStats {
    /// The breakdown entry for `route`, if the gateway serves it.
    pub fn route(&self, route: &RouteKey) -> Option<&ServeStats> {
        self.per_route
            .iter()
            .find(|(key, _)| key == route)
            .map(|(_, stats)| stats)
    }
}

impl std::fmt::Display for GatewayStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "gateway: {}", self.global)?;
        for (route, stats) in &self.per_route {
            writeln!(
                f,
                "  {route}: {} jobs | p50 {:?} p95 {:?} p99 {:?} | cache {:.0}% | \
                 rejected {}, errors {}, expired {}",
                stats.completed,
                stats.p50,
                stats.p95,
                stats.p99,
                stats.cache_hit_rate() * 100.0,
                stats.rejected,
                stats.errors,
                stats.expired,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert `got` is within 2% of `want` (the histogram's error bound).
    fn assert_close(got: Duration, want: Duration) {
        let (got, want) = (got.as_nanos() as f64, want.as_nanos() as f64);
        assert!(
            (got - want).abs() <= want * 0.02,
            "expected {want}ns ± 2%, got {got}ns"
        );
    }

    #[test]
    fn percentiles_track_order_statistics_within_error_bound() {
        let recorder = StatsRecorder::new();
        for ms in 1..=100u64 {
            recorder.record_completion(Duration::from_millis(ms), false);
        }
        let stats = recorder.snapshot();
        assert_eq!(stats.completed, 100);
        assert_close(stats.p50, Duration::from_millis(50));
        assert_close(stats.p95, Duration::from_millis(95));
        assert_close(stats.p99, Duration::from_millis(99));
        // The mean is exact (sum/count), not bucketed.
        assert_eq!(stats.mean, Duration::from_micros(50_500));
    }

    /// Before/after parity: the histogram-backed snapshot must agree with
    /// the old sort-the-window estimator (same `ceil(q·n)` rank convention)
    /// to within the bucket error bound, on an adversarial mixed-scale
    /// latency stream.
    #[test]
    fn histogram_percentiles_match_sorting_estimator() {
        let recorder = StatsRecorder::new();
        let mut window_us: Vec<u64> = Vec::new();
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for _ in 0..6_000 {
            // xorshift* over five orders of magnitude: 10µs .. ~1s.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let sample_us = 10 + state.wrapping_mul(0x2545_f491_4f6c_dd1d) % 1_000_000;
            recorder.record_completion(Duration::from_micros(sample_us), false);
            window_us.push(sample_us);
        }
        window_us.sort_unstable();
        let reference = |q: f64| -> Duration {
            let rank = ((q * window_us.len() as f64).ceil() as usize).clamp(1, window_us.len());
            Duration::from_micros(window_us[rank - 1])
        };
        let stats = recorder.snapshot();
        for (q, got) in [(0.50, stats.p50), (0.95, stats.p95), (0.99, stats.p99)] {
            assert_close(got, reference(q));
        }
        let exact_mean_us = window_us.iter().sum::<u64>() / window_us.len() as u64;
        assert_close(stats.mean, Duration::from_micros(exact_mean_us));
    }

    #[test]
    fn empty_recorder_snapshots_zeros() {
        let stats = StatsRecorder::new().snapshot();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.p99, Duration::ZERO);
        assert_eq!(stats.images_per_sec, 0.0);
    }

    #[test]
    fn latency_covers_whole_lifetime() {
        let recorder = StatsRecorder::new();
        // The old implementation kept a sliding 8192-sample window; the
        // histogram covers the entire lifetime, so early traffic still
        // shows up in the percentiles.
        for _ in 0..8192 {
            recorder.record_completion(Duration::from_millis(1), false);
        }
        for _ in 0..8192 {
            recorder.record_completion(Duration::from_millis(2), false);
        }
        let stats = recorder.snapshot();
        assert_eq!(stats.completed, 2 * 8192);
        assert_close(stats.p50, Duration::from_millis(1));
        assert_close(stats.p99, Duration::from_millis(2));
        assert_close(stats.mean, Duration::from_micros(1_500));
    }

    /// Regression test for the poisoned-stats cascade: the old recorder
    /// held a `Mutex<Inner>` and called `expect("stats mutex poisoned")`,
    /// so one panicking thread mid-record turned every later stats call
    /// into a panic. The recorder is now lock-free; a thread that panics
    /// while recording must leave the recorder fully usable.
    #[test]
    fn panicking_recorder_thread_does_not_cascade() {
        let recorder = std::sync::Arc::new(StatsRecorder::new());
        let poisoner = std::sync::Arc::clone(&recorder);
        let result = std::thread::spawn(move || {
            poisoner.record_completion(Duration::from_millis(1), false);
            poisoner.record_batch(4);
            panic!("worker dies mid-flight");
        })
        .join();
        assert!(result.is_err(), "the thread must actually have panicked");
        // Every recording and snapshot path still works.
        recorder.record_completion(Duration::from_millis(2), true);
        recorder.record_rejection();
        let stats = recorder.snapshot();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.largest_batch, 4);
    }

    #[test]
    fn registered_recorders_share_scoped_metrics() {
        let registry = MetricsRegistry::new();
        let a = StatsRecorder::registered(&registry, "gateway");
        let b = StatsRecorder::registered(&registry, "gateway");
        a.record_completion(Duration::from_millis(5), false);
        b.record_rejection();
        // Both recorders write the same underlying metrics…
        assert_eq!(a.snapshot().rejected, 1);
        assert_eq!(b.snapshot().completed, 1);
        // …and the registry exposes them under scoped names.
        let dump = registry.collect();
        assert!(dump
            .counters
            .contains(&("gateway.completed".to_string(), 1)));
        assert!(dump.counters.contains(&("gateway.rejected".to_string(), 1)));
        assert!(dump
            .histograms
            .iter()
            .any(|(name, h)| name == "gateway.latency_ns" && h.count == 1));
    }

    #[test]
    fn gateway_stats_index_and_render_per_route() {
        use sesr_models::SrModelKind;
        let recorder = StatsRecorder::new();
        recorder.record_completion(Duration::from_millis(3), false);
        let route = RouteKey::paper(SrModelKind::SesrM2, 2);
        let other = RouteKey::paper(SrModelKind::Fsrcnn, 2);
        let stats = GatewayStats {
            global: recorder.snapshot(),
            per_route: vec![(route, recorder.snapshot())],
        };
        assert_eq!(stats.route(&route).unwrap().completed, 1);
        assert!(stats.route(&other).is_none());
        let text = stats.to_string();
        assert!(text.contains("gateway:"));
        assert!(text.contains("sesr-m2:x2:jpeg75+wavelet2"));
    }

    #[test]
    fn counters_accumulate() {
        let recorder = StatsRecorder::new();
        recorder.record_rejection();
        recorder.record_error();
        recorder.record_expired();
        recorder.record_batch(3);
        recorder.record_batch(5);
        recorder.record_computed(8);
        recorder.record_cache_miss();
        recorder.record_completion(Duration::from_millis(1), true);
        let stats = recorder.snapshot();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.mean_batch, 4.0);
        assert_eq!(stats.largest_batch, 5);
        assert_eq!(stats.computed_images, 8);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hit_rate(), 0.5);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn cache_hit_rate_handles_no_lookups() {
        let stats = StatsRecorder::new().snapshot();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 0);
        assert_eq!(stats.cache_hit_rate(), 0.0);
    }
}
