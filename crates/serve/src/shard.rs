//! Per-route serving shard: one bounded submission queue, one dynamic
//! batcher thread and a private worker pool.
//!
//! A [`DefenseGateway`](crate::gateway::DefenseGateway) owns one shard per
//! [`RouteKey`](crate::route::RouteKey); the
//! [`DefenseServer`](crate::server::DefenseServer) compatibility shim owns
//! exactly one. Shards share nothing but the gateway-wide output cache and
//! the global stats recorder, so a saturated route rejects its own traffic
//! without slowing any other route. Retiring a shard (shutdown or hot
//! reload) is drain-based: dropping every submission sender lets the batcher
//! finish the queue, close the work channel and stop the workers — in-flight
//! jobs always get their response.

use crate::cache::LruCache;
use crate::route::{RouteConfig, RouteKey};
use crate::server::{DefenseResponse, ServeError, WorkerAssets};
use crate::stats::StatsRecorder;
use crate::telemetry::{ArenaGauges, StageProbes};
use sesr_defense::DefendTrace;
use sesr_tensor::Tensor;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub(crate) type JobResult = Result<DefenseResponse, ServeError>;

/// Cache key: which route defended the image, and what the image was.
pub(crate) type CacheKey = (RouteKey, u64);

pub(crate) type SharedCache = Arc<Mutex<LruCache<CacheKey, (Tensor, Option<usize>)>>>;

pub(crate) struct Job {
    pub image: Tensor,
    /// Gateway-wide request id, tagged onto every journal event this job
    /// produces so a trace can be reassembled per request.
    pub request_id: u64,
    pub enqueued: Instant,
    pub deadline: Option<Instant>,
    pub responder: Sender<JobResult>,
    pub cache_key: Option<CacheKey>,
    /// Stamped by the batcher when it pops the job off the submission queue;
    /// `enqueued..dequeued` is the queue-wait stage, `dequeued..worker
    /// pickup` the batch-dwell stage.
    pub dequeued: Option<Instant>,
}

struct Batch {
    jobs: Vec<Job>,
}

/// Events are mirrored to the gateway-wide recorder and the route's own, so
/// both the global view and the per-route breakdown stay exact. The probe
/// bundle carries the route's stage-level telemetry alongside.
#[derive(Clone)]
pub(crate) struct StatsPair {
    pub global: Arc<StatsRecorder>,
    pub route: Arc<StatsRecorder>,
    pub stages: Arc<StageProbes>,
}

impl StatsPair {
    pub fn record_completion(&self, latency: Duration, cache_hit: bool) {
        self.global.record_completion(latency, cache_hit);
        self.route.record_completion(latency, cache_hit);
    }

    pub fn record_computed(&self, images: usize) {
        self.global.record_computed(images);
        self.route.record_computed(images);
    }

    pub fn record_cache_miss(&self) {
        self.global.record_cache_miss();
        self.route.record_cache_miss();
    }

    pub fn record_rejection(&self) {
        self.global.record_rejection();
        self.route.record_rejection();
    }

    pub fn record_error(&self) {
        self.global.record_error();
        self.route.record_error();
    }

    pub fn record_expired(&self) {
        self.global.record_expired();
        self.route.record_expired();
    }

    pub fn record_batch(&self, size: usize) {
        self.global.record_batch(size);
        self.route.record_batch(size);
    }
}

/// The live half of a shard: what a submit needs. Held behind an
/// `Arc` that reloads swap out; the submission channel closes when the last
/// clone drops, which is what lets the old shard drain instead of dropping
/// in-flight jobs.
pub(crate) struct ShardInner {
    pub sender: SyncSender<Job>,
}

/// The join half of a shard, retired by `ShardThreads::join` after the
/// matching [`ShardInner`] is unreachable.
pub(crate) struct ShardThreads {
    batcher: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardThreads {
    /// Block until the shard has drained its queue and every thread exited.
    pub fn join(self) {
        let _ = self.batcher.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}

/// Spawn a shard: `assets` (one per worker) are consumed by the worker
/// threads; the caller keeps the returned `ShardInner` for submissions and
/// `ShardThreads` for retirement.
pub(crate) fn spawn_shard(
    config: &RouteConfig,
    assets: Vec<WorkerAssets>,
    cache: &SharedCache,
    stats: &StatsPair,
    arenas: Vec<ArenaGauges>,
) -> (Arc<ShardInner>, ShardThreads) {
    let (submit_tx, submit_rx) = mpsc::sync_channel::<Job>(config.queue_capacity);
    let (work_tx, work_rx) = mpsc::sync_channel::<Batch>(assets.len() * 2);
    let work_rx = Arc::new(Mutex::new(work_rx));

    let mut workers = Vec::with_capacity(assets.len());
    for (index, worker_assets) in assets.into_iter().enumerate() {
        let work_rx = Arc::clone(&work_rx);
        let cache = Arc::clone(cache);
        let stats = stats.clone();
        let arena_gauges = arenas.get(index).cloned();
        workers.push(std::thread::spawn(move || {
            worker_loop(worker_assets, &work_rx, &cache, &stats, arena_gauges)
        }));
    }

    let batcher_stats = stats.clone();
    let max_batch = config.max_batch;
    let max_linger = config.max_linger;
    let batcher = std::thread::spawn(move || {
        batcher_loop(&submit_rx, &work_tx, max_batch, max_linger, &batcher_stats)
    });

    (
        Arc::new(ShardInner { sender: submit_tx }),
        ShardThreads { batcher, workers },
    )
}

fn batcher_loop(
    submit_rx: &Receiver<Job>,
    work_tx: &SyncSender<Batch>,
    max_batch: usize,
    max_linger: Duration,
    stats: &StatsPair,
) {
    // The batcher is the single consumer of the submission queue, so the
    // queue-wait stage ends here: each pop stamps `dequeued` and reports
    // submission → pop to the route's queue_wait probe. A job whose deadline
    // passed while it sat in the queue is answered right here — it is never
    // batched, never handed to a worker, and never defended late; this is
    // the wire deadline's first enforcement point (the workers keep their
    // own check for deadlines that expire during batch dwell).
    let pop = |mut job: Job| -> Option<Job> {
        let now = Instant::now();
        stats
            .stages
            .queue_wait
            .observe(job.request_id, now.duration_since(job.enqueued));
        if job.deadline.is_some_and(|deadline| now >= deadline) {
            stats.record_expired();
            let _ = job.responder.send(Err(ServeError::DeadlineExceeded));
            return None;
        }
        job.dequeued = Some(now);
        Some(job)
    };
    loop {
        let first = loop {
            match submit_rx.recv() {
                Ok(job) => {
                    if let Some(job) = pop(job) {
                        break job;
                    }
                }
                Err(_) => return, // every submission sender dropped; drain complete
            }
        };
        let mut jobs = vec![first];
        let deadline = Instant::now() + max_linger;
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match submit_rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    if let Some(job) = pop(job) {
                        jobs.push(job);
                    }
                }
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }

        // Group by input shape: a batch must be shape-homogeneous to concat.
        let mut groups: Vec<(Vec<usize>, Vec<Job>)> = Vec::new();
        for job in jobs {
            let dims = job.image.shape().dims().to_vec();
            match groups.iter_mut().find(|(d, _)| *d == dims) {
                Some((_, group)) => group.push(job),
                None => groups.push((dims, vec![job])),
            }
        }
        for (_, group) in groups {
            stats.record_batch(group.len());
            if let Err(mpsc::SendError(batch)) = work_tx.send(Batch { jobs: group }) {
                // Workers are gone; fail the whole batch.
                for job in batch.jobs {
                    let _ = job.responder.send(Err(ServeError::Closed));
                }
                return;
            }
        }
    }
}

fn worker_loop(
    mut assets: WorkerAssets,
    work_rx: &Arc<Mutex<Receiver<Batch>>>,
    cache: &SharedCache,
    stats: &StatsPair,
    arena_gauges: Option<ArenaGauges>,
) {
    loop {
        // Hold the lock only for the dequeue, never while defending. A
        // poisoned mutex just means another worker panicked mid-dequeue; the
        // receiver itself is still valid, so keep serving instead of
        // cascading the panic across the whole pool.
        let batch = {
            let receiver = work_rx.lock().unwrap_or_else(PoisonError::into_inner);
            receiver.recv()
        };
        let batch = match batch {
            Ok(batch) => batch,
            Err(_) => return, // batcher gone and queue drained
        };
        process_batch(&mut assets, batch, cache, stats);
        if let Some(gauges) = &arena_gauges {
            gauges.publish(&assets.scratch.stats());
        }
    }
}

fn process_batch(assets: &mut WorkerAssets, batch: Batch, cache: &SharedCache, stats: &StatsPair) {
    // Answer expired jobs before paying for the defense: a deadline request
    // prefers a fast typed error over a late response.
    let now = Instant::now();
    let (live, expired): (Vec<Job>, Vec<Job>) = batch
        .jobs
        .into_iter()
        .partition(|job| job.deadline.is_none_or(|deadline| now < deadline));
    for job in expired {
        stats.record_expired();
        let _ = job.responder.send(Err(ServeError::DeadlineExceeded));
    }
    if live.is_empty() {
        return;
    }

    // The batch-dwell stage ends at worker pickup: each live job reports
    // pop → pickup. Batch-level spans below are tagged with the first job's
    // request id (a batch of one — the acceptance-test shape — therefore
    // carries every stage under a single id).
    for job in &live {
        stats.stages.batch_dwell.observe(
            job.request_id,
            now.duration_since(job.dequeued.unwrap_or(job.enqueued)),
        );
    }
    let lead_request = live[0].request_id;

    // The worker's private arena serves the whole defense: the merged batch
    // and every SR intermediate are recycled after use, so at steady state
    // only the per-job response tensors (which escape to the clients) are
    // heap-allocated.
    let WorkerAssets {
        pipeline,
        classifier,
        scratch,
    } = assets;
    let trace = DefendTrace {
        preprocess: &stats.stages.preprocess,
        sr_forward: &stats.stages.sr_forward,
        request: lead_request,
    };
    let outcome = Tensor::concat_batch_arena(live.iter().map(|job| &job.image), scratch.arena())
        .and_then(|merged| {
            let defended = pipeline.defend_scratch_traced(&merged, scratch, &trace);
            scratch.recycle(merged);
            defended
        })
        .and_then(|defended| {
            // The batch tensor is recycled even when classification or the
            // split fails, keeping the arena's in-use accounting exact.
            let outcome = (|| {
                let labels = match classifier.as_mut() {
                    Some(classifier) => {
                        let span = stats.stages.classify.span(lead_request);
                        let logits = classifier.forward(&defended, false)?;
                        let labels = row_argmax(&logits)?;
                        drop(span);
                        Some(labels)
                    }
                    None => None,
                };
                // Responses leave the worker thread, so they are plain owned
                // tensors, not arena buffers.
                let parts = defended.split_batch(1)?;
                Ok((parts, labels))
            })();
            scratch.recycle(defended);
            outcome
        });

    match outcome {
        Ok((parts, labels)) => {
            stats.record_computed(parts.len());
            for (index, (job, part)) in live.into_iter().zip(parts).enumerate() {
                let label = labels.as_ref().map(|l| l[index]);
                if let Some(key) = job.cache_key {
                    // A poisoned guard means some other holder panicked, not
                    // that this worker did: recover it rather than cascade
                    // the panic across every worker that caches.
                    cache
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .insert(key, (part.clone(), label));
                }
                stats.record_completion(job.enqueued.elapsed(), false);
                let _ = job.responder.send(Ok(DefenseResponse {
                    defended: part,
                    label,
                    cache_hit: false,
                }));
            }
        }
        Err(err) => {
            let message = err.to_string();
            for job in live {
                stats.record_error();
                let _ = job
                    .responder
                    .send(Err(ServeError::Pipeline(message.clone())));
            }
        }
    }
}

/// Per-row argmax of a `[N, K]` logits tensor.
fn row_argmax(logits: &Tensor) -> sesr_tensor::Result<Vec<usize>> {
    let (rows, cols) = logits.shape().as_matrix()?;
    let data = logits.data();
    let mut labels = Vec::with_capacity(rows);
    for row in 0..rows {
        let slice = &data[row * cols..(row + 1) * cols];
        let mut best = 0usize;
        for (i, v) in slice.iter().enumerate() {
            if *v > slice[best] {
                best = i;
            }
        }
        labels.push(best);
    }
    Ok(labels)
}
