//! SLO evaluation wired into a running gateway: burn-rate alerts, journal
//! events, and the per-route health states that gate admission and reload.
//!
//! [`SloRuntime`] owns an [`SloEngine`] fed from the gateway's own
//! telemetry snapshots. Every tick it (1) evaluates each route's latency
//! and error-budget SLOs over the windowed ring, (2) journals alert
//! lifecycle edges (`slo.page` / `slo.warn` / `slo.resolved`), (3) steps
//! each route's [`HealthMachine`] with the worst firing severity and writes
//! the result back into the gateway — which is what makes an Unhealthy
//! route shed load and blocks artifact promotion — and (4) publishes the
//! firing alerts plus health to the hub's status board, so they appear in
//! every exported v2 snapshot.
//!
//! Drive it deterministically with [`SloRuntime::tick_at`] (tests), on the
//! real clock with [`SloRuntime::tick`], or in the background with
//! [`SloRuntime::spawn`].

use crate::gateway::GatewayClient;
use crate::route::RouteKey;
use sesr_telemetry::{
    AlertSeverity, BurnRateRule, Counter, Gauge, HealthMachine, HealthPolicy, Level, Probe,
    SloEngine, SloEvaluation, SloObjective, SloSpec, SloTransition,
};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Declarative SLO policy applied uniformly to every gateway route.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// Latency objective: at most [`SloPolicy::latency_allowed_milli`]
    /// thousandths of requests may take longer than this, end to end.
    pub latency_threshold: Duration,
    /// Allowed slow fraction in thousandths (10 = a p99 objective).
    pub latency_allowed_milli: u64,
    /// Error budget in thousandths over rejected (`Overloaded`), expired
    /// (`DeadlineExceeded`) and pipeline-error outcomes.
    pub error_budget_milli: u64,
    /// Burn-rate rules evaluated per objective; defaults to the classic
    /// fast-page (1h/5m at 14.4×) + slow-warn (3d/6h at 1×) pair.
    pub rules: Vec<BurnRateRule>,
    /// Hysteresis thresholds for the per-route health machines.
    pub health: HealthPolicy,
    /// Snapshot frames retained in the windowed ring. Size to cover the
    /// longest rule window at the tick interval in use.
    pub window_frames: usize,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            latency_threshold: Duration::from_millis(100),
            latency_allowed_milli: 10,
            error_budget_milli: 10,
            rules: BurnRateRule::classic(),
            health: HealthPolicy::default(),
            window_frames: 512,
        }
    }
}

/// Journal probes for SLO lifecycle events. Event names are static (the
/// journal requires it), so the *route* is identified by the event's
/// `request` field — the route's index in gateway declaration order — and
/// the `value` field carries the long-window burn rate in thousandths.
struct SloProbes {
    page: Probe,
    warn: Probe,
    resolved: Probe,
    /// Health transitions; `value` is the new state's discriminant.
    health: Probe,
}

/// The per-tick SLO evaluator bound to one gateway.
pub struct SloRuntime {
    client: GatewayClient,
    engine: SloEngine,
    machines: Vec<(RouteKey, HealthMachine)>,
    epoch: Instant,
    probes: SloProbes,
    fired: Arc<Counter>,
    resolved: Arc<Counter>,
    firing_gauge: Arc<Gauge>,
    /// One `telemetry.slo.<spec>.burn_milli` gauge per spec, in spec order.
    burn_gauges: Vec<Arc<Gauge>>,
}

impl SloRuntime {
    /// Build the runtime: two [`SloSpec`]s per route — a latency objective
    /// over `route.<label>.latency_ns` and an error budget over the route's
    /// rejected/expired/error counters. Sheds (`route.<label>.shed`) are
    /// deliberately *not* in the error budget: they are the health
    /// machine's own output, and counting them would lock an Unhealthy
    /// route out of recovery.
    pub fn new(client: GatewayClient, policy: SloPolicy) -> Self {
        let telemetry = Arc::clone(client.telemetry());
        let mut engine = SloEngine::new(policy.window_frames);
        let mut machines = Vec::new();
        let mut burn_gauges = Vec::new();
        for key in client.routes() {
            let label = key.label();
            let counter = |name: &str| format!("route.{label}.{name}");
            let specs = [
                SloSpec {
                    name: format!("route.{label}/latency"),
                    route: label.clone(),
                    objective: SloObjective::Latency {
                        histogram: counter("latency_ns"),
                        threshold_ns: u64::try_from(policy.latency_threshold.as_nanos())
                            .unwrap_or(u64::MAX),
                        allowed_milli: policy.latency_allowed_milli,
                    },
                    rules: policy.rules.clone(),
                },
                SloSpec {
                    name: format!("route.{label}/errors"),
                    route: label.clone(),
                    objective: SloObjective::ErrorBudget {
                        errors: vec![counter("rejected"), counter("expired"), counter("errors")],
                        total: vec![
                            counter("completed"),
                            counter("rejected"),
                            counter("expired"),
                            counter("errors"),
                        ],
                        budget_milli: policy.error_budget_milli,
                    },
                    rules: policy.rules.clone(),
                },
            ];
            for spec in specs {
                burn_gauges.push(
                    telemetry
                        .metrics()
                        .gauge(&format!("telemetry.slo.{}.burn_milli", spec.name)),
                );
                engine.add_spec(spec);
            }
            machines.push((key, HealthMachine::new(policy.health)));
        }
        let probes = SloProbes {
            page: telemetry.probe("slo.page", Level::Warn, None),
            warn: telemetry.probe("slo.warn", Level::Info, None),
            resolved: telemetry.probe("slo.resolved", Level::Info, None),
            health: telemetry.probe("route.health_changed", Level::Warn, None),
        };
        SloRuntime {
            client,
            engine,
            machines,
            epoch: Instant::now(),
            probes,
            fired: telemetry.metrics().counter("telemetry.slo.alerts_fired"),
            resolved: telemetry.metrics().counter("telemetry.slo.alerts_resolved"),
            firing_gauge: telemetry.metrics().gauge("telemetry.slo.firing"),
            burn_gauges,
        }
    }

    /// The underlying engine (specs, firing alerts, the frame ring).
    pub fn engine(&self) -> &SloEngine {
        &self.engine
    }

    /// Evaluate one tick on the runtime's own clock (milliseconds since
    /// construction).
    pub fn tick(&mut self) -> Vec<SloEvaluation> {
        let now_ms = u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
        self.tick_at(now_ms)
    }

    /// Evaluate one tick at an explicit time on a caller-supplied monotonic
    /// millisecond axis — the deterministic entry point tests use to
    /// compress hours of burn-rate history into milliseconds.
    pub fn tick_at(&mut self, now_ms: u64) -> Vec<SloEvaluation> {
        let snapshot = self.client.telemetry_snapshot();
        let evaluations = self.engine.observe(now_ms, snapshot);

        // Journal the alert lifecycle edges and refresh the burn gauges.
        for (index, evaluation) in evaluations.iter().enumerate() {
            if let Some(gauge) = self.burn_gauges.get(index) {
                gauge.set(i64::try_from(evaluation.burn_milli).unwrap_or(i64::MAX));
            }
            let route_index = self.route_index_by_label(&evaluation.route);
            match &evaluation.transition {
                Some(SloTransition::Fired(alert)) => {
                    self.fired.incr();
                    let probe = match alert.severity {
                        AlertSeverity::Page => &self.probes.page,
                        AlertSeverity::Warn => &self.probes.warn,
                    };
                    probe.observe(route_index, Duration::from_nanos(alert.burn_milli));
                }
                Some(SloTransition::Resolved(alert)) => {
                    self.resolved.incr();
                    self.probes
                        .resolved
                        .observe(route_index, Duration::from_nanos(alert.burn_milli));
                }
                None => {}
            }
        }

        // Step every route's health machine and write the verdicts back
        // into the gateway (admission) and the status board (export).
        for (key, machine) in &mut self.machines {
            let label = key.label();
            let worst = self.engine.worst_for_route(&label);
            if let Some(transition) = machine.observe(worst) {
                let route_index = self.client.route_index(key).unwrap_or(u64::MAX);
                self.probes.health.observe(
                    route_index,
                    Duration::from_nanos(u64::from(transition.to.as_u8())),
                );
            }
            let state = machine.state();
            let _ = self.client.set_route_health(key, state);
            self.client.telemetry().status().set_health(&label, state);
        }
        let firing = self.engine.firing();
        self.firing_gauge
            .set(i64::try_from(firing.len()).unwrap_or(i64::MAX));
        self.client.telemetry().status().set_alerts(firing);
        evaluations
    }

    fn route_index_by_label(&self, label: &str) -> u64 {
        self.machines
            .iter()
            .position(|(key, _)| key.label() == label)
            .map(|index| index as u64)
            .unwrap_or(u64::MAX)
    }

    /// Run the runtime on a background thread, ticking every `interval`.
    pub fn spawn(self, interval: Duration) -> SloMonitor {
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let mut runtime = self;
        let thread = std::thread::spawn(move || loop {
            match stop_rx.recv_timeout(interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {
                    runtime.tick();
                }
            }
        });
        SloMonitor { stop_tx, thread }
    }
}

impl std::fmt::Debug for SloRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloRuntime")
            .field("specs", &self.engine.specs().len())
            .field("routes", &self.machines.len())
            .finish()
    }
}

/// Handle to a background [`SloRuntime`] thread. The monitor holds a
/// [`GatewayClient`]; stop it before
/// [`DefenseGateway::shutdown`](crate::gateway::DefenseGateway::shutdown)
/// or the shutdown join will wait on it.
pub struct SloMonitor {
    stop_tx: mpsc::Sender<()>,
    thread: JoinHandle<()>,
}

impl SloMonitor {
    /// Stop ticking and join the monitor thread (releases its client).
    pub fn stop(self) {
        let SloMonitor { stop_tx, thread } = self;
        let _ = stop_tx.send(());
        let _ = thread.join();
    }
}

impl std::fmt::Debug for SloMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloMonitor").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::GatewayBuilder;
    use crate::route::DefenseRequest;
    use sesr_defense::pipeline::PreprocessConfig;
    use sesr_models::SrModelKind;
    use sesr_telemetry::HealthState;
    use sesr_tensor::{init, Shape, Tensor};

    fn test_image(seed: u64) -> Tensor {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        init::uniform(Shape::new(&[1, 3, 8, 8]), 0.0, 1.0, &mut rng)
    }

    fn route() -> RouteKey {
        RouteKey::new(SrModelKind::NearestNeighbor, 2, PreprocessConfig::none())
    }

    fn fast_policy() -> SloPolicy {
        SloPolicy {
            latency_threshold: Duration::from_nanos(1), // everything breaches
            latency_allowed_milli: 10,
            error_budget_milli: 10,
            rules: vec![BurnRateRule {
                long_ms: 500,
                short_ms: 100,
                max_burn_milli: 1_000,
                severity: AlertSeverity::Page,
            }],
            health: HealthPolicy {
                degrade_after: 1,
                unhealthy_after: 1,
                recover_after: 2,
            },
            window_frames: 32,
        }
    }

    #[test]
    fn breaching_traffic_walks_health_down_and_sheds() {
        let gateway = GatewayBuilder::new()
            .cache_capacity(0)
            .route(route())
            .build()
            .unwrap();
        let client = gateway.client();
        let mut runtime = SloRuntime::new(client.clone(), fast_policy());

        runtime.tick_at(0); // baseline frame
        for seed in 0..10 {
            client
                .defend_blocking(DefenseRequest::new(test_image(seed)))
                .unwrap();
        }
        runtime.tick_at(200); // every request violated the 1ns objective
        assert_eq!(
            client.route_health(&route()).unwrap(),
            HealthState::Degraded
        );
        // The regression persists into the next short window: Degraded with
        // a still-firing page escalates to Unhealthy.
        for seed in 10..20 {
            client
                .defend_blocking(DefenseRequest::new(test_image(seed)))
                .unwrap();
        }
        runtime.tick_at(400);
        assert_eq!(
            client.route_health(&route()).unwrap(),
            HealthState::Unhealthy
        );

        // Unhealthy admission sheds before queueing, typed as Overloaded.
        match client.submit(DefenseRequest::new(test_image(99))) {
            Err(err) => assert_eq!(err, crate::server::ServeError::Overloaded),
            Ok(_) => panic!("an Unhealthy route must shed new submissions"),
        }
        let snapshot = client.telemetry_snapshot();
        assert_eq!(snapshot.counter("gateway.shed"), Some(1));
        assert!(
            snapshot.events.iter().any(|e| e.name == "gateway.shed"),
            "sheds must be journaled"
        );
        // The shed request never reached the error budget.
        assert_eq!(
            snapshot.counter(&format!("route.{}.rejected", route().label())),
            Some(0)
        );
        // Alerts + health are in the exported snapshot via the status board.
        assert!(!snapshot.alerts.is_empty());
        assert_eq!(
            snapshot.health,
            vec![(route().label(), HealthState::Unhealthy)]
        );
        assert!(snapshot.counter("telemetry.slo.alerts_fired").unwrap_or(0) >= 1);

        // Quiet windows resolve the alert and health recovers one level at
        // a time: Unhealthy → Degraded → Healthy.
        for t in [1_000u64, 1_500, 2_000, 2_500, 3_000] {
            runtime.tick_at(t);
        }
        assert_eq!(client.route_health(&route()).unwrap(), HealthState::Healthy);
        let snapshot = client.telemetry_snapshot();
        assert!(snapshot.alerts.is_empty(), "quiet windows must resolve");
        assert_eq!(
            snapshot.health,
            vec![(route().label(), HealthState::Healthy)]
        );

        drop(client);
        drop(runtime);
        gateway.shutdown();
    }

    #[test]
    fn clean_traffic_never_alerts() {
        let gateway = GatewayBuilder::new().route(route()).build().unwrap();
        let client = gateway.client();
        let mut policy = fast_policy();
        policy.latency_threshold = Duration::from_secs(3600);
        let mut runtime = SloRuntime::new(client.clone(), policy);
        runtime.tick_at(0);
        for seed in 0..5 {
            client
                .defend_blocking(DefenseRequest::new(test_image(seed)).skip_cache())
                .unwrap();
        }
        let evals = runtime.tick_at(200);
        assert!(evals.iter().all(|e| e.firing.is_none()));
        assert_eq!(client.route_health(&route()).unwrap(), HealthState::Healthy);
        assert_eq!(
            client.telemetry_snapshot().gauge("telemetry.slo.firing"),
            Some(0)
        );
        drop(client);
        drop(runtime);
        gateway.shutdown();
    }

    #[test]
    fn monitor_ticks_in_the_background() {
        let gateway = GatewayBuilder::new().route(route()).build().unwrap();
        let client = gateway.client();
        let runtime = SloRuntime::new(client.clone(), SloPolicy::default());
        let monitor = runtime.spawn(Duration::from_millis(5));
        let deadline = Instant::now() + Duration::from_secs(10);
        while client.telemetry_snapshot().health.is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        monitor.stop();
        assert_eq!(
            client.telemetry_snapshot().health,
            vec![(route().label(), HealthState::Healthy)]
        );
        drop(client);
        gateway.shutdown();
    }
}
