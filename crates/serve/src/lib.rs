//! **sesr-serve** — a batched, multi-worker serving subsystem for the SESR
//! adversarial defense.
//!
//! The paper's pitch is that the JPEG → wavelet → ×2-SR defense is cheap
//! enough to sit *in front of every classifier invocation* on edge hardware.
//! This crate turns the single-caller
//! [`DefensePipeline`](sesr_defense::pipeline::DefensePipeline) into a
//! concurrent inference engine able to absorb heavy request traffic:
//!
//! ```text
//!                 ┌──────────────────────── DefenseServer ───────────────────────┐
//!                 │                                                              │
//! submit(image) ──┼─► bounded submission queue ──► dynamic batcher ─► work queue │
//! (try_send;      │   (capacity queue_capacity;    (coalesce ≤ max_batch,  │     │
//!  Overloaded     │    rejects when full)           linger ≤ max_linger,   │     │
//!  when full)     │                                 group by shape)        ▼     │
//!       │         │   ┌───────────┐                                ┌─ worker 0 ─┐│
//!       ├────────►│   │ LRU cache │◄── insert defended outputs ────┤  worker 1  ││
//!       │  hit?   │   │ (content  │                                │   ...      ││
//!       │         │   │  hash)    │    each worker owns its own    │ worker N-1 ││
//!       │         │   └───────────┘    DefensePipeline             └────┬───────┘│
//!       ▼         │                    (+ optional classifier)          │        │
//! PendingResponse◄┼───────────── per-request response channels ◄── split batch   │
//!                 │                                                              │
//!                 │          StatsRecorder: p50/p95/p99 latency, images/sec      │
//!                 └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! Design points:
//!
//! * **Bounded ingress with explicit backpressure.** [`DefenseClient::submit`]
//!   never blocks: when the submission queue is full it returns
//!   [`ServeError::Overloaded`] so callers can shed load (the behaviour a
//!   front-of-classifier defense needs under attack-volume traffic).
//! * **Dynamic batching.** Requests are coalesced until either `max_batch`
//!   images are waiting or `max_linger` has elapsed since the first one, then
//!   merged with [`Tensor::concat_batch`](sesr_tensor::Tensor::concat_batch)
//!   into one `[N, 3, H, W]` defend call. Mixed image sizes are grouped by
//!   shape, never mixed in one batch, and batched serving is bitwise
//!   equivalent to sequential `defend` for the interpolation upscalers.
//! * **Share-nothing workers.** Each worker thread owns its own
//!   `DefensePipeline` (and optional classifier), built from a deterministic
//!   factory such as
//!   [`SrModelKind::build_seeded_upscaler`](sesr_models::SrModelKind::build_seeded_upscaler),
//!   so there is no lock contention on the defend hot path.
//! * **Content-addressed caching.** Defended outputs are cached in a
//!   hash-keyed [`LruCache`]; resubmitting an identical image skips the
//!   pipeline entirely.
//! * **Built-in observability.** Every completion is timed; the
//!   [`StatsRecorder`] reports p50/p95/p99 latency, sustained images/sec and
//!   cache hit/miss counters.
//! * **Trained-weight hydration.** [`DefenseServer::start_from_store`] builds
//!   the whole pool from a `sesr-store` artifact directory: the newest
//!   checkpoint for the model is read and validated once (memoized by a
//!   [`ModelRegistry`](sesr_store::ModelRegistry)) and every worker receives
//!   identical trained weights — the *deploy many* half of the paper's
//!   train-once / deploy-many edge story.
//!
//! # Quickstart
//!
//! ```
//! use sesr_serve::{DefenseServer, ServeConfig, WorkerAssets};
//! use sesr_defense::pipeline::{DefensePipeline, PreprocessConfig};
//! use sesr_models::SrModelKind;
//! use sesr_tensor::{Shape, Tensor};
//!
//! let server = DefenseServer::start(ServeConfig::default(), |_worker| {
//!     let upscaler = SrModelKind::NearestNeighbor.build_seeded_upscaler(2, 0)?;
//!     Ok(WorkerAssets::new(DefensePipeline::new(
//!         PreprocessConfig::paper(),
//!         upscaler,
//!     )))
//! })?;
//! let client = server.client();
//! let image = Tensor::full(Shape::new(&[1, 3, 16, 16]), 0.5);
//! let response = client.defend_blocking(image)?;
//! assert_eq!(response.defended.shape().dims(), &[1, 3, 32, 32]);
//! println!("{}", server.stats());
//! drop(client); // client clones keep the submission queue open
//! server.shutdown();
//! # Ok::<(), sesr_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod server;
pub mod stats;

pub use cache::{content_hash, LruCache};
pub use server::{
    DefenseClient, DefenseResponse, DefenseServer, PendingResponse, ServeConfig, ServeError,
    WorkerAssets,
};
pub use stats::{ServeStats, StatsRecorder};
