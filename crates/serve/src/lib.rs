//! **sesr-serve** — a multi-model, batched, multi-worker serving subsystem
//! for the SESR adversarial defense.
//!
//! The paper's pitch is that the JPEG → wavelet → ×2-SR defense is cheap
//! enough to sit *in front of every classifier invocation* on edge hardware —
//! and that many tiny SESR variants (XXS→L, ×2/×4) can each play that role.
//! This crate serves the whole zoo at once: a [`DefenseGateway`] hosts one
//! isolated worker shard per route, where a route is a
//! [`RouteKey`]` = (SR model, scale, preprocess)` picked **per request**
//! rather than per deployment.
//!
//! ```text
//!                      ┌───────────────────── DefenseGateway ─────────────────────┐
//!                      │                                                          │
//! DefenseRequest ──────┼─► route table ─┬─► shard sesr-m2:x2:jpeg75+wavelet2      │
//! { image, RouteKey,   │   (UnknownRoute│     queue → batcher → worker pool       │
//!   skip_cache,        │    on miss)    ├─► shard fsrcnn:x2:jpeg75+wavelet2       │
//!   deadline }         │                │     queue → batcher → worker pool       │
//!       │              │                └─► shard bicubic:x2:raw   ...            │
//!       │   hit?       │   ┌──────────────────────────┐      │                    │
//!       ├─────────────►│   │ shared LRU cache, keyed  │◄─────┤ insert defended    │
//!       ▼              │   │ by (RouteKey, hash)      │      ▼                    │
//! PendingResponse ◄────┼── per-request response channels ◄── split batch          │
//!                      │                                                          │
//!                      │   StatsRecorder per route + gateway-wide (GatewayStats)  │
//!                      └──────────────────────────────────────────────────────────┘
//! ```
//!
//! Design points:
//!
//! * **Shard-per-route isolation.** Every declared route owns a bounded
//!   submission queue, a dynamic batcher and `num_workers` private
//!   pipelines. A hot model fills *its own* queue and sheds *its own* load
//!   ([`ServeError::Overloaded`]); other routes keep their full capacity.
//! * **Typed routing.** Requests are [`DefenseRequest`]s: an image, an
//!   optional [`RouteKey`] (default route otherwise) and per-request options
//!   (`skip_cache`, a soft deadline answered with
//!   [`ServeError::DeadlineExceeded`]). Unserved routes fail fast with
//!   [`ServeError::UnknownRoute`].
//! * **Zero-downtime hot reload.** [`GatewayClient::reload`] rebuilds one
//!   route's workers from the newest stored artifact
//!   ([`ModelRegistry::invalidate`](sesr_store::ModelRegistry::invalidate) +
//!   rehydrate), swaps the fresh shard in, then drains and retires the old
//!   one — every accepted job still gets its response. [`ReloadWatcher`]
//!   automates the loop by polling the store for new artifact versions.
//! * **Route-keyed caching.** Defended outputs are cached under
//!   `(RouteKey, content-hash)`, so two routes serving different models can
//!   never return each other's outputs; a reload purges only its own
//!   route's entries.
//! * **Per-route observability.** [`GatewayStats`] reports the global view
//!   plus a per-route breakdown (jobs, p50/p95/p99, cache hit rate,
//!   rejections).
//! * **Dynamic batching** (per shard) with shape-homogeneous grouping, and
//!   **share-nothing workers** as before.
//! * **Cross-request tensor arena reuse.** Every worker owns a
//!   [`ScratchSpace`](sesr_models::ScratchSpace) and defends through
//!   `DefensePipeline::defend_scratch`, so batch merging and the whole SR
//!   forward pass draw their buffers from a per-worker arena that is warm
//!   after the first few requests — zero steady-state heap allocations in
//!   the SR hot path (proven by the counting-allocator harness in
//!   `crates/bench/tests/alloc_tracking.rs`). Only the response tensors,
//!   which escape the worker thread, are plain allocations.
//!
//! The legacy single-pipeline [`DefenseServer`] API is kept as a thin
//! one-route compatibility shim over the gateway.
//!
//! # Quickstart
//!
//! ```
//! use sesr_serve::{DefenseRequest, GatewayBuilder, RouteKey};
//! use sesr_defense::pipeline::PreprocessConfig;
//! use sesr_models::SrModelKind;
//! use sesr_tensor::{Shape, Tensor};
//!
//! let nearest = RouteKey::paper(SrModelKind::NearestNeighbor, 2);
//! let bicubic = RouteKey::new(SrModelKind::Bicubic, 2, PreprocessConfig::none());
//! let gateway = GatewayBuilder::new()
//!     .route(nearest)
//!     .route(bicubic)
//!     .default_route(nearest)
//!     .build()?;
//! let client = gateway.client();
//!
//! let image = Tensor::full(Shape::new(&[1, 3, 16, 16]), 0.5);
//! // Explicitly routed request:
//! let response = client.defend_blocking(DefenseRequest::new(image.clone()).on(bicubic))?;
//! assert_eq!(response.defended.shape().dims(), &[1, 3, 32, 32]);
//! // Default route:
//! client.defend_blocking(DefenseRequest::new(image))?;
//! println!("{}", gateway.stats());
//! drop(client); // client clones keep the submission queues open
//! gateway.shutdown();
//! # Ok::<(), sesr_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod eval;
pub mod gateway;
pub mod route;
pub mod server;
mod shard;
pub mod slo;
pub mod stats;
pub mod telemetry;

pub use cache::{content_hash, LruCache};
pub use eval::GatewayScenario;
pub use gateway::{DefenseGateway, GatewayBuilder, GatewayClient, ReloadWatcher, WorkerFactory};
pub use route::{DefenseRequest, RouteConfig, RouteKey};
pub use server::{
    DefenseClient, DefenseResponse, DefenseServer, PendingResponse, ServeConfig, ServeError,
    WorkerAssets,
};
pub use slo::{SloMonitor, SloPolicy, SloRuntime};
pub use stats::{GatewayStats, ServeStats, StatsRecorder};
pub use telemetry::{write_snapshot_atomic, TelemetryExporter};
