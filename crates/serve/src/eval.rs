//! Gateway-backed evaluation: an [`CustomScenario`] implementation that
//! measures robust accuracy **through the serving stack** instead of calling
//! the defense pipeline directly.
//!
//! The pipeline-level scenarios in `sesr_defense::eval` prove the defense
//! works; this scenario proves the *deployment* works: attacked images are
//! submitted as routed [`DefenseRequest`]s and travel the full
//! queue → batcher → worker → cache path of a
//! [`DefenseGateway`](crate::DefenseGateway) before the classifier ever
//! sees them. Because serving is bitwise-identical to direct
//! pipeline calls, the robust accuracies must match the pipeline scenarios —
//! any divergence is a serving bug, which is exactly what an end-to-end
//! evaluation is for.

use crate::route::{DefenseRequest, RouteConfig, RouteKey};
use crate::server::WorkerAssets;
use crate::{GatewayBuilder, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_attacks::AttackKind;
use sesr_classifiers::ClassifierKind;
use sesr_defense::eval::{CustomScenario, DefenseSpec, EvalRecord, ModelBank};
use sesr_defense::robustness::RobustnessEvaluator;
use sesr_tensor::{Tensor, TensorError};

fn serve_err(context: &str, err: ServeError) -> TensorError {
    TensorError::invalid_argument(format!("gateway eval {context}: {err}"))
}

/// Evaluate one classifier's robustness with every defense served through a
/// multi-route [`DefenseGateway`](crate::DefenseGateway).
///
/// All trained models come from the plan's [`ModelBank`] (train-once), each
/// defense spec becomes one gateway route with share-nothing workers, and
/// the records carry both the robust accuracies and the per-route serving
/// counters so a plan run doubles as a serving smoke test.
pub struct GatewayScenario {
    /// The classifier under attack.
    pub classifier: ClassifierKind,
    /// One gateway route per spec (`model` must be `Some`; the gateway has
    /// no "no defense" route — that baseline belongs to the pipeline-level
    /// robustness scenarios).
    pub defenses: Vec<DefenseSpec>,
    /// Attacks to evaluate.
    pub attacks: Vec<AttackKind>,
    /// Per-route shard configuration.
    pub route_config: RouteConfig,
    /// Shared gateway cache capacity (0 disables caching).
    pub cache_capacity: usize,
}

impl GatewayScenario {
    /// A scenario serving the paper's defense configuration (×2, JPEG +
    /// wavelet) for each given SR model.
    pub fn paper(
        classifier: ClassifierKind,
        models: impl IntoIterator<Item = sesr_models::SrModelKind>,
        attacks: Vec<AttackKind>,
    ) -> Self {
        GatewayScenario {
            classifier,
            defenses: models.into_iter().map(DefenseSpec::paper).collect(),
            attacks,
            route_config: RouteConfig::default(),
            cache_capacity: 256,
        }
    }
}

impl CustomScenario for GatewayScenario {
    fn kind(&self) -> &'static str {
        "gateway"
    }

    fn run(&self, bank: &ModelBank) -> sesr_tensor::Result<Vec<EvalRecord>> {
        if self.defenses.is_empty() || self.attacks.is_empty() {
            return Err(TensorError::invalid_argument(
                "a gateway scenario needs at least one defense and one attack",
            ));
        }

        // Classifier + clean-correct evaluation subset, exactly like the
        // pipeline-level scenarios.
        let dataset = bank.classification_dataset()?;
        let classifier = bank.classifier(self.classifier)?;
        let mut evaluator = RobustnessEvaluator::new(
            self.classifier.name(),
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            bank.config().eval_images,
        )?;
        let clean_accuracy = evaluator.clean_accuracy()?;

        // One route per defense spec, workers hydrated through the bank so
        // the gateway serves the exact trained weights the plan evaluates.
        let mut builder = GatewayBuilder::new().cache_capacity(self.cache_capacity);
        let mut routes = Vec::with_capacity(self.defenses.len());
        for spec in &self.defenses {
            let Some(model) = spec.model else {
                return Err(TensorError::invalid_argument(
                    "gateway routes need a concrete SR model (DefenseSpec::none has no route)",
                ));
            };
            let key = RouteKey::new(model, spec.scale, spec.preprocess);
            let mut assets = Vec::with_capacity(self.route_config.num_workers);
            for _ in 0..self.route_config.num_workers {
                let pipeline = bank.defense(spec)?.ok_or_else(|| {
                    TensorError::invalid_argument(
                        "defense spec with a model built no pipeline (bank out of sync)",
                    )
                })?;
                assets.push(WorkerAssets::new(pipeline));
            }
            builder = builder.route_with_assets(key, self.route_config.clone(), assets);
            routes.push((key, *spec));
        }
        let gateway = builder.build().map_err(|e| serve_err("startup", e))?;
        let client = gateway.client();

        // Craft per attack, then push every adversarial image through every
        // route. Serving counters become part of each record — as the
        // *delta* accrued by that (attack, route) pass, so the JSON artifact
        // shows exactly which requests travelled the serving stack and sums
        // correctly across records.
        let mut records = Vec::with_capacity(self.attacks.len() * routes.len());
        let mut seen: std::collections::HashMap<RouteKey, (u64, u64)> =
            std::collections::HashMap::new();
        for attack_kind in &self.attacks {
            let attack = attack_kind.build(bank.config().attack);
            let mut rng = StdRng::seed_from_u64(
                bank.config()
                    .seed
                    .wrapping_add(7000 + *attack_kind as u64 * 23 + self.classifier as u64),
            );
            let adversarial = evaluator.craft_adversarial(attack.as_ref(), &mut rng)?;
            for (key, spec) in &routes {
                let mut defended: Vec<Tensor> = Vec::with_capacity(adversarial.len());
                for image in &adversarial {
                    let response = client
                        .defend_blocking(DefenseRequest::new(image.clone()).on(*key))
                        .map_err(|e| serve_err("submit", e))?;
                    defended.push(response.defended);
                }
                // The gateway already applied the defense; classify as-is.
                let robust_accuracy = evaluator.defended_accuracy(&defended, None)?;
                // `defend_blocking` is synchronous, so the route's counters
                // are settled: subtract the totals of earlier passes to get
                // this pass's share.
                let route_stats = client.route_stats(key).map_err(|e| serve_err("stats", e))?;
                let (prev_served, prev_hits) = seen
                    .insert(*key, (route_stats.completed, route_stats.cache_hits))
                    .unwrap_or((0, 0));
                records.push(
                    EvalRecord::new()
                        .text("classifier", self.classifier.name())
                        .text("defense", spec.name())
                        .text("route", key.label())
                        .text("attack", attack_kind.name())
                        .float("clean_accuracy", f64::from(clean_accuracy))
                        .float("robust_accuracy", f64::from(robust_accuracy))
                        .int("num_images", adversarial.len() as u64)
                        .int("served", route_stats.completed - prev_served)
                        .int("cache_hits", route_stats.cache_hits - prev_hits),
                );
            }
        }

        drop(client);
        gateway.shutdown();
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_defense::experiments::ExperimentConfig;
    use sesr_models::SrModelKind;

    fn tiny_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::quick();
        config.sr_epochs = 1;
        config.sr_train_size = 4;
        config.sr_val_size = 2;
        config.classifier_epochs = 2;
        config
    }

    #[test]
    fn gateway_scenario_matches_direct_pipeline_accuracy() {
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        let scenario = GatewayScenario::paper(
            ClassifierKind::MobileNetV2,
            [SrModelKind::NearestNeighbor, SrModelKind::SesrM2],
            vec![AttackKind::Fgsm],
        );
        let records = scenario.run(&bank).unwrap();
        assert_eq!(records.len(), 2, "one record per (attack, route)");
        for record in &records {
            let served = record.get_int("served").unwrap();
            assert!(served > 0, "requests must travel the serving stack");
            let accuracy = record.get_float("robust_accuracy").unwrap();
            assert!((0.0..=1.0).contains(&accuracy));

            // Cross-check against the direct pipeline path: serving must not
            // change the verdict.
            let spec = DefenseSpec::paper(
                SrModelKind::parse(record.get_text("defense").unwrap()).unwrap(),
            );
            let pipeline = bank.defense(&spec).unwrap().unwrap();
            let classifier = bank.classifier(ClassifierKind::MobileNetV2).unwrap();
            let dataset = bank.classification_dataset().unwrap();
            let mut evaluator = RobustnessEvaluator::new(
                "MobileNet-V2",
                classifier,
                dataset.val_images(),
                dataset.val_labels(),
                bank.config().eval_images,
            )
            .unwrap();
            let attack = AttackKind::Fgsm.build(bank.config().attack);
            let mut rng = StdRng::seed_from_u64(
                bank.config()
                    .seed
                    .wrapping_add(7000 + AttackKind::Fgsm as u64 * 23),
            );
            let adversarial = evaluator
                .craft_adversarial(attack.as_ref(), &mut rng)
                .unwrap();
            let direct = evaluator
                .defended_accuracy(&adversarial, Some(&pipeline))
                .unwrap();
            assert_eq!(
                accuracy as f32, direct,
                "gateway-served accuracy must equal the direct pipeline accuracy"
            );
        }
    }

    #[test]
    fn gateway_scenario_rejects_defenseless_specs() {
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        let mut scenario = GatewayScenario::paper(
            ClassifierKind::MobileNetV2,
            [SrModelKind::NearestNeighbor],
            vec![AttackKind::Fgsm],
        );
        scenario.defenses = vec![DefenseSpec::none()];
        assert!(scenario.run(&bank).is_err());
        scenario.defenses = Vec::new();
        assert!(scenario.run(&bank).is_err());
    }
}
