//! Routed-request types: which defense a request wants, and how it wants it
//! served.
//!
//! A [`RouteKey`] names one deployed defense variant — SR model, upscaling
//! factor and preprocessing — and is the unit of isolation in the gateway:
//! every key gets its own bounded queue, batcher and worker shard, and the
//! output cache is keyed by `(RouteKey, content-hash)`. A [`DefenseRequest`]
//! bundles an image with an optional route (falling back to the gateway's
//! default) and per-request options (`skip_cache`, a soft deadline).

use sesr_defense::pipeline::PreprocessConfig;
use sesr_models::SrModelKind;
use sesr_tensor::Tensor;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Identity of one deployed defense variant: `(model, scale, preprocess)`.
///
/// Equality and hashing are bit-exact over the configuration (f32 fields
/// compare by bit pattern), so a key round-trips through a `HashMap` exactly
/// and two keys are the same route if and only if they would compute the same
/// defense.
#[derive(Debug, Clone, Copy)]
pub struct RouteKey {
    /// The SR network (or interpolation baseline) defending this route.
    pub model: SrModelKind,
    /// Upscaling factor (the paper uses ×2 everywhere; learned local
    /// networks are ×2-only).
    pub scale: usize,
    /// The non-learned preprocessing stages run before upscaling.
    pub preprocess: PreprocessConfig,
}

impl RouteKey {
    /// A route with an explicit preprocessing configuration.
    pub fn new(model: SrModelKind, scale: usize, preprocess: PreprocessConfig) -> Self {
        RouteKey {
            model,
            scale,
            preprocess,
        }
    }

    /// A route running the paper's full JPEG + wavelet preprocessing.
    pub fn paper(model: SrModelKind, scale: usize) -> Self {
        RouteKey::new(model, scale, PreprocessConfig::paper())
    }

    /// Compact stable identity string, e.g. `"sesr-m2:x2:jpeg75+wavelet2"`;
    /// used in error messages, stats breakdowns and logs.
    pub fn label(&self) -> String {
        format!(
            "{}:x{}:{}",
            self.model.slug(),
            self.scale,
            self.preprocess.label()
        )
    }

    /// Parse a label produced by [`RouteKey::label`] back into a key — the
    /// exact inverse, so `RouteKey::parse(&key.label()) == Some(key)`.
    /// Returns `None` for labels no route can emit. This is how cluster
    /// tooling (worker bins, traffic generators) turns the wire's string
    /// route names back into typed keys.
    pub fn parse(label: &str) -> Option<RouteKey> {
        let mut parts = label.splitn(3, ':');
        let model = SrModelKind::parse(parts.next()?)?;
        let scale = parts.next()?.strip_prefix('x')?.parse().ok()?;
        let preprocess = PreprocessConfig::parse_label(parts.next()?)?;
        Some(RouteKey {
            model,
            scale,
            preprocess,
        })
    }

    /// The fields that define route identity, with f32s reduced to bit
    /// patterns so `Eq`/`Hash` agree and stay total.
    fn identity(&self) -> (SrModelKind, usize, Option<u8>, Option<(usize, u32)>) {
        (
            self.model,
            self.scale,
            self.preprocess.jpeg.map(|j| j.quality),
            self.preprocess
                .wavelet
                .map(|w| (w.levels, w.threshold_scale.to_bits())),
        )
    }
}

impl PartialEq for RouteKey {
    fn eq(&self, other: &Self) -> bool {
        self.identity() == other.identity()
    }
}

impl Eq for RouteKey {}

impl Hash for RouteKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.identity().hash(state);
    }
}

impl std::fmt::Display for RouteKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Per-route tuning knobs: each route owns an independent copy of the
/// queue → batcher → worker shard, so a hot model saturates its own queue
/// without starving the others.
#[derive(Debug, Clone)]
pub struct RouteConfig {
    /// Worker threads for this route, each owning a private pipeline
    /// (default 2).
    pub num_workers: usize,
    /// Maximum images coalesced into one defend call (default 8).
    pub max_batch: usize,
    /// Longest the batcher waits for more requests after the first one
    /// (default 1 ms; `Duration::ZERO` dispatches immediately).
    pub max_linger: Duration,
    /// Bounded submission-queue capacity; submissions beyond it are rejected
    /// with `ServeError::Overloaded` (default 64).
    pub queue_capacity: usize,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            num_workers: 2,
            max_batch: 8,
            max_linger: Duration::from_millis(1),
            queue_capacity: 64,
        }
    }
}

impl RouteConfig {
    pub(crate) fn validate(&self) -> Result<(), crate::server::ServeError> {
        if self.num_workers == 0 || self.max_batch == 0 || self.queue_capacity == 0 {
            return Err(crate::server::ServeError::InvalidRequest(
                "num_workers, max_batch and queue_capacity must all be positive".to_string(),
            ));
        }
        Ok(())
    }
}

impl From<&crate::server::ServeConfig> for RouteConfig {
    /// Carry a single-pipeline `ServeConfig` over to one gateway route (the
    /// compatibility-shim mapping; `cache_capacity` stays a gateway-level
    /// knob).
    fn from(config: &crate::server::ServeConfig) -> Self {
        RouteConfig {
            num_workers: config.num_workers,
            max_batch: config.max_batch,
            max_linger: config.max_linger,
            queue_capacity: config.queue_capacity,
        }
    }
}

/// One routed request: an image, the route that should defend it, and
/// per-request serving options.
#[derive(Debug, Clone)]
pub struct DefenseRequest {
    pub(crate) image: Tensor,
    pub(crate) route: Option<RouteKey>,
    pub(crate) skip_cache: bool,
    pub(crate) deadline: Option<Duration>,
}

impl DefenseRequest {
    /// A request for the gateway's default route with default options.
    pub fn new(image: Tensor) -> Self {
        DefenseRequest {
            image,
            route: None,
            skip_cache: false,
            deadline: None,
        }
    }

    /// Route the request to a specific defense variant instead of the
    /// gateway default.
    pub fn on(mut self, route: RouteKey) -> Self {
        self.route = Some(route);
        self
    }

    /// Bypass the output cache for this request (both lookup and insert):
    /// the defense always recomputes, e.g. for freshness probes.
    pub fn skip_cache(mut self) -> Self {
        self.skip_cache = true;
        self
    }

    /// Give the request a soft deadline measured from submission: a job
    /// still waiting in the queue/batcher when the deadline passes is
    /// answered with `ServeError::DeadlineExceeded` instead of being
    /// defended late.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The image to defend.
    pub fn image(&self) -> &Tensor {
        &self.image
    }

    /// The explicit route, if any (`None` = gateway default).
    pub fn route(&self) -> Option<RouteKey> {
        self.route
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_tensor::Shape;
    use std::collections::HashMap;

    #[test]
    fn route_keys_hash_by_full_identity() {
        let mut map: HashMap<RouteKey, u32> = HashMap::new();
        map.insert(RouteKey::paper(SrModelKind::SesrM2, 2), 1);
        map.insert(RouteKey::paper(SrModelKind::SesrM3, 2), 2);
        map.insert(RouteKey::paper(SrModelKind::SesrM2, 4), 3);
        map.insert(
            RouteKey::new(SrModelKind::SesrM2, 2, PreprocessConfig::none()),
            4,
        );
        assert_eq!(map.len(), 4, "model, scale and preprocess all distinguish");
        assert_eq!(map[&RouteKey::paper(SrModelKind::SesrM2, 2)], 1);
    }

    #[test]
    fn labels_are_compact_and_stable() {
        assert_eq!(
            RouteKey::paper(SrModelKind::SesrM2, 2).label(),
            "sesr-m2:x2:jpeg75+wavelet2"
        );
        assert_eq!(
            RouteKey::new(SrModelKind::Bicubic, 4, PreprocessConfig::none()).to_string(),
            "bicubic:x4:raw"
        );
    }

    #[test]
    fn parse_round_trips_every_label_shape() {
        let mut tuned = PreprocessConfig::without_jpeg();
        tuned.wavelet.as_mut().unwrap().threshold_scale = 1.5;
        let keys = [
            RouteKey::paper(SrModelKind::SesrM2, 2),
            RouteKey::new(SrModelKind::Bicubic, 4, PreprocessConfig::none()),
            RouteKey::new(
                SrModelKind::NearestNeighbor,
                2,
                PreprocessConfig::without_jpeg(),
            ),
            RouteKey::new(SrModelKind::SesrM5, 2, tuned),
        ];
        for key in keys {
            assert_eq!(RouteKey::parse(&key.label()), Some(key), "{}", key.label());
        }
    }

    #[test]
    fn parse_rejects_malformed_labels() {
        for bad in [
            "",
            "sesr-m2",
            "sesr-m2:x2",
            "sesr-m2:2:raw",        // missing the 'x' scale prefix
            "sesr-m2:xtwo:raw",     // non-numeric scale
            "not-a-model:x2:raw",   // unknown model
            "sesr-m2:x2:jpg75",     // unknown preprocess stage
            "sesr-m2:x2:raw:extra", // trailing segment folds into preprocess
        ] {
            assert_eq!(RouteKey::parse(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn request_builder_sets_options() {
        let image = Tensor::zeros(Shape::new(&[1, 3, 4, 4]));
        let route = RouteKey::paper(SrModelKind::Fsrcnn, 2);
        let request = DefenseRequest::new(image)
            .on(route)
            .skip_cache()
            .with_deadline(Duration::from_millis(5));
        assert_eq!(request.route(), Some(route));
        assert!(request.skip_cache);
        assert_eq!(request.deadline, Some(Duration::from_millis(5)));
        assert_eq!(request.image().shape().dims(), &[1, 3, 4, 4]);
    }
}
