//! Gateway ↔ telemetry wiring: per-route stage probes, per-worker arena
//! gauges and the background snapshot exporter.
//!
//! The gateway owns one [`Telemetry`] hub; every
//! route registers the same six stage probes under its own histogram names
//! (`route.<label>.stage.<stage>_ns`), so a
//! [`TelemetrySnapshot`] breaks request
//! latency down per route *and* per stage. Journal events share one static
//! name per stage (`stage.queue_wait`, …) and are tagged with the request id
//! instead, which keeps hot-path recording allocation-free.

use sesr_telemetry::{Counter, Gauge, Level, Probe, Telemetry, TelemetrySnapshot};
use sesr_tensor::ArenaStats;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The six timed stages of a gateway request, as one probe bundle per route.
///
/// Every probe journals at [`Level::Debug`] under a static stage name and
/// mirrors durations into that route's `route.<label>.stage.<stage>_ns`
/// histogram.
#[derive(Clone)]
pub(crate) struct StageProbes {
    /// Submission → batcher pop: how long a job sat in the bounded queue.
    pub queue_wait: Probe,
    /// Batcher pop → worker pickup: how long a formed batch waited for a
    /// free worker (includes the linger window spent growing the batch).
    pub batch_dwell: Probe,
    /// Clamp + JPEG + wavelet, timed inside the defense pipeline.
    pub preprocess: Probe,
    /// The SR forward pass, timed inside the defense pipeline.
    pub sr_forward: Probe,
    /// Classifier forward + argmax over the defended batch.
    pub classify: Probe,
    /// Output-cache probe in the submission path (hit or miss).
    pub cache_lookup: Probe,
}

impl StageProbes {
    /// Register the stage probes for the route labelled `label` on `hub`.
    /// Re-registering the same label (hot reload) reuses the same histograms
    /// and event codes, so metrics survive a shard swap.
    pub fn for_route(hub: &Telemetry, label: &str) -> Self {
        let stage = |event: &'static str, stage: &str| {
            hub.probe(
                event,
                Level::Debug,
                Some(&format!("route.{label}.stage.{stage}_ns")),
            )
        };
        StageProbes {
            queue_wait: stage("stage.queue_wait", "queue_wait"),
            batch_dwell: stage("stage.batch_dwell", "batch_dwell"),
            preprocess: stage("stage.preprocess", "preprocess"),
            sr_forward: stage("stage.sr_forward", "sr_forward"),
            classify: stage("stage.classify", "classify"),
            cache_lookup: stage("stage.cache_lookup", "cache_lookup"),
        }
    }
}

/// Gauge handles mirroring one worker's [`TensorArena`] pool statistics into
/// the registry (`route.<label>.arena.w<i>.*`), refreshed after every batch.
///
/// [`TensorArena`]: sesr_tensor::TensorArena
#[derive(Clone)]
pub(crate) struct ArenaGauges {
    in_use_bytes: Arc<Gauge>,
    high_water_bytes: Arc<Gauge>,
    pooled_bytes: Arc<Gauge>,
    hits: Arc<Gauge>,
    misses: Arc<Gauge>,
}

impl ArenaGauges {
    /// Register the gauges for worker `worker` of the route labelled `label`.
    pub fn for_worker(hub: &Telemetry, label: &str, worker: usize) -> Self {
        let gauge = |field: &str| {
            hub.metrics()
                .gauge(&format!("route.{label}.arena.w{worker}.{field}"))
        };
        ArenaGauges {
            in_use_bytes: gauge("in_use_bytes"),
            high_water_bytes: gauge("high_water_bytes"),
            pooled_bytes: gauge("pooled_bytes"),
            hits: gauge("hits"),
            misses: gauge("misses"),
        }
    }

    /// Publish a fresh [`ArenaStats`] reading. Gauge stores are single
    /// relaxed atomic writes, so this is safe to call once per batch.
    pub fn publish(&self, stats: &ArenaStats) {
        self.in_use_bytes.set(saturate(stats.in_use_bytes as u64));
        self.high_water_bytes
            .set(saturate(stats.high_water_bytes as u64));
        self.pooled_bytes.set(saturate(stats.pooled_bytes as u64));
        self.hits.set(saturate(stats.hits));
        self.misses.set(saturate(stats.misses));
    }
}

fn saturate(value: u64) -> i64 {
    i64::try_from(value).unwrap_or(i64::MAX)
}

/// Serialize `snapshot` to `path` atomically: the JSON is written to a
/// sibling `.tmp` file and renamed into place, so a concurrent reader (e.g.
/// `sesr-top`) never observes a half-written document.
pub fn write_snapshot_atomic(path: &Path, snapshot: &TelemetrySnapshot) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, snapshot.to_json())?;
    std::fs::rename(&tmp, path)
}

/// Handle to the background thread that periodically writes a gateway's
/// [`TelemetrySnapshot`] to a JSON file (the polling surface `sesr-top`
/// reads). Returned by
/// [`GatewayClient::export_telemetry`](crate::gateway::GatewayClient::export_telemetry).
///
/// The exporter writes one snapshot immediately on spawn, then one per
/// interval, and a final one when stopped — so even `interval`s longer than
/// the process lifetime leave a valid file behind. Dropping the handle
/// without calling [`TelemetryExporter::stop`] detaches the thread; it exits
/// on its next tick after the stop channel closes.
pub struct TelemetryExporter {
    stop: mpsc::Sender<()>,
    thread: Option<JoinHandle<io::Result<()>>>,
    path: PathBuf,
}

impl TelemetryExporter {
    /// Spawn the exporter thread. `snapshot` is called once per tick; the
    /// result is written atomically to `path`.
    ///
    /// A failed periodic write no longer kills the thread: it is counted in
    /// `errors` (the `telemetry.export.errors` counter when spawned through
    /// the gateway) and the next tick tries again — a transiently full or
    /// slow disk must not silently end telemetry for the rest of the
    /// process. The last error, if any, is surfaced by
    /// [`TelemetryExporter::stop`].
    pub(crate) fn spawn(
        path: PathBuf,
        interval: Duration,
        errors: Option<Arc<Counter>>,
        snapshot: impl Fn() -> TelemetrySnapshot + Send + 'static,
    ) -> io::Result<Self> {
        // Fail fast: write the first snapshot on the caller's thread so an
        // unwritable path is an immediate error, not a silent dead thread.
        write_snapshot_atomic(&path, &snapshot())?;
        let (stop, stop_rx) = mpsc::channel::<()>();
        let thread_path = path.clone();
        let thread = std::thread::spawn(move || {
            let mut last_err: Option<io::Error> = None;
            let mut attempt = |path: &Path, snapshot: TelemetrySnapshot| {
                if let Err(err) = write_snapshot_atomic(path, &snapshot) {
                    if let Some(errors) = &errors {
                        errors.incr();
                    }
                    last_err = Some(err);
                }
            };
            loop {
                match stop_rx.recv_timeout(interval) {
                    Err(RecvTimeoutError::Timeout) => {
                        attempt(&thread_path, snapshot());
                    }
                    // Stop requested (or the handle was dropped): final flush.
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => {
                        attempt(&thread_path, snapshot());
                        return match last_err {
                            Some(err) => Err(err),
                            None => Ok(()),
                        };
                    }
                }
            }
        });
        Ok(TelemetryExporter {
            stop,
            thread: Some(thread),
            path,
        })
    }

    /// The file this exporter writes.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop the exporter and write one final snapshot. Returns the most
    /// recent write error from the exporter's whole lifetime (periodic
    /// ticks included — failures that previously vanished into the
    /// background), or `Ok(())` when every write succeeded.
    pub fn stop(mut self) -> io::Result<()> {
        let _ = self.stop.send(());
        match self.thread.take() {
            Some(thread) => thread
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("telemetry exporter panicked"))),
            None => Ok(()),
        }
    }
}

impl std::fmt::Debug for TelemetryExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryExporter")
            .field("path", &self.path)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_telemetry::Telemetry;

    #[test]
    fn stage_probes_register_per_route_histograms() {
        let hub = Telemetry::new();
        let probes = StageProbes::for_route(&hub, "sesr-m2:x2:jpeg75+wavelet2");
        probes.queue_wait.observe(7, Duration::from_micros(3));
        probes.classify.observe(7, Duration::from_micros(9));
        let snapshot = hub.snapshot();
        assert_eq!(
            snapshot
                .histogram("route.sesr-m2:x2:jpeg75+wavelet2.stage.queue_wait_ns")
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snapshot
                .histogram("route.sesr-m2:x2:jpeg75+wavelet2.stage.classify_ns")
                .unwrap()
                .count,
            1
        );
        // Re-registering the route (hot reload) reuses the same histograms.
        let again = StageProbes::for_route(&hub, "sesr-m2:x2:jpeg75+wavelet2");
        again.queue_wait.observe(8, Duration::from_micros(4));
        assert_eq!(
            hub.snapshot()
                .histogram("route.sesr-m2:x2:jpeg75+wavelet2.stage.queue_wait_ns")
                .unwrap()
                .count,
            2
        );
    }

    #[test]
    fn arena_gauges_mirror_pool_stats() {
        let hub = Telemetry::new();
        let gauges = ArenaGauges::for_worker(&hub, "r", 3);
        let stats = ArenaStats {
            hits: 5,
            misses: 2,
            recycled: 7,
            in_use_bytes: 1024,
            high_water_bytes: 4096,
            pooled_buffers: 1,
            pooled_bytes: 2048,
        };
        gauges.publish(&stats);
        let snapshot = hub.snapshot();
        assert_eq!(snapshot.gauge("route.r.arena.w3.in_use_bytes"), Some(1024));
        assert_eq!(
            snapshot.gauge("route.r.arena.w3.high_water_bytes"),
            Some(4096)
        );
        assert_eq!(snapshot.gauge("route.r.arena.w3.pooled_bytes"), Some(2048));
        assert_eq!(snapshot.gauge("route.r.arena.w3.hits"), Some(5));
        assert_eq!(snapshot.gauge("route.r.arena.w3.misses"), Some(2));
    }

    #[test]
    fn exporter_writes_valid_snapshots_and_final_flush() {
        let dir = std::env::temp_dir().join(format!(
            "sesr-telemetry-exporter-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let hub = Arc::new(Telemetry::new());
        let writer = Arc::clone(&hub);
        let exporter = TelemetryExporter::spawn(
            path.clone(),
            Duration::from_secs(3600), // ticks never fire; spawn + stop write
            None,
            move || writer.snapshot(),
        )
        .unwrap();
        // The spawn-time write is already there.
        let first = std::fs::read_to_string(&path).unwrap();
        assert!(TelemetrySnapshot::from_json(&first).is_ok());
        hub.metrics().counter("after.spawn").incr();
        exporter.stop().unwrap();
        let last = std::fs::read_to_string(&path).unwrap();
        let parsed = TelemetrySnapshot::from_json(&last).unwrap();
        assert_eq!(
            parsed.counter("after.spawn"),
            Some(1),
            "stop must flush a final snapshot"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exporter_counts_write_failures_and_surfaces_the_last_error() {
        let dir = std::env::temp_dir().join(format!(
            "sesr-telemetry-exporter-err-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let hub = Arc::new(Telemetry::new());
        let errors = hub.metrics().counter("telemetry.export.errors");
        let writer = Arc::clone(&hub);
        let exporter = TelemetryExporter::spawn(
            path.clone(),
            Duration::from_millis(5),
            Some(Arc::clone(&errors)),
            move || writer.snapshot(),
        )
        .unwrap();
        // Sabotage the rename target: a directory at the snapshot path makes
        // every subsequent atomic write fail, without touching the exporter.
        std::fs::remove_file(&path).unwrap();
        std::fs::create_dir_all(&path).unwrap();
        let mut waited = Duration::ZERO;
        while errors.get() < 2 && waited < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
            waited += Duration::from_millis(5);
        }
        assert!(
            errors.get() >= 2,
            "failed periodic writes must be counted, not kill the thread"
        );
        let err = exporter
            .stop()
            .expect_err("stop must surface the last write error");
        assert!(!err.to_string().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
