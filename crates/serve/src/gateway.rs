//! The multi-model defense gateway: routed requests, per-model worker
//! shards, zero-downtime hot reload.
//!
//! One [`DefenseGateway`] serves the whole model zoo at once. Each declared
//! [`RouteKey`] — `(SR model, scale, preprocess)` — owns a private shard
//! (bounded queue → dynamic batcher → worker pool), so a hot route saturates
//! its own queue and sheds its own load while every other route keeps its
//! full capacity. Clients submit typed [`DefenseRequest`]s through a
//! cloneable [`GatewayClient`]; requests without an explicit route go to the
//! gateway's default route.
//!
//! ```text
//!                         ┌────────────────── DefenseGateway ──────────────────┐
//!                         │                 ┌─ shard sesr-m2:x2 ─────────────┐ │
//! DefenseRequest ─────────┼─► route table ──┤ queue → batcher → workers      │ │
//! { image, RouteKey,      │   (HashMap)     └────────────────────────────────┘ │
//!   skip_cache, deadline }│                 ┌─ shard fsrcnn:x2 ──────────────┐ │
//!                         │            ├────┤ queue → batcher → workers      │ │
//!        UnknownRoute ◄───┤ miss       │    └────────────────────────────────┘ │
//!                         │            └──► ... one shard per declared route   │
//!                         │                                                    │
//!                         │   shared LRU cache keyed by (RouteKey, hash)       │
//!                         │   StatsRecorder per route + gateway-wide           │
//!                         └────────────────────────────────────────────────────┘
//! ```
//!
//! **Hot reload** ([`GatewayClient::reload`]) rebuilds one route's workers
//! with freshly hydrated weights (after
//! [`ModelRegistry::invalidate`](sesr_store::ModelRegistry::invalidate), so a
//! retrained artifact version is picked up), atomically swaps the new shard
//! into the route table, then retires the old shard by letting it drain:
//! every job already accepted is still answered, so a reload under load
//! drops nothing. [`ReloadWatcher`] automates this by polling the artifact
//! store and reloading any route whose newest artifact changed.

// lint: allow-file(atomic-ordering): route epoch + stats counters; the swap/drain protocol these back is modeled in sesr-verify (models::swap)

use crate::route::{DefenseRequest, RouteConfig, RouteKey};
use crate::server::{PendingResponse, ServeError, WorkerAssets};
use crate::shard::{spawn_shard, CacheKey, Job, ShardInner, ShardThreads, SharedCache, StatsPair};
use crate::stats::{GatewayStats, ServeStats, StatsRecorder};
use crate::telemetry::{ArenaGauges, StageProbes, TelemetryExporter};
use crate::{content_hash, LruCache};
use sesr_defense::pipeline::DefensePipeline;
use sesr_models::SrModelKind;
use sesr_store::{ModelRegistry, ModelStore};
use sesr_telemetry::{Counter, Gauge, HealthState, Level, Probe, Telemetry, TelemetrySnapshot};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-worker asset factory: called with the worker index at build and
/// reload time.
pub type WorkerFactory = Box<dyn FnMut(usize) -> sesr_tensor::Result<WorkerAssets> + Send>;

/// One declared route: its immutable configuration, the factory that
/// (re)builds its workers, and the currently active shard.
struct RouteEntry {
    config: RouteConfig,
    /// `None` for routes built from pre-built assets (the compatibility
    /// shim), which cannot be reloaded.
    factory: Mutex<Option<WorkerFactory>>,
    /// Per-route stats; survives reloads so the breakdown covers the route's
    /// whole lifetime.
    stats: Arc<StatsRecorder>,
    /// Per-route stage probes (`route.<label>.stage.*_ns`); like the stats,
    /// they survive reloads.
    stages: Arc<StageProbes>,
    /// The live shard; hot reload swaps the `Arc` under a brief write lock.
    active: RwLock<Arc<ShardInner>>,
    /// Join handles of the active shard (taken on retire/shutdown).
    threads: Mutex<Option<ShardThreads>>,
    /// The route's serving health as set by an SLO runtime
    /// ([`crate::slo::SloRuntime`]); stored as a [`HealthState`]
    /// discriminant so admission reads it with one relaxed load.
    health: AtomicU8,
    /// Mirror of `health` in the metrics namespace (`route.<label>.health`).
    health_gauge: Arc<Gauge>,
    /// Submissions shed because the route was Unhealthy
    /// (`route.<label>.shed`). Deliberately separate from `rejected`: shed
    /// load must not feed back into the error budget, or an Unhealthy route
    /// could never look clean enough to recover.
    shed: Arc<Counter>,
    /// True for store-hydrated auto routes, which are the only ones the
    /// watcher knows how to roll back to a pinned artifact version.
    auto: bool,
}

/// Journal probes and counters for gateway lifecycle events (hot reloads,
/// health-driven sheds and promotion gating).
struct LifecycleProbes {
    /// Successful route promotion; duration = whole rebuild-swap-drain cycle,
    /// mirrored into the `gateway.reload_ns` histogram.
    reload: Probe,
    /// Failed reload attempt (the old shard keeps serving).
    reload_failed: Probe,
    /// Promotion refused because the target route was not Healthy.
    reload_refused: Probe,
    /// Post-promotion rollback: health collapsed inside the probation
    /// window, so the watcher re-pinned the prior artifact.
    reload_demoted: Probe,
    /// Submission shed at admission because its route was Unhealthy.
    shed: Probe,
    reloads: Arc<Counter>,
    reload_failures: Arc<Counter>,
    reload_refusals: Arc<Counter>,
    reload_demotions: Arc<Counter>,
    sheds: Arc<Counter>,
}

struct GatewayShared {
    routes: HashMap<RouteKey, Arc<RouteEntry>>,
    /// Declaration order, for stable stats/iteration output.
    order: Vec<RouteKey>,
    default_route: RouteKey,
    cache: SharedCache,
    cache_enabled: bool,
    stats: Arc<StatsRecorder>,
    registry: Option<Arc<ModelRegistry>>,
    /// The hub every metric and journal event of this gateway lands in.
    telemetry: Arc<Telemetry>,
    /// Monotonic request-id source; ids tag journal events end to end.
    request_ids: AtomicU64,
    lifecycle: LifecycleProbes,
    /// The builder's weight seed, kept so a pinned rollback rebuilds the
    /// same network shape the original auto factory did.
    seed: u64,
}

/// The running multi-model serving engine; owns every route shard.
pub struct DefenseGateway {
    shared: Arc<GatewayShared>,
}

/// Cloneable submission/administration handle to a running
/// [`DefenseGateway`].
#[derive(Clone)]
pub struct GatewayClient {
    shared: Arc<GatewayShared>,
}

fn entry_for<'a>(
    shared: &'a GatewayShared,
    route: &RouteKey,
) -> Result<&'a Arc<RouteEntry>, ServeError> {
    shared
        .routes
        .get(route)
        .ok_or_else(|| ServeError::UnknownRoute(route.label()))
}

fn submit_to(
    shared: &GatewayShared,
    request: DefenseRequest,
) -> Result<PendingResponse, ServeError> {
    let started = Instant::now();
    let DefenseRequest {
        image,
        route,
        skip_cache,
        deadline,
    } = request;
    let (n, _, _, _) = image
        .shape()
        .as_nchw()
        .map_err(|e| ServeError::InvalidRequest(e.to_string()))?;
    if n != 1 {
        return Err(ServeError::InvalidRequest(format!(
            "submit expects a single-image [1, C, H, W] batch, got batch size {n}"
        )));
    }

    let route = route.unwrap_or(shared.default_route);
    let entry = entry_for(shared, &route)?;
    let request_id = shared.request_ids.fetch_add(1, Ordering::Relaxed);

    // Health-gated admission: an Unhealthy route sheds load *before* the
    // cache lookup and queue, so a melting-down shard is not kept warm by
    // fresh traffic. Sheds are journaled and counted separately from queue
    // rejections — they are a policy decision, not an error-budget event —
    // which is what lets the route look clean and recover once the SLO
    // engine sees load drop.
    if HealthState::from_u8(entry.health.load(Ordering::Relaxed)) == HealthState::Unhealthy {
        shared.lifecycle.sheds.incr();
        entry.shed.incr();
        shared.lifecycle.shed.observe(request_id, started.elapsed());
        return Err(ServeError::Overloaded);
    }

    let stats = StatsPair {
        global: Arc::clone(&shared.stats),
        route: Arc::clone(&entry.stats),
        stages: Arc::clone(&entry.stages),
    };

    let cache_key: Option<CacheKey> = if shared.cache_enabled && !skip_cache {
        let key = (route, content_hash(&image, ""));
        // The cache-lookup stage covers hashing's sibling cost: the lock plus
        // the LRU probe. A poisoned guard means some other holder panicked;
        // recover it rather than cascade the panic into every submitter.
        let lookup_started = Instant::now();
        let mut cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
        let cached = cache
            .get(&key)
            .map(|(defended, label)| (defended.clone(), *label));
        drop(cache);
        stats
            .stages
            .cache_lookup
            .observe(request_id, lookup_started.elapsed());
        if let Some((defended, label)) = cached {
            let response = crate::server::DefenseResponse {
                defended,
                label,
                cache_hit: true,
            };
            stats.record_completion(started.elapsed(), true);
            return Ok(PendingResponse::ready(response));
        }
        Some(key)
    } else {
        None
    };

    let (responder, receiver) = mpsc::channel();
    let job = Job {
        image,
        request_id,
        enqueued: started,
        deadline: deadline.map(|d| started + d),
        responder,
        cache_key,
        dequeued: None,
    };
    // Clone the live shard handle under a brief read lock, then send outside
    // it so a concurrent reload is never blocked behind a full queue.
    let inner = Arc::clone(&entry.active.read().unwrap_or_else(PoisonError::into_inner));
    match inner.sender.try_send(job) {
        Ok(()) => {
            // Counted only once the request is actually on its way to the
            // pipeline; a rejected submission is not a cache miss.
            if cache_key.is_some() {
                stats.record_cache_miss();
            }
            Ok(PendingResponse::waiting(receiver))
        }
        Err(TrySendError::Full(_)) => {
            stats.record_rejection();
            Err(ServeError::Overloaded)
        }
        Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
    }
}

/// Build one worker's assets for an auto-declared route: hydrated from the
/// registry when a store is attached, seeded-random otherwise.
fn build_auto_assets(
    registry: Option<&ModelRegistry>,
    key: &RouteKey,
    seed: u64,
) -> sesr_tensor::Result<WorkerAssets> {
    let upscaler = match registry {
        Some(registry) => key.model.build_from_store(key.scale, registry, seed)?,
        None => key.model.build_seeded_upscaler(key.scale, seed)?,
    };
    Ok(WorkerAssets::new(DefensePipeline::new(
        key.preprocess,
        upscaler,
    )))
}

fn reload_route(shared: &GatewayShared, route: &RouteKey) -> Result<(), ServeError> {
    // Every promotion attempt lands in the journal: successes with the full
    // rebuild-swap-drain duration (also mirrored into `gateway.reload_ns`),
    // failures at Warn so `sesr-top` surfaces a route stuck on old weights.
    let started = Instant::now();
    let result = reload_route_inner(shared, route);
    match &result {
        Ok(()) => {
            shared.lifecycle.reloads.incr();
            shared.lifecycle.reload.observe(0, started.elapsed());
        }
        Err(_) => {
            shared.lifecycle.reload_failures.incr();
            shared.lifecycle.reload_failed.observe(0, started.elapsed());
        }
    }
    result
}

fn reload_route_inner(shared: &GatewayShared, route: &RouteKey) -> Result<(), ServeError> {
    let entry = Arc::clone(entry_for(shared, route)?);
    // One reload at a time per route: the factory lock is held across the
    // rebuild, but submissions keep flowing to the old shard meanwhile.
    let mut factory_guard = entry.factory.lock().unwrap_or_else(PoisonError::into_inner);
    let factory = factory_guard.as_mut().ok_or_else(|| {
        ServeError::InvalidRequest(format!(
            "route {route} was built from pre-built worker assets and cannot be reloaded"
        ))
    })?;

    // Forget the memoized checkpoint so the factory re-resolves the newest
    // artifact version from disk.
    if let Some(registry) = &shared.registry {
        registry.invalidate(route.model.name(), route.scale);
    }
    let mut assets = Vec::with_capacity(entry.config.num_workers);
    for worker in 0..entry.config.num_workers {
        assets.push(factory(worker).map_err(|e| ServeError::Pipeline(e.to_string()))?);
    }
    swap_in_assets(shared, &entry, route, assets);
    Ok(())
}

/// The common tail of every reload: spawn a fresh shard from `assets`, swap
/// it live, drain and retire the old shard, purge the route's stale cache
/// entries. Infallible — by this point the new workers are already built.
fn swap_in_assets(
    shared: &GatewayShared,
    entry: &RouteEntry,
    route: &RouteKey,
    assets: Vec<WorkerAssets>,
) {
    let stats = StatsPair {
        global: Arc::clone(&shared.stats),
        route: Arc::clone(&entry.stats),
        stages: Arc::clone(&entry.stages),
    };
    let arenas = arena_gauges(&shared.telemetry, route, entry.config.num_workers);
    let (inner, threads) = spawn_shard(&entry.config, assets, &shared.cache, &stats, arenas);

    // Swap the live shard; new submissions land on the fresh workers from
    // here on.
    let old_inner = {
        let mut active = entry.active.write().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *active, inner)
    };
    let old_threads = entry
        .threads
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .replace(threads);

    // Retire the old shard: dropping our handle releases its submission
    // sender (in-flight submit calls hold transient clones, which drop as
    // soon as their try_send returns), so the batcher drains the queue and
    // exits, the workers finish every accepted job, and the join below
    // returns only once all in-flight responses are delivered.
    drop(old_inner);
    if let Some(old_threads) = old_threads {
        old_threads.join();
    }

    // The old weights' outputs are stale now that the drain is complete;
    // purge this route's cache entries without touching other routes.
    if shared.cache_enabled {
        shared
            .cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(cached_route, _)| cached_route != route);
    }
}

/// Rebuild an auto route's workers from one *specific* stored artifact
/// version instead of the newest — the watcher's rollback path when a
/// just-promoted artifact tanks the route's health. Follows the same
/// swap-drain-purge discipline as a forward reload.
fn reload_route_pinned(
    shared: &GatewayShared,
    route: &RouteKey,
    pinned: (u32, u64),
) -> Result<(), ServeError> {
    let entry = Arc::clone(entry_for(shared, route)?);
    if !entry.auto {
        return Err(ServeError::InvalidRequest(format!(
            "route {route} is not store-hydrated and cannot be pinned to an artifact version"
        )));
    }
    let registry = shared.registry.as_ref().ok_or_else(|| {
        ServeError::InvalidRequest(
            "pinned reload requires a gateway built with a store".to_string(),
        )
    })?;
    // Same per-route serialization as a forward reload.
    let _factory_guard = entry.factory.lock().unwrap_or_else(PoisonError::into_inner);

    let (version, digest) = pinned;
    let artifact = registry
        .store()
        .list_versions(route.model.name(), route.scale)
        .map_err(|e| ServeError::Pipeline(e.to_string()))?
        .into_iter()
        .find(|artifact| artifact.version == version && artifact.digest == digest)
        .ok_or_else(|| {
            ServeError::Pipeline(format!(
                "route {route} has no stored artifact v{version:04} to roll back to"
            ))
        })?;
    let checkpoint = registry
        .store()
        .load(&artifact)
        .map_err(|e| ServeError::Pipeline(e.to_string()))?;
    let mut assets = Vec::with_capacity(entry.config.num_workers);
    for _worker in 0..entry.config.num_workers {
        let upscaler = route
            .model
            .build_from_checkpoint(route.scale, &checkpoint, shared.seed)
            .map_err(|e| ServeError::Pipeline(e.to_string()))?;
        assets.push(WorkerAssets::new(DefensePipeline::new(
            route.preprocess,
            upscaler,
        )));
    }
    // The registry's memo still points at the newest artifact; forget it so
    // a later explicit hydrate re-reads disk rather than reviving it.
    registry.invalidate(route.model.name(), route.scale);
    swap_in_assets(shared, &entry, route, assets);
    Ok(())
}

/// Register the per-worker arena gauges for `route` (idempotent across
/// reloads: the same names resolve to the same gauges).
fn arena_gauges(telemetry: &Telemetry, route: &RouteKey, num_workers: usize) -> Vec<ArenaGauges> {
    let label = route.label();
    (0..num_workers)
        .map(|worker| ArenaGauges::for_worker(telemetry, &label, worker))
        .collect()
}

/// Refresh the gateway-level cache gauges, then snapshot the whole hub. The
/// LRU counters live behind the cache mutex, so they are mirrored into
/// gauges here — at snapshot time, off the hot path — rather than on every
/// lookup.
fn telemetry_snapshot(shared: &GatewayShared) -> TelemetrySnapshot {
    if shared.cache_enabled {
        let (hits, misses, evictions, entries) = {
            let cache = shared.cache.lock().unwrap_or_else(PoisonError::into_inner);
            let (hits, misses) = cache.hit_counts();
            (hits, misses, cache.eviction_count(), cache.len() as u64)
        };
        let metrics = shared.telemetry.metrics();
        let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
        metrics.gauge("gateway.cache.hits").set(clamp(hits));
        metrics.gauge("gateway.cache.misses").set(clamp(misses));
        metrics
            .gauge("gateway.cache.evictions")
            .set(clamp(evictions));
        metrics.gauge("gateway.cache.entries").set(clamp(entries));
    }
    shared.telemetry.snapshot()
}

fn snapshot(shared: &GatewayShared) -> GatewayStats {
    GatewayStats {
        global: shared.stats.snapshot(),
        per_route: shared
            .order
            .iter()
            .map(|key| (*key, shared.routes[key].stats.snapshot()))
            .collect(),
    }
}

impl GatewayClient {
    /// Submit one routed request without blocking.
    ///
    /// On an LRU hit the returned [`PendingResponse`] is already resolved;
    /// on a miss the request is enqueued on its route's shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRoute`] when the request names a route the
    /// gateway does not serve, [`ServeError::Overloaded`] when that route's
    /// queue is full, [`ServeError::InvalidRequest`] for non-`[1, C, H, W]`
    /// inputs, [`ServeError::Closed`] when the gateway is gone.
    pub fn submit(&self, request: DefenseRequest) -> Result<PendingResponse, ServeError> {
        submit_to(&self.shared, request)
    }

    /// Submit and wait: the convenience path for synchronous callers.
    ///
    /// # Errors
    ///
    /// Propagates every [`ServeError`] that [`GatewayClient::submit`] or
    /// [`PendingResponse::wait`] can produce.
    pub fn defend_blocking(
        &self,
        request: DefenseRequest,
    ) -> Result<crate::server::DefenseResponse, ServeError> {
        self.submit(request)?.wait()
    }

    /// Every route the gateway serves, in declaration order.
    pub fn routes(&self) -> Vec<RouteKey> {
        self.shared.order.clone()
    }

    /// The route requests go to when they name none.
    pub fn default_route(&self) -> RouteKey {
        self.shared.default_route
    }

    /// Global + per-route statistics snapshot.
    pub fn stats(&self) -> GatewayStats {
        snapshot(&self.shared)
    }

    /// One route's statistics snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRoute`] when the gateway does not serve `route`.
    pub fn route_stats(&self, route: &RouteKey) -> Result<ServeStats, ServeError> {
        Ok(entry_for(&self.shared, route)?.stats.snapshot())
    }

    /// Hot-reload one route with zero downtime and zero dropped jobs.
    ///
    /// Rebuilds the route's workers through its factory — for store-backed
    /// routes the registry entry is invalidated first, so a newly saved
    /// artifact version is hydrated — swaps the fresh shard in for new
    /// submissions, then drains and retires the old shard: every job it had
    /// already accepted still gets its response. The route's now-stale cache
    /// entries are purged; other routes are untouched throughout.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRoute`] for an unserved route,
    /// [`ServeError::Pipeline`] when rebuilding the workers fails (e.g. a
    /// corrupt artifact — the old shard keeps serving in that case), and
    /// [`ServeError::InvalidRequest`] for routes built from pre-built assets.
    pub fn reload(&self, route: &RouteKey) -> Result<(), ServeError> {
        reload_route(&self.shared, route)
    }

    /// Spawn a [`ReloadWatcher`] polling the attached store every `interval`
    /// and reloading any route whose newest artifact changed.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when the gateway was built without a
    /// store.
    pub fn watch_store(&self, interval: Duration) -> Result<ReloadWatcher, ServeError> {
        ReloadWatcher::spawn(self.clone(), interval, ReloadWatcher::DEFAULT_PROBATION)
    }

    /// Like [`GatewayClient::watch_store`], with an explicit post-promotion
    /// probation window: if a route's health collapses to Unhealthy within
    /// `probation` after a promotion, the watcher rolls the route back to
    /// the previously served artifact version.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when the gateway was built without a
    /// store.
    pub fn watch_store_with_probation(
        &self,
        interval: Duration,
        probation: Duration,
    ) -> Result<ReloadWatcher, ServeError> {
        ReloadWatcher::spawn(self.clone(), interval, probation)
    }

    /// The gateway's telemetry hub (counters, gauges, per-route stage
    /// histograms and the event journal).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Snapshot every metric and the journal, including the freshly mirrored
    /// cache gauges (`gateway.cache.*`). The JSON form of this snapshot is
    /// what `sesr-top` renders.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        telemetry_snapshot(&self.shared)
    }

    /// Spawn a background thread writing [`GatewayClient::telemetry_snapshot`]
    /// as JSON to `path` atomically — once immediately, then every
    /// `interval`, and once more on [`TelemetryExporter::stop`]. This is the
    /// polling surface `sesr-top` watches for a live view of the gateway.
    ///
    /// The exporter holds a gateway handle; like a [`ReloadWatcher`], stop it
    /// before [`DefenseGateway::shutdown`] or the shutdown join will wait.
    ///
    /// # Errors
    ///
    /// Any I/O error writing the first snapshot (e.g. an unwritable path).
    pub fn export_telemetry(
        &self,
        path: impl Into<PathBuf>,
        interval: Duration,
    ) -> std::io::Result<TelemetryExporter> {
        let shared = Arc::clone(&self.shared);
        let errors = shared
            .telemetry
            .metrics()
            .counter("telemetry.export.errors");
        TelemetryExporter::spawn(path.into(), interval, Some(errors), move || {
            telemetry_snapshot(&shared)
        })
    }

    /// One route's current serving health, as last set by an SLO runtime
    /// ([`crate::slo::SloRuntime`]). Routes start [`HealthState::Healthy`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownRoute`] when the gateway does not serve `route`.
    pub fn route_health(&self, route: &RouteKey) -> Result<HealthState, ServeError> {
        let entry = entry_for(&self.shared, route)?;
        Ok(HealthState::from_u8(entry.health.load(Ordering::Relaxed)))
    }

    /// Set one route's health (SLO runtime only): updates the admission
    /// atomic and mirrors the state into the `route.<label>.health` gauge.
    pub(crate) fn set_route_health(
        &self,
        route: &RouteKey,
        state: HealthState,
    ) -> Result<(), ServeError> {
        let entry = entry_for(&self.shared, route)?;
        entry.health.store(state.as_u8(), Ordering::Relaxed);
        entry.health_gauge.set(i64::from(state.as_u8()));
        Ok(())
    }

    /// The position of `route` in declaration order — the stable integer
    /// journal events use as their `request` field to identify a route
    /// (journal event names must be `'static`, so labels cannot be used).
    pub(crate) fn route_index(&self, route: &RouteKey) -> Option<u64> {
        self.shared
            .order
            .iter()
            .position(|key| key == route)
            .map(|index| index as u64)
    }
}

impl DefenseGateway {
    /// Start declaring routes. Alias for [`GatewayBuilder::new`].
    pub fn builder() -> GatewayBuilder {
        GatewayBuilder::new()
    }

    /// A cloneable submission/administration handle.
    pub fn client(&self) -> GatewayClient {
        GatewayClient {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Every route the gateway serves, in declaration order.
    pub fn routes(&self) -> Vec<RouteKey> {
        self.shared.order.clone()
    }

    /// Global + per-route statistics snapshot.
    pub fn stats(&self) -> GatewayStats {
        snapshot(&self.shared)
    }

    /// Hot-reload one route; see [`GatewayClient::reload`].
    ///
    /// # Errors
    ///
    /// Everything [`GatewayClient::reload`] can return.
    pub fn reload(&self, route: &RouteKey) -> Result<(), ServeError> {
        reload_route(&self.shared, route)
    }

    /// The gateway's telemetry hub.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.shared.telemetry
    }

    /// Snapshot every metric and the journal; see
    /// [`GatewayClient::telemetry_snapshot`].
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        telemetry_snapshot(&self.shared)
    }

    /// Stop every shard and join all threads.
    ///
    /// Like [`DefenseServer::shutdown`](crate::server::DefenseServer::shutdown),
    /// drop every outstanding [`GatewayClient`] clone (and stop any
    /// [`ReloadWatcher`]) first, otherwise the submission channels stay open
    /// and the join blocks.
    pub fn shutdown(self) {
        let DefenseGateway { shared } = self;
        let threads: Vec<ShardThreads> = shared
            .order
            .iter()
            .filter_map(|key| {
                shared.routes[key]
                    .threads
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
            })
            .collect();
        // Dropping the last strong reference releases every shard's
        // submission sender; the batchers then drain and exit.
        drop(shared);
        for shard in threads {
            shard.join();
        }
    }
}

/// How one route's workers come to be.
enum RouteSource {
    /// Built by the gateway: store-hydrated when a store is attached,
    /// seeded-random otherwise. Reloadable.
    Auto,
    /// Built by a caller-supplied factory. Reloadable.
    Factory(WorkerFactory),
    /// Pre-built assets handed over as-is (the compatibility shim's path).
    /// Not reloadable.
    Prebuilt(Vec<WorkerAssets>),
}

struct RouteDecl {
    key: RouteKey,
    config: RouteConfig,
    source: RouteSource,
}

/// Declarative constructor for a [`DefenseGateway`]: routes (explicit, or
/// everything servable in a [`ModelStore`]), per-route worker counts and
/// queue depths, the default route, cache capacity and the weight seed.
pub struct GatewayBuilder {
    routes: Vec<RouteDecl>,
    default_route: Option<RouteKey>,
    default_config: RouteConfig,
    cache_capacity: usize,
    seed: u64,
    store: Option<ModelStore>,
    telemetry: Option<Arc<Telemetry>>,
}

impl Default for GatewayBuilder {
    fn default() -> Self {
        GatewayBuilder::new()
    }
}

impl GatewayBuilder {
    /// An empty builder: no routes, paper-default route config, a 256-entry
    /// cache, seed 0, no store.
    pub fn new() -> Self {
        GatewayBuilder {
            routes: Vec::new(),
            default_route: None,
            default_config: RouteConfig::default(),
            cache_capacity: 256,
            seed: 0,
            store: None,
            telemetry: None,
        }
    }

    /// Share an existing telemetry hub instead of creating a private one —
    /// e.g. so the gateway, its model store and an evaluation plan all land
    /// in one [`TelemetrySnapshot`].
    pub fn telemetry(mut self, hub: Arc<Telemetry>) -> Self {
        self.telemetry = Some(hub);
        self
    }

    /// Shared LRU capacity in defended images across all routes; 0 disables
    /// caching.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Seed for deterministic worker construction (and the fallback weights
    /// of store-less learned routes).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The [`RouteConfig`] used by routes declared without an explicit one.
    pub fn default_route_config(mut self, config: RouteConfig) -> Self {
        self.default_config = config;
        self
    }

    /// Attach a trained-weight store: auto routes hydrate from it (one
    /// validated read per `(model, scale)`, memoized by a shared
    /// [`ModelRegistry`]), [`GatewayBuilder::routes_from_store`] enumerates
    /// it, and hot reload re-resolves artifacts in it.
    pub fn with_store(mut self, store: ModelStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Open and attach the store rooted at `path`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Pipeline`] when the store root cannot be created.
    pub fn open_store(self, path: impl AsRef<Path>) -> Result<Self, ServeError> {
        let store = ModelStore::open(path.as_ref().to_path_buf())
            .map_err(|e| ServeError::Pipeline(e.to_string()))?;
        Ok(self.with_store(store))
    }

    /// Declare a route with the default [`RouteConfig`].
    pub fn route(self, key: RouteKey) -> Self {
        let config = self.default_config.clone();
        self.route_with(key, config)
    }

    /// Declare a route with an explicit per-route configuration.
    pub fn route_with(mut self, key: RouteKey, config: RouteConfig) -> Self {
        self.routes.push(RouteDecl {
            key,
            config,
            source: RouteSource::Auto,
        });
        self
    }

    /// Declare a route whose workers come from `factory(worker_index)` —
    /// the escape hatch for custom pipelines (wrapped upscalers, classifier
    /// stages). The factory is retained, so the route stays reloadable.
    pub fn route_with_factory(
        mut self,
        key: RouteKey,
        config: RouteConfig,
        factory: impl FnMut(usize) -> sesr_tensor::Result<WorkerAssets> + Send + 'static,
    ) -> Self {
        self.routes.push(RouteDecl {
            key,
            config,
            source: RouteSource::Factory(Box::new(factory)),
        });
        self
    }

    /// Declare a route from pre-built worker assets (one per worker). Used
    /// by the [`DefenseServer`](crate::server::DefenseServer) shim, whose
    /// legacy factory closures are neither `Send` nor `'static`; such a
    /// route cannot be hot-reloaded.
    pub fn route_with_assets(
        mut self,
        key: RouteKey,
        config: RouteConfig,
        assets: Vec<WorkerAssets>,
    ) -> Self {
        self.routes.push(RouteDecl {
            key,
            config,
            source: RouteSource::Prebuilt(assets),
        });
        self
    }

    /// Declare one route (default config, paper preprocessing, ×2) for every
    /// servable SR model in the attached store: every stored model id that
    /// parses as an [`SrModelKind`] and has at least one ×2 artifact.
    /// Classifier artifacts and already-declared routes are skipped.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when no store is attached,
    /// [`ServeError::Pipeline`] on store-scan failure.
    pub fn routes_from_store(mut self) -> Result<Self, ServeError> {
        let store = self.store.as_ref().ok_or_else(|| {
            ServeError::InvalidRequest(
                "routes_from_store requires a store (GatewayBuilder::with_store)".to_string(),
            )
        })?;
        let mut discovered = Vec::new();
        for model_id in store
            .list_model_ids()
            .map_err(|e| ServeError::Pipeline(e.to_string()))?
        {
            let Some(model) = SrModelKind::parse(&model_id) else {
                continue; // not an SR artifact (e.g. a stored classifier)
            };
            let versions = store
                .list_versions(&model_id, 2)
                .map_err(|e| ServeError::Pipeline(e.to_string()))?;
            if !versions.is_empty() {
                discovered.push(RouteKey::paper(model, 2));
            }
        }
        for key in discovered {
            if !self.routes.iter().any(|decl| decl.key == key) {
                self = self.route(key);
            }
        }
        Ok(self)
    }

    /// The route used by requests that name none. Defaults to the first
    /// declared route.
    pub fn default_route(mut self, key: RouteKey) -> Self {
        self.default_route = Some(key);
        self
    }

    /// Build every shard and start the gateway.
    ///
    /// Worker factories run on the calling thread, so a failure (corrupt
    /// artifact, unsupported scale) aborts startup with a typed error before
    /// any traffic is accepted.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] for an empty/duplicate route set, an
    /// unknown default route or an invalid [`RouteConfig`];
    /// [`ServeError::Pipeline`] when building a route's workers fails.
    pub fn build(self) -> Result<DefenseGateway, ServeError> {
        let GatewayBuilder {
            routes,
            default_route,
            default_config: _,
            cache_capacity,
            seed,
            store,
            telemetry,
        } = self;
        if routes.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a gateway needs at least one route".to_string(),
            ));
        }
        let order: Vec<RouteKey> = routes.iter().map(|decl| decl.key).collect();
        for (i, key) in order.iter().enumerate() {
            if order[..i].contains(key) {
                return Err(ServeError::InvalidRequest(format!(
                    "route {key} is declared twice"
                )));
            }
        }
        let default_route = default_route.unwrap_or(order[0]);
        if !order.contains(&default_route) {
            return Err(ServeError::UnknownRoute(default_route.label()));
        }

        let telemetry = telemetry.unwrap_or_else(|| Arc::new(Telemetry::new()));
        let registry = store.map(|store| {
            // The store shares the gateway's hub, so hydrate/publish timings
            // land in the same snapshot as the serving metrics.
            Arc::new(ModelRegistry::new(
                store.with_telemetry(Arc::clone(&telemetry)),
            ))
        });
        let cache: SharedCache = Arc::new(Mutex::new(LruCache::new(cache_capacity)));
        let global_stats = Arc::new(StatsRecorder::registered(telemetry.metrics(), "gateway"));
        let lifecycle = LifecycleProbes {
            reload: telemetry.probe("gateway.reload", Level::Info, Some("gateway.reload_ns")),
            reload_failed: telemetry.probe("gateway.reload_failed", Level::Warn, None),
            reload_refused: telemetry.probe("gateway.reload_refused", Level::Warn, None),
            reload_demoted: telemetry.probe("gateway.reload_demoted", Level::Warn, None),
            shed: telemetry.probe("gateway.shed", Level::Warn, None),
            reloads: telemetry.metrics().counter("gateway.reloads"),
            reload_failures: telemetry.metrics().counter("gateway.reload_failures"),
            reload_refusals: telemetry.metrics().counter("gateway.reload_refused"),
            reload_demotions: telemetry.metrics().counter("gateway.reload_demoted"),
            sheds: telemetry.metrics().counter("gateway.shed"),
        };

        let mut table = HashMap::with_capacity(routes.len());
        for decl in routes {
            decl.config.validate()?;
            let RouteDecl {
                key,
                config,
                source,
            } = decl;
            let auto = matches!(source, RouteSource::Auto);
            let (assets, factory): (Vec<WorkerAssets>, Option<WorkerFactory>) = match source {
                RouteSource::Auto => {
                    let registry = registry.clone();
                    let mut factory: WorkerFactory =
                        Box::new(move |_worker| build_auto_assets(registry.as_deref(), &key, seed));
                    let assets = build_with(&mut factory, config.num_workers)?;
                    (assets, Some(factory))
                }
                RouteSource::Factory(mut factory) => {
                    let assets = build_with(&mut factory, config.num_workers)?;
                    (assets, Some(factory))
                }
                RouteSource::Prebuilt(assets) => {
                    if assets.len() != config.num_workers {
                        return Err(ServeError::InvalidRequest(format!(
                            "route {key} declares {} workers but {} pre-built assets",
                            config.num_workers,
                            assets.len()
                        )));
                    }
                    (assets, None)
                }
            };
            let label = key.label();
            let route_stats = Arc::new(StatsRecorder::registered(
                telemetry.metrics(),
                &format!("route.{label}"),
            ));
            let route_stages = Arc::new(StageProbes::for_route(&telemetry, &label));
            let stats = StatsPair {
                global: Arc::clone(&global_stats),
                route: Arc::clone(&route_stats),
                stages: Arc::clone(&route_stages),
            };
            let arenas = arena_gauges(&telemetry, &key, config.num_workers);
            let (inner, threads) = spawn_shard(&config, assets, &cache, &stats, arenas);
            let health_gauge = telemetry.metrics().gauge(&format!("route.{label}.health"));
            health_gauge.set(i64::from(HealthState::Healthy.as_u8()));
            table.insert(
                key,
                Arc::new(RouteEntry {
                    config,
                    factory: Mutex::new(factory),
                    stats: route_stats,
                    stages: route_stages,
                    active: RwLock::new(inner),
                    threads: Mutex::new(Some(threads)),
                    health: AtomicU8::new(HealthState::Healthy.as_u8()),
                    health_gauge,
                    shed: telemetry.metrics().counter(&format!("route.{label}.shed")),
                    auto,
                }),
            );
        }

        Ok(DefenseGateway {
            shared: Arc::new(GatewayShared {
                routes: table,
                order,
                default_route,
                cache,
                cache_enabled: cache_capacity > 0,
                stats: global_stats,
                registry,
                telemetry,
                request_ids: AtomicU64::new(1),
                lifecycle,
                seed,
            }),
        })
    }
}

fn build_with(
    factory: &mut WorkerFactory,
    num_workers: usize,
) -> Result<Vec<WorkerAssets>, ServeError> {
    let mut assets = Vec::with_capacity(num_workers);
    for worker in 0..num_workers {
        assets.push(factory(worker).map_err(|e| ServeError::Pipeline(e.to_string()))?);
    }
    Ok(assets)
}

/// Background thread that polls the gateway's store and hot-reloads any
/// route whose newest artifact `(version, digest)` changed — the
/// "save a retrained model, serving picks it up" loop with no restarts.
///
/// Promotion is **health-gated**: a new artifact is only promoted while its
/// route is [`HealthState::Healthy`]; otherwise the attempt is refused
/// (counted, journaled as `gateway.reload_refused`) and retried on every
/// poll until the route recovers. After a promotion the route is on
/// probation: if its health collapses to Unhealthy inside the probation
/// window, the watcher rolls back to the previously served artifact version
/// (`gateway.reload_demoted`) — the stepping stone to a full canary gate.
///
/// The watcher holds a [`GatewayClient`]; call [`ReloadWatcher::stop`]
/// before [`DefenseGateway::shutdown`] or the shutdown join will wait on it.
pub struct ReloadWatcher {
    stop_tx: mpsc::Sender<()>,
    thread: JoinHandle<()>,
    reloads: Arc<AtomicU64>,
    failures: Arc<AtomicU64>,
    refusals: Arc<AtomicU64>,
    demotions: Arc<AtomicU64>,
}

/// Per-route watcher state: the artifact being served, plus probation
/// bookkeeping for the most recent promotion.
struct RouteWatch {
    /// The `(version, digest)` the route currently serves (as far as the
    /// watcher knows); `None` when nothing is stored yet.
    known: Option<(u32, u64)>,
    /// Set while the route is on post-promotion probation.
    promoted: Option<Promotion>,
}

struct Promotion {
    at: Instant,
    /// What was serving before the promotion — the rollback target.
    prior: Option<(u32, u64)>,
}

impl ReloadWatcher {
    /// Default post-promotion probation window.
    pub const DEFAULT_PROBATION: Duration = Duration::from_secs(30);

    fn spawn(
        client: GatewayClient,
        interval: Duration,
        probation: Duration,
    ) -> Result<ReloadWatcher, ServeError> {
        let registry = client.shared.registry.clone().ok_or_else(|| {
            ServeError::InvalidRequest(
                "watch_store requires a gateway built with a store".to_string(),
            )
        })?;
        // Only reloadable routes are worth polling: a pre-built-assets route
        // has no factory, so reloading it can never succeed.
        let routes: Vec<RouteKey> = client
            .routes()
            .into_iter()
            .filter(|key| {
                client.shared.routes[key]
                    .factory
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some()
            })
            .collect();
        // Baseline before the first poll: the shards were just built from
        // whatever is newest now, so only *changes* from here on reload.
        let mut watches: HashMap<RouteKey, RouteWatch> = routes
            .iter()
            .map(|key| {
                (
                    *key,
                    RouteWatch {
                        known: current_artifact(&registry, key),
                        promoted: None,
                    },
                )
            })
            .collect();
        let reloads = Arc::new(AtomicU64::new(0));
        let failures = Arc::new(AtomicU64::new(0));
        let refusals = Arc::new(AtomicU64::new(0));
        let demotions = Arc::new(AtomicU64::new(0));
        let reload_counter = Arc::clone(&reloads);
        let failure_counter = Arc::clone(&failures);
        let refusal_counter = Arc::clone(&refusals);
        let demotion_counter = Arc::clone(&demotions);
        let (stop_tx, stop_rx) = mpsc::channel::<()>();
        let thread = std::thread::spawn(move || loop {
            match stop_rx.recv_timeout(interval) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {}
            }
            for key in &routes {
                let health = client.route_health(key).unwrap_or(HealthState::Unhealthy);
                let route_index = client.route_index(key).unwrap_or(u64::MAX);
                let Some(watch) = watches.get_mut(key) else {
                    continue; // watcher routes are fixed at startup
                };

                // Probation first: a just-promoted artifact that tanked the
                // route gets rolled back before any further promotion.
                if let Some(promotion) = watch.promoted.take() {
                    if promotion.at.elapsed() >= probation {
                        // Survived probation: stays cleared.
                    } else if health == HealthState::Unhealthy {
                        if let Some(prior) = promotion.prior {
                            let shared = &client.shared;
                            match reload_route_pinned(shared, key, prior) {
                                Ok(()) => {
                                    demotion_counter.fetch_add(1, Ordering::Relaxed);
                                    shared.lifecycle.reload_demotions.incr();
                                    shared
                                        .lifecycle
                                        .reload_demoted
                                        .observe(route_index, promotion.at.elapsed());
                                    // `known` stays at the newest (bad)
                                    // version so it is not re-promoted; a
                                    // future artifact will still differ and
                                    // go through the gate normally.
                                    continue;
                                }
                                Err(_) => {
                                    failure_counter.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    } else {
                        // Healthy and still on probation: keep watching.
                        watch.promoted = Some(promotion);
                    }
                }

                let newest = current_artifact(&registry, key);
                if newest.is_some() && newest != watch.known {
                    // The promotion gate: never swap weights under a route
                    // that is already missing its SLOs — a reload there
                    // destroys the evidence and risks stacking regressions.
                    if health != HealthState::Healthy {
                        refusal_counter.fetch_add(1, Ordering::Relaxed);
                        let shared = &client.shared;
                        shared.lifecycle.reload_refusals.incr();
                        shared
                            .lifecycle
                            .reload_refused
                            .observe(route_index, Duration::ZERO);
                        // `known` is deliberately not updated: the promotion
                        // is retried on every poll until the route is
                        // Healthy again.
                        continue;
                    }
                    // Mark the version seen only once it is actually being
                    // served; a failed reload (e.g. a corrupt artifact or
                    // transient I/O) is counted and retried on every poll
                    // until it succeeds.
                    match client.reload(key) {
                        Ok(()) => {
                            reload_counter.fetch_add(1, Ordering::Relaxed);
                            watch.promoted = Some(Promotion {
                                at: Instant::now(),
                                prior: watch.known,
                            });
                            watch.known = newest;
                        }
                        Err(_) => {
                            failure_counter.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
        });
        Ok(ReloadWatcher {
            stop_tx,
            thread,
            reloads,
            failures,
            refusals,
            demotions,
        })
    }

    /// Number of successful reloads the watcher has triggered.
    pub fn reload_count(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Number of reload attempts that failed (each is retried on the next
    /// poll). A steadily climbing count means a route's newest artifact
    /// cannot be served — e.g. it is corrupt — while the old weights keep
    /// serving.
    pub fn failure_count(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Number of promotions refused because the target route was not
    /// Healthy (each is retried once the route recovers).
    pub fn refused_count(&self) -> u64 {
        self.refusals.load(Ordering::Relaxed)
    }

    /// Number of post-promotion rollbacks: health collapsed inside the
    /// probation window and the prior artifact was re-pinned.
    pub fn demotion_count(&self) -> u64 {
        self.demotions.load(Ordering::Relaxed)
    }

    /// Stop polling and join the watcher thread (releases its client).
    pub fn stop(self) {
        let ReloadWatcher {
            stop_tx, thread, ..
        } = self;
        let _ = stop_tx.send(());
        let _ = thread.join();
    }
}

fn current_artifact(registry: &ModelRegistry, key: &RouteKey) -> Option<(u32, u64)> {
    registry
        .store()
        .resolve(key.model.name(), key.scale)
        .ok()
        .map(|artifact| (artifact.version, artifact.digest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_defense::pipeline::PreprocessConfig;
    use sesr_models::Upscaler;
    use sesr_store::Checkpoint;
    use sesr_tensor::{init, Shape, Tensor};
    use std::sync::atomic::AtomicU64;

    static TEST_DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "sesr_gateway_{tag}_{}_{}",
            std::process::id(),
            TEST_DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn test_image(seed: u64, size: usize) -> Tensor {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        init::uniform(Shape::new(&[1, 3, size, size]), 0.0, 1.0, &mut rng)
    }

    fn nearest_route() -> RouteKey {
        RouteKey::new(SrModelKind::NearestNeighbor, 2, PreprocessConfig::none())
    }

    fn bicubic_route() -> RouteKey {
        RouteKey::new(SrModelKind::Bicubic, 2, PreprocessConfig::none())
    }

    #[test]
    fn builder_rejects_empty_duplicate_and_unknown_default() {
        assert!(matches!(
            GatewayBuilder::new().build(),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            GatewayBuilder::new()
                .route(nearest_route())
                .route(nearest_route())
                .build(),
            Err(ServeError::InvalidRequest(_))
        ));
        assert!(matches!(
            GatewayBuilder::new()
                .route(nearest_route())
                .default_route(bicubic_route())
                .build(),
            Err(ServeError::UnknownRoute(_))
        ));
    }

    #[test]
    fn requests_route_explicitly_or_by_default() {
        let gateway = GatewayBuilder::new()
            .route(nearest_route())
            .route(bicubic_route())
            .build()
            .unwrap();
        let client = gateway.client();
        assert_eq!(client.default_route(), nearest_route());
        assert_eq!(client.routes(), vec![nearest_route(), bicubic_route()]);

        let image = test_image(1, 8);
        let defaulted = client
            .defend_blocking(DefenseRequest::new(image.clone()))
            .unwrap();
        let nearest = client
            .defend_blocking(DefenseRequest::new(image.clone()).on(nearest_route()))
            .unwrap();
        let bicubic = client
            .defend_blocking(DefenseRequest::new(image).on(bicubic_route()))
            .unwrap();
        assert_eq!(
            defaulted.defended, nearest.defended,
            "no route means the default route"
        );
        assert_ne!(nearest.defended, bicubic.defended);

        let stats = gateway.stats();
        assert_eq!(stats.global.completed, 3);
        assert_eq!(stats.route(&bicubic_route()).unwrap().completed, 1);
        drop(client);
        gateway.shutdown();
    }

    #[test]
    fn unknown_routes_fail_fast_with_their_label() {
        let gateway = GatewayBuilder::new()
            .route(nearest_route())
            .build()
            .unwrap();
        let client = gateway.client();
        let missing = RouteKey::paper(SrModelKind::SesrXl, 2);
        match client.submit(DefenseRequest::new(test_image(0, 8)).on(missing)) {
            Err(ServeError::UnknownRoute(label)) => assert_eq!(label, missing.label()),
            Err(other) => panic!("expected UnknownRoute, got {other}"),
            Ok(_) => panic!("expected UnknownRoute, got a pending response"),
        }
        assert!(matches!(
            client.route_stats(&missing),
            Err(ServeError::UnknownRoute(_))
        ));
        assert!(matches!(
            client.reload(&missing),
            Err(ServeError::UnknownRoute(_))
        ));
        drop(client);
        gateway.shutdown();
    }

    #[test]
    fn skip_cache_bypasses_lookup_and_insert() {
        let gateway = GatewayBuilder::new()
            .route(nearest_route())
            .build()
            .unwrap();
        let client = gateway.client();
        let image = test_image(3, 8);
        for _ in 0..2 {
            let response = client
                .defend_blocking(DefenseRequest::new(image.clone()).skip_cache())
                .unwrap();
            assert!(!response.cache_hit, "skip_cache must never hit");
        }
        let stats = client.stats().global;
        assert_eq!(stats.computed_images, 2, "skip_cache must recompute");
        assert_eq!(stats.cache_hits + stats.cache_misses, 0, "no lookups");
        // And the bypassing requests inserted nothing: a normal request
        // still misses.
        assert!(
            !client
                .defend_blocking(DefenseRequest::new(image))
                .unwrap()
                .cache_hit
        );
        drop(client);
        gateway.shutdown();
    }

    #[test]
    fn telemetry_traces_stages_and_exports_snapshots() {
        let gateway = GatewayBuilder::new()
            .route(nearest_route())
            .build()
            .unwrap();
        let client = gateway.client();
        let label = nearest_route().label();
        let image = test_image(5, 8);
        client
            .defend_blocking(DefenseRequest::new(image.clone()))
            .unwrap();
        // Same image again: served from the cache, timing only cache_lookup.
        assert!(
            client
                .defend_blocking(DefenseRequest::new(image))
                .unwrap()
                .cache_hit
        );

        let snapshot = client.telemetry_snapshot();
        for stage in ["queue_wait", "batch_dwell", "preprocess", "sr_forward"] {
            let name = format!("route.{label}.stage.{stage}_ns");
            let hist = snapshot.histogram(&name).unwrap_or_else(|| {
                panic!("snapshot must carry a {name} histogram");
            });
            assert_eq!(hist.count, 1, "{name} must time the one computed request");
        }
        assert_eq!(
            snapshot
                .histogram(&format!("route.{label}.stage.cache_lookup_ns"))
                .unwrap()
                .count,
            2,
            "both requests probe the cache"
        );
        // The computed request's journal trace hangs together under one id.
        let computed_id = snapshot
            .events
            .iter()
            .find(|e| e.name == "stage.queue_wait")
            .expect("queue_wait event")
            .request;
        for stage in ["stage.batch_dwell", "stage.preprocess", "stage.sr_forward"] {
            assert!(
                snapshot
                    .events
                    .iter()
                    .any(|e| e.name == stage && e.request == computed_id),
                "{stage} must be journaled under request {computed_id}"
            );
        }
        // Cache gauges are mirrored at snapshot time.
        assert_eq!(snapshot.gauge("gateway.cache.hits"), Some(1));
        assert_eq!(snapshot.gauge("gateway.cache.misses"), Some(1));
        assert_eq!(snapshot.gauge("gateway.cache.entries"), Some(1));
        // Worker arena gauges were published after the batch.
        assert!(
            snapshot
                .gauge(&format!("route.{label}.arena.w0.high_water_bytes"))
                .is_some_and(|bytes| bytes > 0),
            "worker 0 must publish its arena high-water mark"
        );
        // GatewayStats is a view over the same registry: the counters agree.
        assert_eq!(
            snapshot.counter(&format!("route.{label}.completed")),
            Some(2)
        );
        assert_eq!(snapshot.counter("gateway.completed"), Some(2));

        // The exporter round-trips the same snapshot shape through disk.
        let dir = temp_dir("telemetry_export");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.json");
        let exporter = client
            .export_telemetry(&path, Duration::from_secs(3600))
            .unwrap();
        exporter.stop().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = sesr_telemetry::TelemetrySnapshot::from_json(&text).unwrap();
        assert_eq!(parsed.counter("gateway.completed"), Some(2));
        std::fs::remove_dir_all(&dir).ok();

        drop(client);
        gateway.shutdown();
    }

    /// An upscaler that sleeps, to make queueing deterministic in tests.
    struct SlowUpscaler {
        delay: Duration,
        inner: Box<dyn Upscaler>,
    }

    impl Upscaler for SlowUpscaler {
        fn name(&self) -> &str {
            "slow"
        }
        fn scale(&self) -> usize {
            self.inner.scale()
        }
        fn upscale(&self, input: &Tensor) -> sesr_tensor::Result<Tensor> {
            std::thread::sleep(self.delay);
            self.inner.upscale(input)
        }
    }

    fn slow_factory(delay: Duration) -> impl FnMut(usize) -> sesr_tensor::Result<WorkerAssets> {
        move |_| {
            Ok(WorkerAssets::new(DefensePipeline::new(
                PreprocessConfig::none(),
                Box::new(SlowUpscaler {
                    delay,
                    inner: SrModelKind::NearestNeighbor.build_interpolation(2).unwrap(),
                }),
            )))
        }
    }

    #[test]
    fn expired_deadlines_get_a_typed_answer_without_compute() {
        let config = RouteConfig {
            num_workers: 1,
            max_batch: 1,
            max_linger: Duration::ZERO,
            queue_capacity: 8,
        };
        let gateway = GatewayBuilder::new()
            .cache_capacity(0)
            .route_with_factory(
                nearest_route(),
                config,
                slow_factory(Duration::from_millis(30)),
            )
            .build()
            .unwrap();
        let client = gateway.client();
        // First request occupies the worker for 30ms; the queued ones with a
        // tiny deadline expire behind it.
        let blocker = client
            .submit(DefenseRequest::new(test_image(0, 8)))
            .unwrap();
        let doomed: Vec<_> = (1..4)
            .map(|seed| {
                client
                    .submit(
                        DefenseRequest::new(test_image(seed, 8))
                            .with_deadline(Duration::from_millis(1)),
                    )
                    .unwrap()
            })
            .collect();
        assert!(blocker.wait().is_ok());
        for pending in doomed {
            assert_eq!(pending.wait().unwrap_err(), ServeError::DeadlineExceeded);
        }
        let stats = client.stats().global;
        assert_eq!(stats.expired, 3);
        assert_eq!(stats.computed_images, 1, "expired jobs are never defended");
        drop(client);
        gateway.shutdown();
    }

    #[test]
    fn routes_from_store_enumerates_servable_sr_models_only() {
        use rand::{rngs::StdRng, SeedableRng};
        let dir = temp_dir("enumerate");
        let store = ModelStore::open(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let network = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
        store
            .save(&Checkpoint::from_layer("SESR-M2", 2, 0, network.as_ref()))
            .unwrap();
        // A classifier artifact in the same store must not become a route.
        store
            .save(&Checkpoint::from_layer(
                "MobileNet-V2",
                1,
                0,
                network.as_ref(),
            ))
            .unwrap();

        let gateway = GatewayBuilder::new()
            .with_store(store)
            .routes_from_store()
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(
            gateway.routes(),
            vec![RouteKey::paper(SrModelKind::SesrM2, 2)]
        );
        gateway.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn routes_from_store_requires_a_store() {
        assert!(matches!(
            GatewayBuilder::new().routes_from_store(),
            Err(ServeError::InvalidRequest(_))
        ));
    }

    #[test]
    fn prebuilt_routes_cannot_reload_but_factory_routes_can() {
        let assets = vec![
            WorkerAssets::new(DefensePipeline::new(
                PreprocessConfig::none(),
                SrModelKind::NearestNeighbor
                    .build_seeded_upscaler(2, 0)
                    .unwrap(),
            )),
            WorkerAssets::new(DefensePipeline::new(
                PreprocessConfig::none(),
                SrModelKind::NearestNeighbor
                    .build_seeded_upscaler(2, 0)
                    .unwrap(),
            )),
        ];
        let gateway = GatewayBuilder::new()
            .route_with_assets(
                nearest_route(),
                RouteConfig {
                    num_workers: 2,
                    ..RouteConfig::default()
                },
                assets,
            )
            .route(bicubic_route())
            .build()
            .unwrap();
        assert!(matches!(
            gateway.reload(&nearest_route()),
            Err(ServeError::InvalidRequest(_))
        ));
        gateway.reload(&bicubic_route()).unwrap();
        // The reloaded route still serves correctly.
        let client = gateway.client();
        let image = test_image(2, 8);
        let served = client
            .defend_blocking(DefenseRequest::new(image.clone()).on(bicubic_route()))
            .unwrap();
        let direct = DefensePipeline::new(
            PreprocessConfig::none(),
            SrModelKind::Bicubic.build_interpolation(2).unwrap(),
        )
        .defend(&image)
        .unwrap();
        assert_eq!(served.defended, direct);
        drop(client);
        gateway.shutdown();
    }

    #[test]
    fn watcher_counts_failed_reloads_and_keeps_serving_old_weights() {
        use rand::{rngs::StdRng, SeedableRng};
        let dir = temp_dir("watch_fail");
        let store = ModelStore::open(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let network = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
        store
            .save(&Checkpoint::from_layer("SESR-M2", 2, 0, network.as_ref()))
            .unwrap();

        let route = RouteKey::new(SrModelKind::SesrM2, 2, PreprocessConfig::none());
        let gateway = GatewayBuilder::new()
            .with_store(store)
            .route(route)
            .build()
            .unwrap();
        let client = gateway.client();
        let image = test_image(1, 8);
        let before = client
            .defend_blocking(DefenseRequest::new(image.clone()).skip_cache())
            .unwrap();

        let watcher = client.watch_store(Duration::from_millis(5)).unwrap();
        // A newer artifact version appears, but its bytes are garbage: every
        // reload attempt must fail (counted), be retried, and leave the old
        // weights serving.
        std::fs::write(
            dir.join("sesr-m2")
                .join("x2")
                .join("v0002-00000000000000ff.sesrckpt"),
            b"not a checkpoint",
        )
        .unwrap();
        let mut waited = Duration::ZERO;
        while watcher.failure_count() < 2 && waited < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(5));
            waited += Duration::from_millis(5);
        }
        assert!(
            watcher.failure_count() >= 2,
            "an unservable newest artifact must be counted and retried"
        );
        assert_eq!(watcher.reload_count(), 0);
        let after = client
            .defend_blocking(DefenseRequest::new(image).skip_cache())
            .unwrap();
        assert_eq!(
            before.defended, after.defended,
            "the route must keep serving the last good weights"
        );
        watcher.stop();
        drop(client);
        gateway.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watch_store_requires_a_store() {
        let gateway = GatewayBuilder::new()
            .route(nearest_route())
            .build()
            .unwrap();
        let client = gateway.client();
        assert!(matches!(
            client.watch_store(Duration::from_millis(10)),
            Err(ServeError::InvalidRequest(_))
        ));
        drop(client);
        gateway.shutdown();
    }
}
