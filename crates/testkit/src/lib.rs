//! Shared test instrumentation for the workspace.
//!
//! The single export is [`CountingAllocator`], the counting global
//! allocator behind the two zero-allocation proofs (the tensor arena's
//! steady-state serving path and telemetry's hot recording path). It used
//! to be copy-pasted into each test file; it lives here once now so the
//! counting protocol cannot drift between the proofs.
//!
//! This crate is the workspace's **only** source file allowed to contain
//! `unsafe` (a `GlobalAlloc` impl cannot be written without it) — every
//! other crate root carries `#![forbid(unsafe_code)]`, and `sesr-lint`
//! enforces both sides of that bargain.
//!
//! # Usage
//!
//! A consuming test file installs the allocator and measures:
//!
//! ```ignore
//! use sesr_testkit::{count_allocations, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let allocations = count_allocations(|| hot_path());
//! assert_eq!(allocations, 0);
//! ```
//!
//! Keep exactly one `#[test]` per consuming file: sibling tests run on
//! other threads and would allocate inside the counting window.

// lint: allow-file(atomic-ordering): allocator counters; Relaxed inside the window, SeqCst at its edges

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A global allocator that forwards to [`System`] and counts every
/// `alloc`/`realloc`/`alloc_zeroed` call made while a
/// [`count_allocations`] window is open. Frees are never counted: the
/// proofs are about acquiring memory on the hot path.
pub struct CountingAllocator;

impl CountingAllocator {
    fn record(&self) {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.record();
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// Run `f` with allocation counting enabled and return how many heap
/// allocations it performed.
///
/// Only meaningful when [`CountingAllocator`] is installed as the
/// `#[global_allocator]` of the running test binary; without it the count
/// is always zero. Windows must not overlap (one test per file).
pub fn count_allocations(f: impl FnOnce()) -> u64 {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[global_allocator]
    static ALLOC: CountingAllocator = CountingAllocator;

    #[test]
    fn counts_only_inside_the_window() {
        let before = count_allocations(|| {});
        assert_eq!(before, 0, "an empty window performs no allocations");
        let counted = count_allocations(|| {
            let v: Vec<u64> = Vec::with_capacity(32);
            std::hint::black_box(&v);
        });
        assert!(counted >= 1, "a Vec allocation must be observed");
        drop(vec![0u8; 64]);
        let after = count_allocations(|| {});
        assert_eq!(after, 0, "allocations outside a window are not counted");
    }
}
