//! ResNet-style classifier (He et al.): a stem convolution followed by stages
//! of residual blocks with stride-2 downsampling and projection shortcuts,
//! global average pooling and a linear head.

use crate::blocks::ResidualBlock;
use crate::Result;
use rand::Rng;
use sesr_nn::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, Param, ReLU, Sequential,
};
use sesr_tensor::Tensor;

/// Configuration of the laptop-scale ResNet-style classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetConfig {
    /// Stem output channels.
    pub stem_channels: usize,
    /// Stages as `(out_channels, num_blocks, first_stride)`.
    pub stages: Vec<(usize, usize, usize)>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl ResNetConfig {
    /// Default laptop-scale configuration (three stages, matching the
    /// capacity ordering MobileNet-V2 < ResNet < Inception used in the paper).
    pub fn local(num_classes: usize) -> Self {
        ResNetConfig {
            stem_channels: 16,
            stages: vec![(16, 1, 1), (32, 1, 2), (48, 1, 2)],
            num_classes,
        }
    }
}

/// A runnable ResNet-style classifier producing `[N, num_classes]` logits.
pub struct ResNet {
    config: ResNetConfig,
    network: Sequential,
}

impl ResNet {
    /// Build the classifier from a configuration.
    pub fn new(config: ResNetConfig, rng: &mut impl Rng) -> Self {
        let mut net = Sequential::new("resnet");
        net.push(Conv2d::new(3, config.stem_channels, 3, 1, 1, rng));
        net.push(BatchNorm2d::new(config.stem_channels));
        net.push(ReLU::new());
        let mut in_ch = config.stem_channels;
        for &(out_ch, num_blocks, first_stride) in &config.stages {
            for block in 0..num_blocks {
                let stride = if block == 0 { first_stride } else { 1 };
                net.push(ResidualBlock::new(in_ch, out_ch, stride, rng));
                in_ch = out_ch;
            }
        }
        net.push(GlobalAvgPool::new());
        net.push(Flatten::new());
        net.push(Linear::new(in_ch, config.num_classes, rng));
        ResNet {
            config,
            network: net,
        }
    }

    /// The configuration used to build this classifier.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }
}

impl Layer for ResNet {
    fn name(&self) -> &str {
        "resnet"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.network.forward(input, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.network.backward(grad_output)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.network.params_mut()
    }

    fn params(&self) -> Vec<&Param> {
        self.network.params()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.network.buffers()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.network.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_tensor::{init, Shape};

    #[test]
    fn logits_shape_matches_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = ResNet::new(ResNetConfig::local(8), &mut rng);
        let x = init::uniform(Shape::new(&[2, 3, 32, 32]), 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8]);
    }

    #[test]
    fn variable_input_size_is_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = ResNet::new(ResNetConfig::local(4), &mut rng);
        let large = init::uniform(Shape::new(&[1, 3, 64, 64]), 0.0, 1.0, &mut rng);
        assert_eq!(net.forward(&large, false).unwrap().shape().dims(), &[1, 4]);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = ResNet::new(ResNetConfig::local(4), &mut rng);
        let x = init::uniform(Shape::new(&[1, 3, 16, 16]), 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        let g = net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn resnet_has_more_parameters_than_mobilenet() {
        // The capacity ordering the paper relies on (compact MobileNet-V2 is
        // less robust than the larger ResNet) should hold locally too.
        let mut rng = StdRng::seed_from_u64(3);
        let resnet = ResNet::new(ResNetConfig::local(8), &mut rng);
        let mobilenet = crate::mobilenet::MobileNetV2::new(
            crate::mobilenet::MobileNetV2Config::local(8),
            &mut rng,
        );
        assert!(resnet.num_parameters() > mobilenet.num_parameters());
    }
}
