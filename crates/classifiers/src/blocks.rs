//! Shared building blocks: inverted residual (MobileNet-V2), basic residual
//! with projection shortcut (ResNet) and multi-branch inception blocks.

use crate::Result;
use rand::Rng;
use sesr_nn::{
    BatchNorm2d, Conv2d, DepthwiseConv2d, Layer, MaxPool2d, Param, ReLU, Relu6, Sequential,
};
use sesr_tensor::ops::{concat_channels, split_channels};
use sesr_tensor::{Tensor, TensorError};

/// MobileNet-V2 inverted residual block: 1×1 expansion → depthwise 3×3 →
/// 1×1 linear projection, with a residual connection when the stride is 1 and
/// the channel count is unchanged.
pub struct InvertedResidual {
    use_residual: bool,
    body: Sequential,
    cached_input: Option<Tensor>,
}

impl InvertedResidual {
    /// Create a block with the given expansion ratio `t` and stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        expansion: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let hidden = in_channels * expansion;
        let mut body = Sequential::new("inverted_residual");
        if expansion != 1 {
            body.push(Conv2d::new(in_channels, hidden, 1, 1, 0, rng));
            body.push(BatchNorm2d::new(hidden));
            body.push(Relu6::new());
        }
        body.push(DepthwiseConv2d::new(hidden, 3, stride, 1, rng));
        body.push(BatchNorm2d::new(hidden));
        body.push(Relu6::new());
        body.push(Conv2d::new(hidden, out_channels, 1, 1, 0, rng));
        body.push(BatchNorm2d::new(out_channels));
        InvertedResidual {
            use_residual: stride == 1 && in_channels == out_channels,
            body,
            cached_input: None,
        }
    }

    /// Whether this block adds its input to its output.
    pub fn has_residual(&self) -> bool {
        self.use_residual
    }
}

impl Layer for InvertedResidual {
    fn name(&self) -> &str {
        "inverted_residual"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        let out = self.body.forward(input, train)?;
        if self.use_residual {
            out.add(input)
        } else {
            Ok(out)
        }
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let _ = self.cached_input.take().ok_or_else(|| {
            TensorError::invalid_argument("backward before forward in InvertedResidual")
        })?;
        let grad_body = self.body.backward(grad_output)?;
        if self.use_residual {
            grad_body.add(grad_output)
        } else {
            Ok(grad_body)
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.body.params_mut()
    }

    fn params(&self) -> Vec<&Param> {
        self.body.params()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.body.buffers()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.body.buffers_mut()
    }
}

/// ResNet basic residual block (two 3×3 convolutions with batch norm), with a
/// 1×1 projection shortcut when the stride or channel count changes.
pub struct ResidualBlock {
    body: Sequential,
    shortcut: Option<Sequential>,
    relu_out: ReLU,
    cached_input: Option<Tensor>,
}

impl ResidualBlock {
    /// Create a block mapping `in_channels` to `out_channels` at the given stride.
    pub fn new(in_channels: usize, out_channels: usize, stride: usize, rng: &mut impl Rng) -> Self {
        let mut body = Sequential::new("resnet_block_body");
        body.push(Conv2d::new(in_channels, out_channels, 3, stride, 1, rng));
        body.push(BatchNorm2d::new(out_channels));
        body.push(ReLU::new());
        body.push(Conv2d::new(out_channels, out_channels, 3, 1, 1, rng));
        body.push(BatchNorm2d::new(out_channels));
        let shortcut = if stride != 1 || in_channels != out_channels {
            let mut s = Sequential::new("resnet_block_shortcut");
            s.push(Conv2d::new(in_channels, out_channels, 1, stride, 0, rng));
            s.push(BatchNorm2d::new(out_channels));
            Some(s)
        } else {
            None
        };
        ResidualBlock {
            body,
            shortcut,
            relu_out: ReLU::new(),
            cached_input: None,
        }
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &str {
        "resnet_block"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        let body_out = self.body.forward(input, train)?;
        let shortcut_out = match &mut self.shortcut {
            Some(s) => s.forward(input, train)?,
            None => input.clone(),
        };
        let sum = body_out.add(&shortcut_out)?;
        self.relu_out.forward(&sum, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let _ = self.cached_input.take().ok_or_else(|| {
            TensorError::invalid_argument("backward before forward in ResidualBlock")
        })?;
        let grad_sum = self.relu_out.backward(grad_output)?;
        let grad_body = self.body.backward(&grad_sum)?;
        let grad_shortcut = match &mut self.shortcut {
            Some(s) => s.backward(&grad_sum)?,
            None => grad_sum,
        };
        grad_body.add(&grad_shortcut)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out = self.body.params_mut();
        if let Some(s) = &mut self.shortcut {
            out.extend(s.params_mut());
        }
        out
    }

    fn params(&self) -> Vec<&Param> {
        let mut out = self.body.params();
        if let Some(s) = &self.shortcut {
            out.extend(s.params());
        }
        out
    }

    fn buffers(&self) -> Vec<&Tensor> {
        let mut out = self.body.buffers();
        if let Some(s) = &self.shortcut {
            out.extend(s.buffers());
        }
        out
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out = self.body.buffers_mut();
        if let Some(s) = &mut self.shortcut {
            out.extend(s.buffers_mut());
        }
        out
    }
}

/// Inception block with four parallel branches (1×1, 1×1→3×3, 1×1→5×5,
/// 3×3 max-pool→1×1) whose outputs are concatenated along the channel axis.
pub struct InceptionBlock {
    branches: Vec<Sequential>,
    branch_channels: Vec<usize>,
    cached_input: Option<Tensor>,
}

impl InceptionBlock {
    /// Create a block with the given per-branch output widths.
    ///
    /// `b1` is the width of the 1×1 branch, `b3` of the 3×3 branch, `b5` of
    /// the 5×5 branch and `bp` of the pooling branch; the block output has
    /// `b1 + b3 + b5 + bp` channels.
    pub fn new(
        in_channels: usize,
        b1: usize,
        b3: usize,
        b5: usize,
        bp: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let mut branch1 = Sequential::new("inception_1x1");
        branch1.push(Conv2d::new(in_channels, b1, 1, 1, 0, rng));
        branch1.push(BatchNorm2d::new(b1));
        branch1.push(ReLU::new());

        let reduce3 = (b3 / 2).max(1);
        let mut branch3 = Sequential::new("inception_3x3");
        branch3.push(Conv2d::new(in_channels, reduce3, 1, 1, 0, rng));
        branch3.push(BatchNorm2d::new(reduce3));
        branch3.push(ReLU::new());
        branch3.push(Conv2d::new(reduce3, b3, 3, 1, 1, rng));
        branch3.push(BatchNorm2d::new(b3));
        branch3.push(ReLU::new());

        let reduce5 = (b5 / 2).max(1);
        let mut branch5 = Sequential::new("inception_5x5");
        branch5.push(Conv2d::new(in_channels, reduce5, 1, 1, 0, rng));
        branch5.push(BatchNorm2d::new(reduce5));
        branch5.push(ReLU::new());
        branch5.push(Conv2d::new(reduce5, b5, 5, 1, 2, rng));
        branch5.push(BatchNorm2d::new(b5));
        branch5.push(ReLU::new());

        let mut branch_pool = Sequential::new("inception_pool");
        branch_pool.push(MaxPool2d::new(3, 1, 1));
        branch_pool.push(Conv2d::new(in_channels, bp, 1, 1, 0, rng));
        branch_pool.push(BatchNorm2d::new(bp));
        branch_pool.push(ReLU::new());

        InceptionBlock {
            branches: vec![branch1, branch3, branch5, branch_pool],
            branch_channels: vec![b1, b3, b5, bp],
            cached_input: None,
        }
    }

    /// Total output channels of the block.
    pub fn out_channels(&self) -> usize {
        self.branch_channels.iter().sum()
    }
}

impl Layer for InceptionBlock {
    fn name(&self) -> &str {
        "inception_block"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.cached_input = Some(input.clone());
        let mut outputs = Vec::with_capacity(self.branches.len());
        for branch in &mut self.branches {
            outputs.push(branch.forward(input, train)?);
        }
        let refs: Vec<&Tensor> = outputs.iter().collect();
        concat_channels(&refs)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.take().ok_or_else(|| {
            TensorError::invalid_argument("backward before forward in InceptionBlock")
        })?;
        let grads = split_channels(grad_output, &self.branch_channels)?;
        let mut grad_input = Tensor::zeros(input.shape().clone());
        for (branch, grad) in self.branches.iter_mut().zip(grads) {
            let g = branch.backward(&grad)?;
            grad_input.add_scaled_inplace(&g, 1.0)?;
        }
        Ok(grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.branches
            .iter_mut()
            .flat_map(|b| b.params_mut())
            .collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.branches.iter().flat_map(|b| b.params()).collect()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.branches.iter().flat_map(|b| b.buffers()).collect()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.branches
            .iter_mut()
            .flat_map(|b| b.buffers_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_tensor::{init, Shape};

    #[test]
    fn inverted_residual_shapes_and_residual_flag() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut same = InvertedResidual::new(8, 8, 1, 2, &mut rng);
        assert!(same.has_residual());
        let x = init::normal(Shape::new(&[1, 8, 8, 8]), 0.0, 1.0, &mut rng);
        let y = same.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        let g = same.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());

        let mut strided = InvertedResidual::new(8, 16, 2, 2, &mut rng);
        assert!(!strided.has_residual());
        let y = strided.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 16, 4, 4]);
    }

    #[test]
    fn resnet_block_with_and_without_projection() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = init::normal(Shape::new(&[1, 8, 8, 8]), 0.0, 1.0, &mut rng);
        let mut plain = ResidualBlock::new(8, 8, 1, &mut rng);
        let y = plain.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        let g = plain.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());

        let mut proj = ResidualBlock::new(8, 16, 2, &mut rng);
        let y = proj.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 16, 4, 4]);
        let g = proj.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn inception_block_concatenates_branches() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut block = InceptionBlock::new(8, 4, 6, 2, 4, &mut rng);
        assert_eq!(block.out_channels(), 16);
        let x = init::normal(Shape::new(&[2, 8, 6, 6]), 0.0, 1.0, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 16, 6, 6]);
        let g = block.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = Tensor::zeros(Shape::new(&[1, 8, 4, 4]));
        assert!(InvertedResidual::new(8, 8, 1, 2, &mut rng)
            .backward(&g)
            .is_err());
        assert!(ResidualBlock::new(8, 8, 1, &mut rng).backward(&g).is_err());
        assert!(InceptionBlock::new(8, 2, 2, 2, 2, &mut rng)
            .backward(&g)
            .is_err());
    }
}
