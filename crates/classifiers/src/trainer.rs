//! Training loop for classifiers on the synthetic classification dataset.

use crate::zoo::ClassifierKind;
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_datagen::ClassificationDataset;
use sesr_nn::loss::accuracy;
use sesr_nn::{cross_entropy_loss, Adam, Layer, Optimizer};
use sesr_store::{fnv1a64, Checkpoint, ModelStore, StoredArtifact};
use sesr_tensor::{Tensor, TensorError};

/// Configuration of a classifier training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierTrainingConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
}

impl Default for ClassifierTrainingConfig {
    fn default() -> Self {
        ClassifierTrainingConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 2e-3,
        }
    }
}

impl ClassifierTrainingConfig {
    /// A stable 64-bit digest of this configuration, recorded in checkpoint
    /// headers so stored artifacts carry their training provenance.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(20);
        bytes.extend_from_slice(&(self.epochs as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.batch_size as u64).to_le_bytes());
        bytes.extend_from_slice(&self.learning_rate.to_bits().to_le_bytes());
        fnv1a64(&bytes)
    }
}

/// Summary of a classifier training run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierTrainingReport {
    /// Mean cross-entropy loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the training split after training.
    pub train_accuracy: f32,
    /// Accuracy on the validation split after training.
    pub val_accuracy: f32,
}

/// Trainer that fits any [`Layer`] classifier on a [`ClassificationDataset`].
#[derive(Debug, Clone, Copy)]
pub struct ClassifierTrainer {
    config: ClassifierTrainingConfig,
}

impl ClassifierTrainer {
    /// Create a trainer with the given configuration.
    pub fn new(config: ClassifierTrainingConfig) -> Self {
        ClassifierTrainer { config }
    }

    /// The training configuration.
    pub fn config(&self) -> ClassifierTrainingConfig {
        self.config
    }

    /// Train `network` in place and return a report.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is empty or the network output does
    /// not match the class count.
    pub fn train(
        &self,
        network: &mut dyn Layer,
        dataset: &ClassificationDataset,
    ) -> Result<ClassifierTrainingReport> {
        if dataset.train_len() == 0 {
            return Err(TensorError::invalid_argument(
                "cannot train on an empty dataset",
            ));
        }
        let mut optimizer = Adam::new(self.config.learning_rate);
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);
        for _ in 0..self.config.epochs {
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for (images, labels) in dataset.train_batches(self.config.batch_size)? {
                let logits = network.forward(&images, true)?;
                let loss = cross_entropy_loss(&logits, &labels)?;
                network.zero_grad();
                network.backward(&loss.grad)?;
                optimizer.step(&mut network.params_mut());
                epoch_loss += loss.loss;
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f32);
        }
        let train_accuracy =
            evaluate_split(network, dataset, Split::Train, self.config.batch_size)?;
        let val_accuracy = evaluate_split(network, dataset, Split::Val, self.config.batch_size)?;
        Ok(ClassifierTrainingReport {
            epoch_losses,
            train_accuracy,
            val_accuracy,
        })
    }

    /// Train a fresh `kind` classifier and persist the resulting weights in
    /// the same artifact store the SR models use (scale 1, model id
    /// [`ClassifierKind::store_id`]).
    ///
    /// # Errors
    ///
    /// Returns an error if training fails or the store cannot persist the
    /// artifact.
    pub fn train_and_save(
        &self,
        kind: ClassifierKind,
        dataset: &ClassificationDataset,
        store: &ModelStore,
        seed: u64,
    ) -> Result<(ClassifierTrainingReport, StoredArtifact)> {
        let num_classes = dataset.config().num_classes;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut network = kind.build_local(num_classes, &mut rng);
        let report = self.train(network.as_mut(), dataset)?;
        let checkpoint = Checkpoint::from_layer(
            kind.store_id(num_classes),
            1,
            self.config.digest(),
            network.as_ref(),
        );
        let artifact = store.save(&checkpoint)?;
        Ok((report, artifact))
    }
}

enum Split {
    Train,
    Val,
}

fn evaluate_split(
    network: &mut dyn Layer,
    dataset: &ClassificationDataset,
    split: Split,
    batch_size: usize,
) -> Result<f32> {
    let batches = match split {
        Split::Train => dataset.train_batches(batch_size)?,
        Split::Val => dataset.val_batches(batch_size)?,
    };
    let mut correct = 0.0f32;
    let mut total = 0usize;
    for (images, labels) in batches {
        let logits = network.forward(&images, false)?;
        correct += accuracy(&logits, &labels)? * labels.len() as f32;
        total += labels.len();
    }
    Ok(if total > 0 {
        correct / total as f32
    } else {
        0.0
    })
}

/// Predict the class of a single `[1, 3, H, W]` image.
///
/// # Errors
///
/// Returns an error if the network output is not a logits matrix.
pub fn predict(network: &mut dyn Layer, image: &Tensor) -> Result<usize> {
    let logits = network.forward(image, false)?;
    logits.argmax()
}

/// Accuracy of a classifier over a list of single-image tensors and labels.
///
/// # Errors
///
/// Returns an error if the image and label counts differ.
pub fn evaluate_images(
    network: &mut dyn Layer,
    images: &[Tensor],
    labels: &[usize],
) -> Result<f32> {
    if images.len() != labels.len() {
        return Err(TensorError::invalid_argument(format!(
            "{} images but {} labels",
            images.len(),
            labels.len()
        )));
    }
    if images.is_empty() {
        return Ok(0.0);
    }
    let mut correct = 0usize;
    for (image, &label) in images.iter().zip(labels) {
        if predict(network, image)? == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / images.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobilenet::{MobileNetV2, MobileNetV2Config};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_datagen::DatasetConfig;

    fn tiny_dataset() -> ClassificationDataset {
        ClassificationDataset::generate(DatasetConfig {
            num_classes: 3,
            train_size: 30,
            val_size: 9,
            height: 16,
            width: 16,
            seed: 11,
        })
        .unwrap()
    }

    #[test]
    fn train_and_save_then_hydrate_reproduces_the_classifier() {
        let dir = std::env::temp_dir().join(format!("sesr_clf_train_save_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ModelStore::open(&dir).unwrap();
        let dataset = tiny_dataset();
        let trainer = ClassifierTrainer::new(ClassifierTrainingConfig {
            epochs: 2,
            batch_size: 10,
            learning_rate: 3e-3,
        });
        let (report, artifact) = trainer
            .train_and_save(ClassifierKind::MobileNetV2, &dataset, &store, 3)
            .unwrap();
        assert!(report.val_accuracy.is_finite());
        assert_eq!(artifact.model_id, "mobilenet-v2-c3");
        assert_eq!(artifact.scale, 1);

        // A fresh registry over the same directory hydrates identical logits.
        let registry = sesr_store::ModelRegistry::new(ModelStore::open(&dir).unwrap());
        let mut hydrated = ClassifierKind::MobileNetV2
            .build_from_store(3, &registry, 999)
            .unwrap();
        let stored = store.load(&artifact).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let mut direct = ClassifierKind::MobileNetV2.build_local(3, &mut rng);
        stored.apply_to(direct.as_mut()).unwrap();
        let (image, _) = dataset.val_batches(1).unwrap().into_iter().next().unwrap();
        assert_eq!(
            hydrated.forward(&image, false).unwrap(),
            direct.forward(&image, false).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn training_improves_over_chance() {
        let dataset = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = MobileNetV2::new(MobileNetV2Config::local(3), &mut rng);
        let trainer = ClassifierTrainer::new(ClassifierTrainingConfig {
            epochs: 8,
            batch_size: 10,
            learning_rate: 3e-3,
        });
        let report = trainer.train(&mut net, &dataset).unwrap();
        assert_eq!(report.epoch_losses.len(), 8);
        assert!(
            report.train_accuracy > 0.5,
            "train accuracy {} not above chance",
            report.train_accuracy
        );
        // Loss should broadly decrease.
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn predict_and_evaluate_images_agree_with_val_accuracy() {
        let dataset = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = MobileNetV2::new(MobileNetV2Config::local(3), &mut rng);
        let trainer = ClassifierTrainer::new(ClassifierTrainingConfig {
            epochs: 4,
            batch_size: 10,
            learning_rate: 3e-3,
        });
        let report = trainer.train(&mut net, &dataset).unwrap();
        let acc = evaluate_images(&mut net, dataset.val_images(), dataset.val_labels()).unwrap();
        assert!((acc - report.val_accuracy).abs() < 1e-5);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = MobileNetV2::new(MobileNetV2Config::local(3), &mut rng);
        let dataset = tiny_dataset();
        assert!(evaluate_images(&mut net, dataset.val_images(), &[0, 1]).is_err());
    }
}
