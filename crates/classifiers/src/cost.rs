//! Paper-scale analytic cost models for the classifiers.
//!
//! Table IV of the paper hinges on the cost of the *enlarged* MobileNet-V2:
//! in the defense pipeline the classifier receives a 598×598 image instead of
//! the native 224×224, which raises its cost from roughly 0.3 B to roughly
//! 2.1 B MACs. [`mobilenet_v2_paper_spec`] reproduces the standard
//! MobileNet-V2 (1.0×, 1000 classes) op-by-op so those numbers fall out of
//! the same analytic machinery used for the SR models; a ResNet-50 spec is
//! provided for completeness.

use sesr_nn::spec::{NetworkSpec, OpDesc};

/// Append one MobileNet-V2 inverted-residual block to a spec.
fn push_inverted_residual(
    spec: &mut NetworkSpec,
    name: &str,
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    expansion: usize,
) {
    let hidden = in_ch * expansion;
    if expansion != 1 {
        spec.push(
            format!("{name}_expand_1x1"),
            OpDesc::Conv2d {
                in_channels: in_ch,
                out_channels: hidden,
                kernel: 1,
                stride: 1,
                bias: false,
            },
        );
        spec.push(
            format!("{name}_expand_act"),
            OpDesc::Elementwise { channels: hidden },
        );
    }
    spec.push(
        format!("{name}_dw_3x3"),
        OpDesc::DepthwiseConv2d {
            channels: hidden,
            kernel: 3,
            stride,
            bias: false,
        },
    );
    spec.push(
        format!("{name}_dw_act"),
        OpDesc::Elementwise { channels: hidden },
    );
    spec.push(
        format!("{name}_project_1x1"),
        OpDesc::Conv2d {
            in_channels: hidden,
            out_channels: out_ch,
            kernel: 1,
            stride: 1,
            bias: false,
        },
    );
}

/// The standard MobileNet-V2 (width 1.0, 1000 classes) as an analytic spec.
pub fn mobilenet_v2_paper_spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new("mobilenet_v2_paper");
    spec.push(
        "stem_3x3_s2",
        OpDesc::Conv2d {
            in_channels: 3,
            out_channels: 32,
            kernel: 3,
            stride: 2,
            bias: false,
        },
    );
    // (expansion, out_channels, repeats, first_stride) per the MobileNet-V2 paper.
    let stages: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut in_ch = 32;
    for (stage_idx, &(expansion, out_ch, repeats, first_stride)) in stages.iter().enumerate() {
        for rep in 0..repeats {
            let stride = if rep == 0 { first_stride } else { 1 };
            push_inverted_residual(
                &mut spec,
                &format!("stage{stage_idx}_block{rep}"),
                in_ch,
                out_ch,
                stride,
                expansion,
            );
            in_ch = out_ch;
        }
    }
    spec.push(
        "head_1x1",
        OpDesc::Conv2d {
            in_channels: 320,
            out_channels: 1280,
            kernel: 1,
            stride: 1,
            bias: false,
        },
    );
    spec.push("global_pool", OpDesc::GlobalPool { channels: 1280 });
    spec.push(
        "classifier",
        OpDesc::Linear {
            in_features: 1280,
            out_features: 1000,
        },
    );
    spec
}

/// Append one ResNet-50 bottleneck block (1×1 reduce, 3×3, 1×1 expand).
fn push_bottleneck(
    spec: &mut NetworkSpec,
    name: &str,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    stride: usize,
    projection: bool,
) {
    spec.push(
        format!("{name}_reduce_1x1"),
        OpDesc::Conv2d {
            in_channels: in_ch,
            out_channels: mid_ch,
            kernel: 1,
            stride: 1,
            bias: false,
        },
    );
    spec.push(
        format!("{name}_conv_3x3"),
        OpDesc::Conv2d {
            in_channels: mid_ch,
            out_channels: mid_ch,
            kernel: 3,
            stride,
            bias: false,
        },
    );
    spec.push(
        format!("{name}_expand_1x1"),
        OpDesc::Conv2d {
            in_channels: mid_ch,
            out_channels: out_ch,
            kernel: 1,
            stride: 1,
            bias: false,
        },
    );
    if projection {
        // The projection shortcut is accounted as extra parameters/MACs on the
        // main path approximation: model it as an elementwise op here because
        // the spec is a single chain. Its cost (~10% of a stage) is folded
        // into the tolerance used when comparing against published numbers.
        spec.push(
            format!("{name}_proj_marker"),
            OpDesc::Elementwise { channels: out_ch },
        );
    }
}

/// ResNet-50 (1000 classes) as an analytic spec. Projection shortcuts are not
/// counted (they contribute only a few percent of total MACs), so totals land
/// slightly below the published 4.1 GMACs / 25.6 M parameters.
pub fn resnet50_paper_spec() -> NetworkSpec {
    let mut spec = NetworkSpec::new("resnet50_paper");
    spec.push(
        "stem_7x7_s2",
        OpDesc::Conv2d {
            in_channels: 3,
            out_channels: 64,
            kernel: 7,
            stride: 2,
            bias: false,
        },
    );
    spec.push(
        "stem_pool",
        OpDesc::Pool {
            channels: 64,
            stride: 2,
        },
    );
    // (mid_channels, out_channels, blocks, first_stride)
    let stages: [(usize, usize, usize, usize); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    let mut in_ch = 64;
    for (stage_idx, &(mid, out, blocks, first_stride)) in stages.iter().enumerate() {
        for block in 0..blocks {
            let stride = if block == 0 { first_stride } else { 1 };
            push_bottleneck(
                &mut spec,
                &format!("stage{stage_idx}_block{block}"),
                in_ch,
                mid,
                out,
                stride,
                block == 0,
            );
            in_ch = out;
        }
    }
    spec.push("global_pool", OpDesc::GlobalPool { channels: 2048 });
    spec.push(
        "classifier",
        OpDesc::Linear {
            in_features: 2048,
            out_features: 1000,
        },
    );
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v2_cost_matches_published_numbers_at_224() {
        let spec = mobilenet_v2_paper_spec();
        let macs = spec.total_macs((3, 224, 224)).unwrap();
        let params = spec.total_params();
        // Published: ~300M MACs, ~3.4M parameters (the paper quotes ~300M).
        assert!(
            (250_000_000..400_000_000).contains(&macs),
            "MobileNet-V2 MACs at 224: {macs}"
        );
        assert!(
            (3_000_000..4_000_000).contains(&params),
            "MobileNet-V2 params: {params}"
        );
    }

    #[test]
    fn enlarged_mobilenet_v2_matches_table4_cost() {
        // Table IV: the enlarged (598x598) MobileNet-V2 needs ~2.1B MACs.
        let spec = mobilenet_v2_paper_spec();
        let macs = spec.total_macs((3, 598, 598)).unwrap();
        assert!(
            (1_700_000_000..2_600_000_000).contains(&macs),
            "enlarged MobileNet-V2 MACs: {macs}"
        );
    }

    #[test]
    fn enlargement_ratio_is_about_7x() {
        let spec = mobilenet_v2_paper_spec();
        let small = spec.total_macs((3, 224, 224)).unwrap() as f64;
        let large = spec.total_macs((3, 598, 598)).unwrap() as f64;
        let ratio = large / small;
        assert!((5.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn resnet50_cost_is_in_published_range() {
        let spec = resnet50_paper_spec();
        let macs = spec.total_macs((3, 224, 224)).unwrap();
        let params = spec.total_params();
        // Published ~4.1 GMACs / 25.6M params; shortcuts are uncounted so
        // allow a generous lower band.
        assert!(
            (3_200_000_000..4_500_000_000).contains(&macs),
            "ResNet-50 MACs: {macs}"
        );
        assert!(
            (20_000_000..27_000_000).contains(&params),
            "ResNet-50 params: {params}"
        );
    }

    #[test]
    fn resnet50_is_heavier_than_mobilenet() {
        let r = resnet50_paper_spec().total_macs((3, 224, 224)).unwrap();
        let m = mobilenet_v2_paper_spec().total_macs((3, 224, 224)).unwrap();
        assert!(r > 10 * m);
    }
}
