//! MobileNet-V2-style classifier (Sandler et al.): a stem convolution,
//! a stack of inverted residual blocks with depthwise convolutions, a 1×1
//! head convolution, global average pooling and a linear classifier.
//!
//! The laptop-scale configuration keeps the architectural signature of
//! MobileNet-V2 — linear bottlenecks, ReLU6, depthwise separable convolutions,
//! stride-2 downsampling inside blocks — at a width/depth that trains on the
//! synthetic dataset in seconds.

use crate::blocks::InvertedResidual;
use crate::Result;
use rand::Rng;
use sesr_nn::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, Param, Relu6, Sequential,
};
use sesr_tensor::Tensor;

/// Configuration of the laptop-scale MobileNet-V2-style classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MobileNetV2Config {
    /// Stem output channels.
    pub stem_channels: usize,
    /// Inverted residual blocks as `(out_channels, stride, expansion)`.
    pub blocks: Vec<(usize, usize, usize)>,
    /// Channels of the 1×1 head convolution.
    pub head_channels: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl MobileNetV2Config {
    /// Default laptop-scale configuration for `num_classes` classes.
    pub fn local(num_classes: usize) -> Self {
        MobileNetV2Config {
            stem_channels: 12,
            blocks: vec![(12, 1, 1), (16, 2, 2), (16, 1, 2), (24, 2, 2), (24, 1, 2)],
            head_channels: 48,
            num_classes,
        }
    }
}

/// A runnable MobileNet-V2-style classifier producing `[N, num_classes]` logits.
pub struct MobileNetV2 {
    config: MobileNetV2Config,
    network: Sequential,
}

impl MobileNetV2 {
    /// Build the classifier from a configuration.
    pub fn new(config: MobileNetV2Config, rng: &mut impl Rng) -> Self {
        let mut net = Sequential::new("mobilenet_v2");
        net.push(Conv2d::new(3, config.stem_channels, 3, 1, 1, rng));
        net.push(BatchNorm2d::new(config.stem_channels));
        net.push(Relu6::new());
        let mut in_ch = config.stem_channels;
        for &(out_ch, stride, expansion) in &config.blocks {
            net.push(InvertedResidual::new(in_ch, out_ch, stride, expansion, rng));
            in_ch = out_ch;
        }
        net.push(Conv2d::new(in_ch, config.head_channels, 1, 1, 0, rng));
        net.push(BatchNorm2d::new(config.head_channels));
        net.push(Relu6::new());
        net.push(GlobalAvgPool::new());
        net.push(Flatten::new());
        net.push(Linear::new(config.head_channels, config.num_classes, rng));
        MobileNetV2 {
            config,
            network: net,
        }
    }

    /// The configuration used to build this classifier.
    pub fn config(&self) -> &MobileNetV2Config {
        &self.config
    }
}

impl Layer for MobileNetV2 {
    fn name(&self) -> &str {
        "mobilenet_v2"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.network.forward(input, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.network.backward(grad_output)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.network.params_mut()
    }

    fn params(&self) -> Vec<&Param> {
        self.network.params()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.network.buffers()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.network.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_tensor::{init, Shape};

    #[test]
    fn logits_shape_matches_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = MobileNetV2::new(MobileNetV2Config::local(8), &mut rng);
        let x = init::uniform(Shape::new(&[2, 3, 32, 32]), 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8]);
    }

    #[test]
    fn accepts_larger_inputs_thanks_to_global_pooling() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = MobileNetV2::new(MobileNetV2Config::local(4), &mut rng);
        let small = init::uniform(Shape::new(&[1, 3, 32, 32]), 0.0, 1.0, &mut rng);
        let large = init::uniform(Shape::new(&[1, 3, 64, 64]), 0.0, 1.0, &mut rng);
        assert_eq!(net.forward(&small, false).unwrap().shape().dims(), &[1, 4]);
        assert_eq!(net.forward(&large, false).unwrap().shape().dims(), &[1, 4]);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = MobileNetV2::new(MobileNetV2Config::local(4), &mut rng);
        let x = init::uniform(Shape::new(&[1, 3, 16, 16]), 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        let g = net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert!(g.norm() > 0.0);
    }
}
