//! The classifier enumeration used by the experiments, matching the three
//! classifier sections of Table II.

use crate::cost::{mobilenet_v2_paper_spec, resnet50_paper_spec};
use crate::inception::{InceptionNet, InceptionNetConfig};
use crate::mobilenet::{MobileNetV2, MobileNetV2Config};
use crate::resnet::{ResNet, ResNetConfig};
use rand::{Rng, SeedableRng};
use sesr_nn::spec::NetworkSpec;
use sesr_nn::Layer;

/// The three classifier families attacked and defended in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// MobileNet-V2 (compact; the paper's least robust classifier and the one
    /// deployed on the Ethos-U55 in Table IV).
    MobileNetV2,
    /// ResNet-50-style residual network.
    ResNet50,
    /// Inception-V3-style multi-branch network (the paper's most robust).
    InceptionV3,
}

impl ClassifierKind {
    /// All classifier kinds, in the row-group order of Table II.
    pub fn all() -> Vec<ClassifierKind> {
        vec![
            ClassifierKind::MobileNetV2,
            ClassifierKind::ResNet50,
            ClassifierKind::InceptionV3,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::MobileNetV2 => "MobileNet-V2",
            ClassifierKind::ResNet50 => "ResNet-50",
            ClassifierKind::InceptionV3 => "Inception-V3",
        }
    }

    /// Filesystem/identifier-safe slug of the display name
    /// (`"MobileNet-V2"` → `"mobilenet-v2"`), the same mapping the artifact
    /// store uses for its directories; the inverse of
    /// [`ClassifierKind::parse`].
    pub fn slug(&self) -> String {
        sesr_store::slugify(self.name())
    }

    /// Parse a display name (`"ResNet-50"`), slug (`"resnet-50"`) or
    /// space/underscore variant back into a kind; `None` for anything that
    /// is not a classifier (e.g. an SR model id). This is what lets CLI
    /// flags and scenario filters name classifiers.
    pub fn parse(name: &str) -> Option<ClassifierKind> {
        let normalized = sesr_store::slugify(name);
        ClassifierKind::all()
            .into_iter()
            .find(|kind| kind.slug() == normalized)
    }

    /// Build the laptop-scale runnable classifier for `num_classes` classes.
    pub fn build_local(&self, num_classes: usize, rng: &mut impl Rng) -> Box<dyn Layer> {
        match self {
            ClassifierKind::MobileNetV2 => {
                Box::new(MobileNetV2::new(MobileNetV2Config::local(num_classes), rng))
            }
            ClassifierKind::ResNet50 => {
                Box::new(ResNet::new(ResNetConfig::local(num_classes), rng))
            }
            ClassifierKind::InceptionV3 => Box::new(InceptionNet::new(
                InceptionNetConfig::local(num_classes),
                rng,
            )),
        }
    }

    /// The store identity for this classifier at a given class count.
    ///
    /// The class count is part of the identity because it changes the head
    /// architecture: a checkpoint trained for 3 classes cannot hydrate a
    /// 6-class network.
    pub fn store_id(&self, num_classes: usize) -> String {
        format!("{}-c{num_classes}", self.name())
    }

    /// Build a classifier hydrated with trained weights from a model store
    /// (classifier checkpoints live in the same store as SR artifacts, under
    /// scale 1).
    ///
    /// Falls back to the seeded-random network **only** when no artifact
    /// exists for [`ClassifierKind::store_id`]; corrupt or mismatched
    /// artifacts are errors, never silently ignored.
    ///
    /// # Errors
    ///
    /// Returns an error if a stored artifact fails validation or does not fit
    /// this architecture.
    pub fn build_from_store(
        &self,
        num_classes: usize,
        registry: &sesr_store::ModelRegistry,
        seed: u64,
    ) -> sesr_tensor::Result<Box<dyn Layer>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut network = self.build_local(num_classes, &mut rng);
        match registry.hydrate(&self.store_id(num_classes), 1) {
            Ok(checkpoint) => {
                checkpoint
                    .apply_to(network.as_mut())
                    .map_err(sesr_tensor::TensorError::from)?;
            }
            Err(err) if err.is_not_found() => {} // nothing trained yet
            Err(err) => return Err(err.into()),
        }
        Ok(network)
    }

    /// Paper-scale analytic spec, where available (`MobileNet-V2` and
    /// `ResNet-50`; an Inception-V3 spec is not required by any table).
    pub fn paper_spec(&self) -> Option<NetworkSpec> {
        match self {
            ClassifierKind::MobileNetV2 => Some(mobilenet_v2_paper_spec()),
            ClassifierKind::ResNet50 => Some(resnet50_paper_spec()),
            ClassifierKind::InceptionV3 => None,
        }
    }
}

impl std::fmt::Display for ClassifierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_tensor::{init, Shape};

    #[test]
    fn all_kinds_build_and_classify() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = init::uniform(Shape::new(&[1, 3, 16, 16]), 0.0, 1.0, &mut rng);
        for kind in ClassifierKind::all() {
            let mut net = kind.build_local(5, &mut rng);
            let logits = net.forward(&x, false).unwrap();
            assert_eq!(logits.shape().dims(), &[1, 5], "{kind}");
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(ClassifierKind::MobileNetV2.name(), "MobileNet-V2");
        assert_eq!(ClassifierKind::ResNet50.to_string(), "ResNet-50");
        assert_eq!(ClassifierKind::InceptionV3.name(), "Inception-V3");
    }

    #[test]
    fn parse_inverts_name_and_slug_for_every_kind() {
        for kind in ClassifierKind::all() {
            assert_eq!(ClassifierKind::parse(kind.name()), Some(kind));
            assert_eq!(ClassifierKind::parse(&kind.slug()), Some(kind));
        }
        assert_eq!(
            ClassifierKind::parse("mobilenet_v2"),
            Some(ClassifierKind::MobileNetV2)
        );
        assert_eq!(ClassifierKind::parse("sesr-m2"), None);
        assert_eq!(ClassifierKind::parse(""), None);
    }

    #[test]
    fn paper_specs_where_available() {
        assert!(ClassifierKind::MobileNetV2.paper_spec().is_some());
        assert!(ClassifierKind::ResNet50.paper_spec().is_some());
        assert!(ClassifierKind::InceptionV3.paper_spec().is_none());
    }
}
