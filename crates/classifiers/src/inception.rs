//! Inception-style classifier (Szegedy et al.): a convolutional stem followed
//! by multi-branch inception blocks with max-pool downsampling between
//! stages, global average pooling and a linear head.

use crate::blocks::InceptionBlock;
use crate::Result;
use rand::Rng;
use sesr_nn::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, Param, ReLU, Sequential,
};
use sesr_tensor::Tensor;

/// Configuration of the laptop-scale Inception-style classifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InceptionNetConfig {
    /// Stem output channels.
    pub stem_channels: usize,
    /// Inception stages; each entry is a list of blocks, each block given as
    /// per-branch widths `(b1, b3, b5, bp)`. A stride-2 max-pool separates
    /// stages.
    pub stages: Vec<Vec<(usize, usize, usize, usize)>>,
    /// Number of output classes.
    pub num_classes: usize,
}

impl InceptionNetConfig {
    /// Default laptop-scale configuration (two stages of inception blocks).
    pub fn local(num_classes: usize) -> Self {
        InceptionNetConfig {
            stem_channels: 16,
            stages: vec![
                vec![(16, 24, 8, 8)],
                vec![(24, 32, 12, 12)],
                vec![(32, 48, 16, 16), (48, 64, 24, 24)],
            ],
            num_classes,
        }
    }
}

/// A runnable Inception-style classifier producing `[N, num_classes]` logits.
pub struct InceptionNet {
    config: InceptionNetConfig,
    network: Sequential,
}

impl InceptionNet {
    /// Build the classifier from a configuration.
    pub fn new(config: InceptionNetConfig, rng: &mut impl Rng) -> Self {
        let mut net = Sequential::new("inception");
        net.push(Conv2d::new(3, config.stem_channels, 3, 1, 1, rng));
        net.push(BatchNorm2d::new(config.stem_channels));
        net.push(ReLU::new());
        let mut in_ch = config.stem_channels;
        for (stage_idx, stage) in config.stages.iter().enumerate() {
            if stage_idx > 0 {
                net.push(MaxPool2d::new(2, 2, 0));
            }
            for &(b1, b3, b5, bp) in stage {
                let block = InceptionBlock::new(in_ch, b1, b3, b5, bp, rng);
                in_ch = block.out_channels();
                net.push(block);
            }
        }
        net.push(GlobalAvgPool::new());
        net.push(Flatten::new());
        net.push(Linear::new(in_ch, config.num_classes, rng));
        InceptionNet {
            config,
            network: net,
        }
    }

    /// The configuration used to build this classifier.
    pub fn config(&self) -> &InceptionNetConfig {
        &self.config
    }
}

impl Layer for InceptionNet {
    fn name(&self) -> &str {
        "inception"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        self.network.forward(input, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        self.network.backward(grad_output)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.network.params_mut()
    }

    fn params(&self) -> Vec<&Param> {
        self.network.params()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.network.buffers()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.network.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_tensor::{init, Shape};

    #[test]
    fn logits_shape_matches_classes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = InceptionNet::new(InceptionNetConfig::local(8), &mut rng);
        let x = init::uniform(Shape::new(&[2, 3, 32, 32]), 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        assert_eq!(y.shape().dims(), &[2, 8]);
    }

    #[test]
    fn variable_input_size_is_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = InceptionNet::new(InceptionNetConfig::local(4), &mut rng);
        let large = init::uniform(Shape::new(&[1, 3, 64, 64]), 0.0, 1.0, &mut rng);
        assert_eq!(net.forward(&large, false).unwrap().shape().dims(), &[1, 4]);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = InceptionNet::new(InceptionNetConfig::local(4), &mut rng);
        let x = init::uniform(Shape::new(&[1, 3, 16, 16]), 0.0, 1.0, &mut rng);
        let y = net.forward(&x, false).unwrap();
        let g = net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        assert_eq!(g.shape(), x.shape());
        assert!(g.norm() > 0.0);
    }

    #[test]
    fn inception_has_the_most_parameters_of_the_zoo() {
        let mut rng = StdRng::seed_from_u64(3);
        let inception = InceptionNet::new(InceptionNetConfig::local(8), &mut rng);
        let resnet = crate::resnet::ResNet::new(crate::resnet::ResNetConfig::local(8), &mut rng);
        assert!(inception.num_parameters() > resnet.num_parameters());
    }
}
