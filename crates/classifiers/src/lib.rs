//! Classifier zoo for the SESR adversarial-defense reproduction.
//!
//! The paper attacks and defends three ImageNet classifiers: MobileNet-V2,
//! ResNet-50 and Inception-V3. This crate provides architecturally faithful,
//! laptop-scale versions of all three (inverted residual / depthwise blocks,
//! bottleneck residual blocks, and multi-branch inception blocks
//! respectively), a training loop on the synthetic classification dataset,
//! and paper-scale analytic cost models (the enlarged MobileNet-V2 cost is
//! what Table IV's NPU latency estimate is built on).
//!
//! Every classifier ends in global average pooling, so — exactly as in the
//! paper — the same trained network accepts both the native-resolution input
//! and the ×2-upscaled image produced by the defense pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod cost;
pub mod inception;
pub mod mobilenet;
pub mod resnet;
pub mod trainer;
pub mod zoo;

pub use inception::{InceptionNet, InceptionNetConfig};
pub use mobilenet::{MobileNetV2, MobileNetV2Config};
pub use resnet::{ResNet, ResNetConfig};
pub use trainer::{ClassifierTrainer, ClassifierTrainingConfig, ClassifierTrainingReport};
pub use zoo::ClassifierKind;

/// Result alias re-exported from the tensor crate.
pub type Result<T> = sesr_tensor::Result<T>;
