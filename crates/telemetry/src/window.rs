//! Windowed time-series over periodic [`TelemetrySnapshot`]s.
//!
//! The registry's counters and histograms are cumulative over the process
//! lifetime, which is the right shape for exact export but the wrong shape
//! for interpretation: a latency regression is diluted by hours of healthy
//! warm-up history. A [`WindowedStore`] keeps a bounded ring of timestamped
//! snapshots ("frames") and recovers *interval* views by subtraction — per
//! -window counter rates via [`WindowDelta::counter_delta`] and exact
//! interval histograms via
//! [`HistogramSnapshot::delta_since`](crate::histogram::HistogramSnapshot::delta_since).
//!
//! Timestamps are caller-supplied milliseconds on any monotonic axis (a
//! process epoch, a test's synthetic clock); the store never reads a wall
//! clock, which keeps window arithmetic deterministic under test.

use crate::histogram::HistogramSnapshot;
use crate::snapshot::TelemetrySnapshot;
use std::collections::VecDeque;

/// One timestamped snapshot in a [`WindowedStore`].
#[derive(Debug, Clone)]
pub struct Frame {
    /// Milliseconds since the caller's epoch when the snapshot was taken.
    pub at_ms: u64,
    /// The full cumulative snapshot at that instant.
    pub snapshot: TelemetrySnapshot,
}

/// Bounded ring of timestamped [`TelemetrySnapshot`]s, oldest first.
#[derive(Debug)]
pub struct WindowedStore {
    capacity: usize,
    frames: VecDeque<Frame>,
}

impl WindowedStore {
    /// A store keeping at most `capacity` frames (at least 2, so a delta is
    /// always recoverable once two pushes have happened).
    pub fn new(capacity: usize) -> Self {
        WindowedStore {
            capacity: capacity.max(2),
            frames: VecDeque::new(),
        }
    }

    /// Append a frame, evicting the oldest once the ring is full. Frames
    /// pushed with a timestamp older than the newest frame are ignored —
    /// the time axis must be monotonic for window subtraction to mean
    /// anything.
    pub fn push(&mut self, at_ms: u64, snapshot: TelemetrySnapshot) {
        if let Some(newest) = self.frames.back() {
            if at_ms < newest.at_ms {
                return;
            }
        }
        self.frames.push_back(Frame { at_ms, snapshot });
        while self.frames.len() > self.capacity {
            self.frames.pop_front();
        }
    }

    /// Number of retained frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frame has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// The most recent frame.
    pub fn latest(&self) -> Option<&Frame> {
        self.frames.back()
    }

    /// Milliseconds between the oldest and newest retained frames.
    pub fn span_ms(&self) -> u64 {
        match (self.frames.front(), self.frames.back()) {
            (Some(oldest), Some(newest)) => newest.at_ms - oldest.at_ms,
            _ => 0,
        }
    }

    /// The newest frame at or before `at_ms`.
    fn frame_at_or_before(&self, at_ms: u64) -> Option<&Frame> {
        self.frames.iter().rev().find(|frame| frame.at_ms <= at_ms)
    }

    /// The interval view over (approximately) the trailing `window_ms`
    /// milliseconds: newest frame minus the newest frame at least
    /// `window_ms` older. While the ring holds less history than the
    /// window, the oldest frame stands in, so rates ramp up from whatever
    /// history exists. `None` until two frames with distinct timestamps are
    /// retained.
    pub fn delta(&self, window_ms: u64) -> Option<WindowDelta<'_>> {
        let newer = self.frames.back()?;
        let target = newer.at_ms.saturating_sub(window_ms);
        let older = self
            .frame_at_or_before(target)
            .or_else(|| self.frames.front())?;
        if older.at_ms >= newer.at_ms {
            return None;
        }
        Some(WindowDelta { older, newer })
    }

    /// The counter's cumulative value in every retained frame, oldest
    /// first — the raw series a dashboard diffs into a sparkline.
    pub fn counter_series(&self, name: &str) -> Vec<(u64, u64)> {
        self.frames
            .iter()
            .map(|frame| (frame.at_ms, frame.snapshot.counter(name).unwrap_or(0)))
            .collect()
    }
}

/// The difference between two frames of a [`WindowedStore`]: everything
/// recorded in the half-open interval `(older, newer]`.
#[derive(Debug, Clone, Copy)]
pub struct WindowDelta<'a> {
    /// The frame at the start of the interval.
    pub older: &'a Frame,
    /// The frame at the end of the interval.
    pub newer: &'a Frame,
}

impl WindowDelta<'_> {
    /// Interval length in milliseconds (always > 0).
    pub fn span_ms(&self) -> u64 {
        self.newer.at_ms - self.older.at_ms
    }

    /// How much the counter grew over the interval. A counter absent from a
    /// frame counts as 0, so counters registered mid-window still produce
    /// sound deltas; momentary backwards reads saturate at zero.
    pub fn counter_delta(&self, name: &str) -> u64 {
        let newer = self.newer.snapshot.counter(name).unwrap_or(0);
        let older = self.older.snapshot.counter(name).unwrap_or(0);
        newer.saturating_sub(older)
    }

    /// Sum of [`WindowDelta::counter_delta`] over several counters.
    pub fn counter_sum_delta(&self, names: &[String]) -> u64 {
        names.iter().fold(0u64, |acc, name| {
            acc.saturating_add(self.counter_delta(name))
        })
    }

    /// The counter's growth rate over the interval, per second.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        self.counter_delta(name) as f64 * 1000.0 / self.span_ms() as f64
    }

    /// The interval histogram: only values recorded inside the window.
    /// `None` when the newer frame does not carry the histogram; a
    /// histogram registered mid-window deltas against an implicit empty
    /// older snapshot.
    pub fn histogram_delta(&self, name: &str) -> Option<HistogramSnapshot> {
        let newer = self.newer.snapshot.histogram(name)?;
        match self.older.snapshot.histogram(name) {
            Some(older) => Some(newer.delta_since(older)),
            None => Some(newer.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn snap_with(counter: &str, value: u64) -> TelemetrySnapshot {
        let registry = MetricsRegistry::new();
        registry.counter(counter).add(value);
        TelemetrySnapshot::new(registry.collect(), Vec::new(), 0)
    }

    #[test]
    fn ring_is_bounded_and_monotonic() {
        let mut store = WindowedStore::new(3);
        assert!(store.is_empty());
        for t in 0..5u64 {
            store.push(t * 100, snap_with("c", t));
        }
        assert_eq!(store.len(), 3, "capacity must bound the ring");
        assert_eq!(store.latest().unwrap().at_ms, 400);
        assert_eq!(store.span_ms(), 200);
        // A frame from the past is dropped, not spliced in.
        store.push(50, snap_with("c", 99));
        assert_eq!(store.len(), 3);
        assert_eq!(store.latest().unwrap().at_ms, 400);
    }

    #[test]
    fn delta_picks_the_frame_just_outside_the_window() {
        let mut store = WindowedStore::new(16);
        for t in 0..5u64 {
            store.push(t * 100, snap_with("c", t * 10));
        }
        // Window of 250ms from t=400 reaches back to t=150; the newest frame
        // at or before that is t=100.
        let delta = store.delta(250).unwrap();
        assert_eq!(delta.older.at_ms, 100);
        assert_eq!(delta.span_ms(), 300);
        assert_eq!(delta.counter_delta("c"), 30);
        assert_eq!(delta.counter_delta("missing"), 0);
        assert!((delta.rate_per_sec("c") - 100.0).abs() < 1e-9);
        // A window longer than the retained history falls back to the
        // oldest frame.
        let all = store.delta(10_000).unwrap();
        assert_eq!(all.older.at_ms, 0);
        assert_eq!(all.counter_delta("c"), 40);
    }

    #[test]
    fn delta_needs_two_distinct_timestamps() {
        let mut store = WindowedStore::new(4);
        assert!(store.delta(100).is_none());
        store.push(10, snap_with("c", 1));
        assert!(store.delta(100).is_none(), "one frame has no interval");
        store.push(10, snap_with("c", 2));
        assert!(store.delta(100).is_none(), "zero-length interval");
        store.push(20, snap_with("c", 3));
        assert_eq!(store.delta(100).unwrap().counter_delta("c"), 2);
    }

    #[test]
    fn histogram_delta_recovers_interval_quantiles() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("lat");
        let mut store = WindowedStore::new(8);
        for v in [10u64, 20, 30] {
            hist.record(v);
        }
        store.push(0, TelemetrySnapshot::new(registry.collect(), Vec::new(), 0));
        for _ in 0..100 {
            hist.record(5_000);
        }
        store.push(
            1_000,
            TelemetrySnapshot::new(registry.collect(), Vec::new(), 0),
        );
        let delta = store.delta(1_000).unwrap();
        let interval = delta.histogram_delta("lat").unwrap();
        assert_eq!(interval.count, 100);
        let p50 = interval.quantile(0.5) as f64;
        assert!(
            (p50 - 5_000.0).abs() <= 5_000.0 * 0.02,
            "interval p50 {p50} must reflect only the regressed window"
        );
        assert!(delta.histogram_delta("missing").is_none());
    }

    #[test]
    fn counter_series_tracks_every_frame() {
        let mut store = WindowedStore::new(8);
        for t in 0..3u64 {
            store.push(t, snap_with("c", t * t));
        }
        assert_eq!(store.counter_series("c"), vec![(0, 0), (1, 1), (2, 4)]);
    }
}
