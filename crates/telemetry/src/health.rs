//! Per-route health as a hysteresis state machine over SLO verdicts.
//!
//! ```text
//!            breach ≥ degrade_after        Page breach ≥ unhealthy_after
//!  Healthy ───────────────────────► Degraded ───────────────────────► Unhealthy
//!     ▲                                │  ▲                                │
//!     └── clean ≥ recover_after ◄──────┘  └──── clean ≥ recover_after ◄────┘
//! ```
//!
//! Transitions move **one level per observation** and only after a
//! *consecutive* streak of breaching (or clean) observations, so a burn
//! rate oscillating around an SLO threshold cannot flap the state: every
//! clean tick resets the breach streak and vice versa. Escalation from
//! [`HealthState::Degraded`] to [`HealthState::Unhealthy`] additionally
//! requires [`AlertSeverity::Page`] — a slow-burn warning can degrade a
//! route but never takes it out of service by itself.

use crate::slo::AlertSeverity;

/// The serving health of one route, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
pub enum HealthState {
    /// All SLOs within budget: serve and allow reloads.
    #[default]
    Healthy = 0,
    /// An SLO is burning budget: keep serving, refuse artifact promotion.
    Degraded = 1,
    /// A paging SLO has burned persistently: shed new load early.
    Unhealthy = 2,
}

impl HealthState {
    /// Stable lowercase name, used in the JSON schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Unhealthy => "unhealthy",
        }
    }

    /// Inverse of [`HealthState::as_str`].
    pub fn parse(text: &str) -> Option<HealthState> {
        match text {
            "healthy" => Some(HealthState::Healthy),
            "degraded" => Some(HealthState::Degraded),
            "unhealthy" => Some(HealthState::Unhealthy),
            _ => None,
        }
    }

    /// The state encoded as its `repr(u8)` discriminant (for atomics).
    pub fn as_u8(&self) -> u8 {
        *self as u8
    }

    /// Inverse of [`HealthState::as_u8`]; unknown values read as
    /// [`HealthState::Unhealthy`], the conservative direction.
    pub fn from_u8(value: u8) -> HealthState {
        match value {
            0 => HealthState::Healthy,
            1 => HealthState::Degraded,
            _ => HealthState::Unhealthy,
        }
    }

    /// The next state toward [`HealthState::Healthy`].
    fn promoted(&self) -> HealthState {
        match self {
            HealthState::Unhealthy => HealthState::Degraded,
            _ => HealthState::Healthy,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Hysteresis thresholds for a [`HealthMachine`], in consecutive
/// observations (SLO engine ticks). Zero values are treated as 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive breaching ticks before Healthy drops to Degraded.
    pub degrade_after: u32,
    /// Consecutive Page-severity ticks before Degraded drops to Unhealthy.
    pub unhealthy_after: u32,
    /// Consecutive clean ticks before the state recovers one level.
    pub recover_after: u32,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_after: 2,
            unhealthy_after: 2,
            recover_after: 3,
        }
    }
}

/// A state change returned by [`HealthMachine::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// The state before the observation.
    pub from: HealthState,
    /// The state after the observation.
    pub to: HealthState,
}

impl HealthTransition {
    /// True when the transition moved away from [`HealthState::Healthy`].
    pub fn is_demotion(&self) -> bool {
        self.to > self.from
    }
}

/// The hysteresis state machine for one route.
#[derive(Debug, Clone)]
pub struct HealthMachine {
    policy: HealthPolicy,
    state: HealthState,
    breach_streak: u32,
    clean_streak: u32,
}

impl HealthMachine {
    /// A machine starting [`HealthState::Healthy`].
    pub fn new(policy: HealthPolicy) -> Self {
        HealthMachine {
            policy,
            state: HealthState::Healthy,
            breach_streak: 0,
            clean_streak: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Feed one SLO engine tick: `worst` is the most severe alert firing
    /// for this route, or `None` when every SLO is within budget. Returns
    /// the transition if the state changed.
    pub fn observe(&mut self, worst: Option<AlertSeverity>) -> Option<HealthTransition> {
        let from = self.state;
        match worst {
            Some(severity) => {
                self.clean_streak = 0;
                self.breach_streak = self.breach_streak.saturating_add(1);
                match self.state {
                    HealthState::Healthy
                        if self.breach_streak >= self.policy.degrade_after.max(1) =>
                    {
                        self.state = HealthState::Degraded;
                        self.breach_streak = 0;
                    }
                    HealthState::Degraded
                        if severity == AlertSeverity::Page
                            && self.breach_streak >= self.policy.unhealthy_after.max(1) =>
                    {
                        self.state = HealthState::Unhealthy;
                        self.breach_streak = 0;
                    }
                    _ => {}
                }
            }
            None => {
                self.breach_streak = 0;
                self.clean_streak = self.clean_streak.saturating_add(1);
                if self.state != HealthState::Healthy
                    && self.clean_streak >= self.policy.recover_after.max(1)
                {
                    self.state = self.state.promoted();
                    self.clean_streak = 0;
                }
            }
        }
        (from != self.state).then_some(HealthTransition {
            from,
            to: self.state,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(degrade: u32, unhealthy: u32, recover: u32) -> HealthPolicy {
        HealthPolicy {
            degrade_after: degrade,
            unhealthy_after: unhealthy,
            recover_after: recover,
        }
    }

    #[test]
    fn state_codec_roundtrips() {
        for state in [
            HealthState::Healthy,
            HealthState::Degraded,
            HealthState::Unhealthy,
        ] {
            assert_eq!(HealthState::parse(state.as_str()), Some(state));
            assert_eq!(HealthState::from_u8(state.as_u8()), state);
        }
        assert_eq!(HealthState::parse("odd"), None);
        assert_eq!(HealthState::from_u8(77), HealthState::Unhealthy);
    }

    #[test]
    fn sustained_page_breaches_walk_down_one_level_at_a_time() {
        let mut machine = HealthMachine::new(policy(2, 2, 3));
        assert_eq!(machine.observe(Some(AlertSeverity::Page)), None);
        assert_eq!(
            machine.observe(Some(AlertSeverity::Page)),
            Some(HealthTransition {
                from: HealthState::Healthy,
                to: HealthState::Degraded
            })
        );
        assert_eq!(machine.observe(Some(AlertSeverity::Page)), None);
        assert_eq!(
            machine.observe(Some(AlertSeverity::Page)),
            Some(HealthTransition {
                from: HealthState::Degraded,
                to: HealthState::Unhealthy
            })
        );
        // Already at the bottom: further breaches change nothing.
        assert_eq!(machine.observe(Some(AlertSeverity::Page)), None);
        assert_eq!(machine.state(), HealthState::Unhealthy);
    }

    #[test]
    fn warn_severity_degrades_but_never_sheds() {
        let mut machine = HealthMachine::new(policy(1, 1, 1));
        assert!(machine.observe(Some(AlertSeverity::Warn)).is_some());
        assert_eq!(machine.state(), HealthState::Degraded);
        for _ in 0..10 {
            assert_eq!(machine.observe(Some(AlertSeverity::Warn)), None);
        }
        assert_eq!(
            machine.state(),
            HealthState::Degraded,
            "a slow-burn warning must never take a route out of service"
        );
    }

    #[test]
    fn recovery_requires_a_clean_streak_and_walks_back_up() {
        let mut machine = HealthMachine::new(policy(1, 1, 2));
        machine.observe(Some(AlertSeverity::Page));
        machine.observe(Some(AlertSeverity::Page));
        assert_eq!(machine.state(), HealthState::Unhealthy);
        assert_eq!(machine.observe(None), None);
        assert_eq!(
            machine.observe(None),
            Some(HealthTransition {
                from: HealthState::Unhealthy,
                to: HealthState::Degraded
            })
        );
        assert_eq!(machine.observe(None), None);
        assert_eq!(
            machine.observe(None),
            Some(HealthTransition {
                from: HealthState::Degraded,
                to: HealthState::Healthy
            })
        );
    }

    #[test]
    fn boundary_flapping_never_changes_state() {
        // An SLO oscillating around its threshold alternates breach/clean
        // every tick. With any streak requirement above 1, the machine must
        // hold its state through arbitrarily long oscillation.
        let mut machine = HealthMachine::new(policy(2, 2, 2));
        for _ in 0..100 {
            assert_eq!(machine.observe(Some(AlertSeverity::Page)), None);
            assert_eq!(machine.observe(None), None);
        }
        assert_eq!(machine.state(), HealthState::Healthy);

        // Same at the Degraded boundary: push the machine to Degraded, then
        // oscillate — it must neither escalate nor recover.
        let mut machine = HealthMachine::new(policy(1, 2, 2));
        machine.observe(Some(AlertSeverity::Page));
        assert_eq!(machine.state(), HealthState::Degraded);
        for _ in 0..100 {
            assert_eq!(machine.observe(Some(AlertSeverity::Page)), None);
            assert_eq!(machine.observe(None), None);
        }
        assert_eq!(machine.state(), HealthState::Degraded);
    }

    #[test]
    fn a_breach_mid_recovery_resets_the_clean_streak() {
        let mut machine = HealthMachine::new(policy(1, 1, 3));
        machine.observe(Some(AlertSeverity::Page));
        machine.observe(Some(AlertSeverity::Page));
        assert_eq!(machine.state(), HealthState::Unhealthy);
        machine.observe(None);
        machine.observe(None);
        machine.observe(Some(AlertSeverity::Warn)); // relapse
        machine.observe(None);
        machine.observe(None);
        assert_eq!(
            machine.state(),
            HealthState::Unhealthy,
            "two clean ticks after a relapse must not count the pre-relapse ones"
        );
        machine.observe(None);
        assert_eq!(machine.state(), HealthState::Degraded);
    }
}
