//! Minimal JSON value, writer and recursive-descent parser.
//!
//! The workspace has no crates.io access, so the telemetry export surface
//! carries its own tiny JSON implementation. Integers are kept as `i128`
//! (covering the full `u64`/`i64` metric range losslessly) and only genuine
//! fractional values use `f64`, so a
//! [`TelemetrySnapshot`](crate::TelemetrySnapshot) round-trips through text
//! exactly.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any integer literal (no fraction, no exponent).
    Int(i128),
    /// A fractional or exponent-form number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serialise to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // Rust's shortest-round-trip formatting; force a marker
                    // so the value re-parses as Float, not Int.
                    let text = format!("{f}");
                    out.push_str(&text);
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn escape_into(text: &str, out: &mut String) {
    out.push('"');
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    let combined = 0x10000
                                        + ((first - 0xD800) << 10)
                                        + second.wrapping_sub(0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(first)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let Some(ch) = text.chars().next() else {
                        return Err(self.error("unterminated string"));
                    };
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid bytes in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            let value = parse(text).unwrap();
            assert_eq!(value.render(), text);
        }
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(Value::Float(2.0).render(), "2.0");
        assert_eq!(
            parse(&Value::Float(2.0).render()).unwrap(),
            Value::Float(2.0)
        );
    }

    #[test]
    fn u64_max_survives() {
        let value = Value::Int(i128::from(u64::MAX));
        let reparsed = parse(&value.render()).unwrap();
        assert_eq!(reparsed.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn strings_escape_and_roundtrip() {
        let original = "quote:\" slash:\\ newline:\n tab:\t unicode:µ control:\u{0001}";
        let rendered = Value::Str(original.to_string()).render();
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(original));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let value = Value::Object(vec![
            (
                "list".to_string(),
                Value::Array(vec![Value::Int(1), Value::Null, Value::Bool(true)]),
            ),
            ("name".to_string(), Value::Str("route:x2".to_string())),
            ("mean".to_string(), Value::Float(1234.5)),
        ]);
        let reparsed = parse(&value.render()).unwrap();
        assert_eq!(reparsed, value);
        assert_eq!(reparsed.get("name").unwrap().as_str(), Some("route:x2"));
        assert_eq!(reparsed.get("list").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn surrogate_pairs_parse() {
        // Literal UTF-8 and the escaped surrogate-pair form both decode.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("[1, 2").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
