//! Span tracing: a bounded structured-event ring journal and the [`Span`]
//! guard that feeds it.
//!
//! The journal replaces ad-hoc `eprintln!` debugging in the serving stack.
//! Each event is a fixed set of integers — a timestamp, a level, an interned
//! name code, the current request id, a value (usually a duration in
//! nanoseconds) and the parent span's code — stored in a fixed-capacity ring
//! of atomic slots. Writers take a global index with one `fetch_add`, claim
//! the slot by CAS-ing its sequence word to an odd in-flight marker, write
//! the fields, and stamp an even completion word last (`Release`), so
//! **recording never locks and never allocates**; readers accept only
//! stable even sequence words and skip torn slots. A writer that loses the
//! claim race (two writers lapped onto the same slot) abandons its record
//! instead of interleaving with the winner — `abandoned()` counts those,
//! and `dropped()` reports events overwritten by ring wrap.
//!
//! The claim step exists because the ring wraps: without it, two writers
//! whose indices differ by a full ring revolution interleave on the same
//! slot, and a reader can observe one writer's completed sequence word over
//! a mix of both writers' fields — an accepted torn event. The
//! `sesr-verify` model checker finds that interleaving in the claim-free
//! protocol (`SeqlockVariant::PlainStoreClaim`) and proves the CAS-claim
//! protocol modeled by `SeqlockVariant::CasClaim` free of it at small
//! bounds.
//!
//! Event *names* are interned up front via [`EventRing::register`], which
//! returns a small integer [`EventCode`]; the string table is behind a
//! mutex that only registration and snapshotting touch.
//!
//! [`Span`] is an RAII guard: creating one pushes its code onto a
//! per-thread, fixed-depth span stack (so nested spans know their parent),
//! and dropping it pops the stack and records an event carrying the
//! measured duration — optionally mirroring it into a
//! [`Histogram`].

use crate::histogram::Histogram;
use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Event severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained per-request stage events.
    Debug = 0,
    /// Notable state changes (promotions, publishes).
    Info = 1,
    /// Recoverable problems (rejected reloads, expired work).
    Warn = 2,
    /// Failures.
    Error = 3,
}

impl Level {
    /// Lower-case name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse the lower-case name produced by [`Level::as_str`].
    pub fn parse(text: &str) -> Option<Level> {
        match text {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_bits(bits: u64) -> Level {
        match bits & 0b11 {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// Interned event-name handle returned by [`EventRing::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventCode(u16);

/// Sentinel parent code meaning "no enclosing span".
const NO_PARENT: u16 = u16::MAX;

/// Maximum nesting depth tracked by the per-thread span stack; deeper spans
/// still record but report the stack top as their parent.
const MAX_SPAN_DEPTH: usize = 16;

#[derive(Clone, Copy)]
struct SpanStack {
    depth: usize,
    codes: [u16; MAX_SPAN_DEPTH],
}

thread_local! {
    static SPAN_STACK: Cell<SpanStack> = const {
        Cell::new(SpanStack { depth: 0, codes: [0; MAX_SPAN_DEPTH] })
    };
}

fn stack_push(code: u16) -> u16 {
    SPAN_STACK.with(|cell| {
        let mut stack = cell.get();
        let parent = if stack.depth == 0 {
            NO_PARENT
        } else {
            stack.codes[(stack.depth - 1).min(MAX_SPAN_DEPTH - 1)]
        };
        if stack.depth < MAX_SPAN_DEPTH {
            stack.codes[stack.depth] = code;
        }
        stack.depth += 1;
        cell.set(stack);
        parent
    })
}

fn stack_pop() {
    SPAN_STACK.with(|cell| {
        let mut stack = cell.get();
        stack.depth = stack.depth.saturating_sub(1);
        cell.set(stack);
    });
}

/// One seqlock-protected event slot. The sequence word encodes the slot
/// state: `0` is empty, an odd value `2·index + 1` is a claim held by the
/// writer of record `index` (fields in flight), and an even value
/// `2·(index + 1)` is the completed record `index`, stamped last with
/// `Release` so a reader that sees a stable even `seq` also sees the
/// matching fields.
struct Slot {
    seq: AtomicU64,
    micros: AtomicU64,
    /// Packed: bits 0..2 level, 2..18 code, 18..34 parent code.
    meta: AtomicU64,
    request: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            micros: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            request: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// Bounded structured-event journal.
///
/// See the [module docs](self) for the recording protocol. Capacity is
/// fixed at construction (rounded up to a power of two); the ring keeps the
/// most recent `capacity` events.
pub struct EventRing {
    epoch: Instant,
    slots: Box<[Slot]>,
    next: AtomicU64,
    abandoned: AtomicU64,
    min_level: AtomicUsize,
    names: Mutex<Vec<&'static str>>,
}

impl EventRing {
    /// A ring keeping the most recent `capacity` events (rounded up to a
    /// power of two, at least 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        EventRing {
            epoch: Instant::now(),
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            next: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            min_level: AtomicUsize::new(Level::Debug as usize),
            names: Mutex::new(Vec::new()),
        }
    }

    /// Intern `name` and return its code. Idempotent; call at setup time,
    /// not on the hot path (takes the name-table lock).
    pub fn register(&self, name: &'static str) -> EventCode {
        let mut names = self.names.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(index) = names.iter().position(|&n| n == name) {
            return EventCode(index as u16);
        }
        assert!(names.len() < NO_PARENT as usize, "event name table full");
        names.push(name);
        EventCode((names.len() - 1) as u16)
    }

    /// Suppress events below `level`. Defaults to [`Level::Debug`]
    /// (everything recorded).
    pub fn set_min_level(&self, level: Level) {
        self.min_level.store(level as usize, Ordering::Relaxed);
    }

    /// Number of events recorded over the ring's lifetime.
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Number of events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Number of events abandoned because another writer held the slot's
    /// claim (only possible once the ring has lapped under write pressure).
    pub fn abandoned(&self) -> u64 {
        self.abandoned.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free and allocation-free; the parent span code
    /// is taken from the calling thread's span stack.
    #[inline]
    pub fn record(&self, level: Level, code: EventCode, request: u64, value: u64) {
        let parent = SPAN_STACK.with(|cell| {
            let stack = cell.get();
            if stack.depth == 0 {
                NO_PARENT
            } else {
                stack.codes[(stack.depth - 1).min(MAX_SPAN_DEPTH - 1)]
            }
        });
        self.record_with_parent(level, code, parent, request, value);
    }

    #[inline]
    fn record_with_parent(
        &self,
        level: Level,
        code: EventCode,
        parent: u16,
        request: u64,
        value: u64,
    ) {
        if (level as usize) < self.min_level.load(Ordering::Relaxed) {
            return;
        }
        let micros = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let index = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index as usize) & (self.slots.len() - 1)];
        let meta = level as u64 | (u64::from(code.0) << 2) | (u64::from(parent) << 18);
        // Claim the slot: CAS the sequence word from a stable (even) value
        // to this record's odd in-flight marker. Abandoning on any
        // interference — another writer's claim in flight (odd) or a
        // same-or-newer record already stamped — is what keeps a reader
        // from accepting a mix of two writers' fields.
        let claim = 2 * index + 1;
        let current = slot.seq.load(Ordering::Acquire);
        if current % 2 == 1
            || current >= claim
            || slot
                .seq
                .compare_exchange(current, claim, Ordering::AcqRel, Ordering::Relaxed)
                .is_err()
        {
            self.abandoned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        slot.micros.store(micros, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.request.store(request, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(2 * (index + 1), Ordering::Release);
    }

    /// Start a [`Span`] measuring from now until the guard drops.
    pub fn span(&self, level: Level, code: EventCode, request: u64) -> Span<'_> {
        Span::enter(self, level, code, request, None)
    }

    /// Copy out the currently readable events, oldest first. Slots being
    /// concurrently rewritten are skipped rather than read torn.
    pub fn events(&self) -> Vec<EventRecord> {
        let names: Vec<&'static str> = self
            .names
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let resolve = |code: u16| -> String {
            names
                .get(code as usize)
                .map(|&n| n.to_string())
                .unwrap_or_else(|| format!("code#{code}"))
        };
        let mut records = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq_before = slot.seq.load(Ordering::Acquire);
            if seq_before == 0 || seq_before % 2 == 1 {
                continue; // empty, or a writer's claim is in flight
            }
            let micros = slot.micros.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let request = slot.request.load(Ordering::Relaxed);
            let value = slot.value.load(Ordering::Relaxed);
            // The fence orders the field loads above before the validating
            // re-read below (the seqlock reader recipe): without it the
            // re-read could be satisfied early and a torn snapshot accepted.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Acquire) != seq_before {
                continue; // torn: a writer raced us
            }
            let code = ((meta >> 2) & 0xFFFF) as u16;
            let parent = ((meta >> 18) & 0xFFFF) as u16;
            records.push(EventRecord {
                seq: seq_before / 2 - 1,
                micros,
                level: Level::from_bits(meta),
                name: resolve(code),
                request,
                value,
                parent: (parent != NO_PARENT).then(|| resolve(parent)),
            });
        }
        records.sort_by_key(|r| r.seq);
        records
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .field("abandoned", &self.abandoned())
            .finish()
    }
}

/// One journal event, resolved to owned strings for export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Global 0-based sequence number (total order of recording).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub micros: u64,
    /// Severity.
    pub level: Level,
    /// Interned event name.
    pub name: String,
    /// Request id the event belongs to (0 when not request-scoped).
    pub request: u64,
    /// Payload — a duration in nanoseconds for span/stage events.
    pub value: u64,
    /// Name of the enclosing span at record time, if any.
    pub parent: Option<String>,
}

/// RAII span guard: measures from construction to drop, then records a
/// journal event (and optionally a histogram sample) with the elapsed
/// nanoseconds.
///
/// Spans are thread-affine (`!Send`): the parent relationship comes from a
/// per-thread stack, so a span must be dropped on the thread that created
/// it. For durations measured across threads (queue wait, batch dwell), use
/// [`Probe::observe`] instead.
pub struct Span<'a> {
    ring: &'a EventRing,
    level: Level,
    code: EventCode,
    parent: u16,
    request: u64,
    start: Instant,
    histogram: Option<&'a Histogram>,
    _not_send: PhantomData<*const ()>,
}

impl<'a> Span<'a> {
    fn enter(
        ring: &'a EventRing,
        level: Level,
        code: EventCode,
        request: u64,
        histogram: Option<&'a Histogram>,
    ) -> Span<'a> {
        let parent = stack_push(code.0);
        Span {
            ring,
            level,
            code,
            parent,
            request,
            start: Instant::now(),
            histogram,
            _not_send: PhantomData,
        }
    }

    /// Elapsed time since the span started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        stack_pop();
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(histogram) = self.histogram {
            histogram.record(nanos);
        }
        self.ring
            .record_with_parent(self.level, self.code, self.parent, self.request, nanos);
    }
}

/// A pre-registered instrumentation point: an event code plus an optional
/// histogram, bound to a journal.
///
/// Probes are built once at setup time and cloned into workers; recording
/// through them is lock- and allocation-free.
#[derive(Clone)]
pub struct Probe {
    ring: std::sync::Arc<EventRing>,
    code: EventCode,
    level: Level,
    histogram: Option<std::sync::Arc<Histogram>>,
}

impl Probe {
    /// A probe recording `code` events at `level` into `ring`.
    pub fn new(ring: std::sync::Arc<EventRing>, code: EventCode, level: Level) -> Self {
        Probe {
            ring,
            code,
            level,
            histogram: None,
        }
    }

    /// Also mirror every recorded duration into `histogram`.
    pub fn with_histogram(mut self, histogram: std::sync::Arc<Histogram>) -> Self {
        self.histogram = Some(histogram);
        self
    }

    /// The histogram this probe mirrors into, if any.
    pub fn histogram(&self) -> Option<&std::sync::Arc<Histogram>> {
        self.histogram.as_ref()
    }

    /// Start a span for `request`; records on drop.
    pub fn span(&self, request: u64) -> Span<'_> {
        Span::enter(
            &self.ring,
            self.level,
            self.code,
            request,
            self.histogram.as_deref(),
        )
    }

    /// Record an already-measured duration (for cross-thread intervals that
    /// cannot use a [`Span`] guard).
    #[inline]
    pub fn observe(&self, request: u64, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        if let Some(histogram) = &self.histogram {
            histogram.record(nanos);
        }
        self.ring.record(self.level, self.code, request, nanos);
    }
}

impl std::fmt::Debug for Probe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Probe")
            .field("code", &self.code)
            .field("level", &self.level)
            .field("histogram", &self.histogram.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_record_in_order_with_levels() {
        let ring = EventRing::new(16);
        let a = ring.register("alpha");
        let b = ring.register("beta");
        assert_eq!(ring.register("alpha"), a, "interning is idempotent");
        ring.record(Level::Info, a, 1, 10);
        ring.record(Level::Warn, b, 2, 20);
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "alpha");
        assert_eq!(events[0].level, Level::Info);
        assert_eq!(events[0].request, 1);
        assert_eq!(events[0].value, 10);
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].name, "beta");
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].micros <= events[1].micros);
    }

    #[test]
    fn ring_wraps_and_reports_drops() {
        let ring = EventRing::new(8);
        let code = ring.register("tick");
        for i in 0..20 {
            ring.record(Level::Debug, code, i, i);
        }
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.dropped(), 12);
        assert_eq!(ring.abandoned(), 0, "no claim races single-threaded");
        let events = ring.events();
        assert_eq!(events.len(), 8);
        // Only the most recent 8 survive.
        assert_eq!(events.first().unwrap().seq, 12);
        assert_eq!(events.last().unwrap().seq, 19);
    }

    #[test]
    fn name_table_survives_a_poisoned_lock() {
        let ring = Arc::new(EventRing::new(16));
        let before = ring.register("before");
        let poisoner = Arc::clone(&ring);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.names.lock().unwrap();
            panic!("poison the name table on purpose");
        });
        assert!(handle.join().is_err());
        assert!(ring.names.is_poisoned());
        // Interning and reading recover the poisoned lock instead of
        // propagating: the name table only ever grows, so a panicking
        // registrant cannot leave it inconsistent.
        let after = ring.register("after");
        assert_ne!(before, after);
        assert_eq!(ring.register("before"), before, "old entries intact");
        ring.record(Level::Info, after, 1, 2);
        let events = ring.events();
        assert_eq!(events.last().unwrap().name, "after");
    }

    #[test]
    fn min_level_filters() {
        let ring = EventRing::new(8);
        let code = ring.register("noise");
        ring.set_min_level(Level::Warn);
        ring.record(Level::Debug, code, 0, 0);
        ring.record(Level::Info, code, 0, 0);
        ring.record(Level::Error, code, 0, 0);
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].level, Level::Error);
    }

    #[test]
    fn nested_spans_report_parents() {
        let ring = EventRing::new(16);
        let outer = ring.register("outer");
        let inner = ring.register("inner");
        {
            let _outer = ring.span(Level::Debug, outer, 7);
            let _inner = ring.span(Level::Debug, inner, 7);
        }
        let events = ring.events();
        // Inner drops (and records) first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].parent.as_deref(), Some("outer"));
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].parent, None);
        assert_eq!(events[0].request, 7);
    }

    #[test]
    fn probe_mirrors_into_histogram() {
        let ring = Arc::new(EventRing::new(16));
        let code = ring.register("stage");
        let histogram = Arc::new(Histogram::new());
        let probe = Probe::new(Arc::clone(&ring), code, Level::Debug)
            .with_histogram(Arc::clone(&histogram));
        probe.observe(3, Duration::from_nanos(500));
        drop(probe.span(4));
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(ring.events().len(), 2);
        assert_eq!(ring.events()[0].value, 500);
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let ring = Arc::new(EventRing::new(64));
        let code = ring.register("burst");
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        ring.record(Level::Debug, code, t, i);
                    }
                })
            })
            .collect();
        // Read concurrently; torn slots must be skipped, not corrupted.
        for _ in 0..50 {
            for event in ring.events() {
                assert_eq!(event.name, "burst");
                assert!(event.request < 4);
                assert!(event.value < 2_000);
            }
        }
        for writer in writers {
            writer.join().unwrap();
        }
        assert_eq!(ring.recorded(), 8_000);
        assert_eq!(ring.events().len(), 64);
    }
}
