//! Point-in-time export of a [`Telemetry`](crate::Telemetry) hub: a stable
//! JSON schema plus a deterministic text rendering.

use crate::health::HealthState;
use crate::histogram::HistogramSnapshot;
use crate::journal::{EventRecord, Level};
use crate::json::{self, JsonError, Value};
use crate::metrics::MetricsDump;
use crate::slo::{Alert, AlertSeverity};
use std::fmt::Write as _;

/// Schema identifier stamped into every JSON export; bump on breaking
/// changes to the layout.
pub const SCHEMA: &str = "sesr-telemetry/v2";

/// The previous schema, still accepted by [`TelemetrySnapshot::from_json`]:
/// a v1 document is a v2 document with no `alerts` or `health` keys.
pub const SCHEMA_V1: &str = "sesr-telemetry/v1";

/// Everything a telemetry hub knows at one instant.
///
/// The JSON layout (see [`TelemetrySnapshot::to_json`]) is a stable,
/// machine-readable schema: top-level `schema`, `counters`, `gauges`,
/// `histograms`, `events`, `alerts`, `health` and `dropped_events` keys,
/// with metric maps keyed by name in sorted order. `from_json` inverts
/// `to_json` exactly, which the schema-validation test in `tests/` asserts;
/// it also still reads [`SCHEMA_V1`] documents, which simply lack the
/// status keys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Journal events, oldest first.
    pub events: Vec<EventRecord>,
    /// Alerts firing when the snapshot was taken, in spec order.
    pub alerts: Vec<Alert>,
    /// Per-route health, sorted by route.
    pub health: Vec<(String, HealthState)>,
    /// How many journal events were overwritten before this snapshot.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// Assemble a snapshot from a metrics dump plus journal state, with no
    /// interpreted status (no alerts, no tracked routes).
    pub fn new(metrics: MetricsDump, events: Vec<EventRecord>, dropped_events: u64) -> Self {
        TelemetrySnapshot {
            counters: metrics.counters,
            gauges: metrics.gauges,
            histograms: metrics.histograms,
            events,
            alerts: Vec::new(),
            health: Vec::new(),
            dropped_events,
        }
    }

    /// The same snapshot carrying interpreted status from an SLO runtime.
    pub fn with_status(mut self, alerts: Vec<Alert>, health: Vec<(String, HealthState)>) -> Self {
        self.alerts = alerts;
        self.health = health;
        self
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialise to the stable JSON schema (compact, single line).
    ///
    /// Histogram entries carry the raw sparse buckets (enough to recompute
    /// any quantile) plus derived `p50`/`p95`/`p99`/`mean` fields for
    /// convenience; [`TelemetrySnapshot::from_json`] recomputes the derived
    /// fields from the buckets, so they are informational only.
    pub fn to_json(&self) -> String {
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(name, v)| (name.clone(), Value::Int(i128::from(*v))))
                .collect(),
        );
        let gauges = Value::Object(
            self.gauges
                .iter()
                .map(|(name, v)| (name.clone(), Value::Int(i128::from(*v))))
                .collect(),
        );
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(name, h)| {
                    let buckets = Value::Array(
                        h.buckets
                            .iter()
                            .map(|&(lower, n)| {
                                Value::Array(vec![
                                    Value::Int(i128::from(lower)),
                                    Value::Int(i128::from(n)),
                                ])
                            })
                            .collect(),
                    );
                    let fields = vec![
                        ("count".to_string(), Value::Int(i128::from(h.count))),
                        ("sum".to_string(), Value::Int(i128::from(h.sum))),
                        ("min".to_string(), Value::Int(i128::from(h.min))),
                        ("max".to_string(), Value::Int(i128::from(h.max))),
                        ("mean".to_string(), Value::Float(h.mean())),
                        ("p50".to_string(), Value::Int(i128::from(h.quantile(0.50)))),
                        ("p95".to_string(), Value::Int(i128::from(h.quantile(0.95)))),
                        ("p99".to_string(), Value::Int(i128::from(h.quantile(0.99)))),
                        ("buckets".to_string(), buckets),
                    ];
                    (name.clone(), Value::Object(fields))
                })
                .collect(),
        );
        let events = Value::Array(
            self.events
                .iter()
                .map(|event| {
                    Value::Object(vec![
                        ("seq".to_string(), Value::Int(i128::from(event.seq))),
                        ("us".to_string(), Value::Int(i128::from(event.micros))),
                        (
                            "level".to_string(),
                            Value::Str(event.level.as_str().to_string()),
                        ),
                        ("name".to_string(), Value::Str(event.name.clone())),
                        ("request".to_string(), Value::Int(i128::from(event.request))),
                        ("value".to_string(), Value::Int(i128::from(event.value))),
                        (
                            "parent".to_string(),
                            match &event.parent {
                                Some(name) => Value::Str(name.clone()),
                                None => Value::Null,
                            },
                        ),
                    ])
                })
                .collect(),
        );
        let alerts = Value::Array(
            self.alerts
                .iter()
                .map(|alert| {
                    Value::Object(vec![
                        ("slo".to_string(), Value::Str(alert.slo.clone())),
                        ("route".to_string(), Value::Str(alert.route.clone())),
                        (
                            "severity".to_string(),
                            Value::Str(alert.severity.as_str().to_string()),
                        ),
                        (
                            "burn_milli".to_string(),
                            Value::Int(i128::from(alert.burn_milli)),
                        ),
                        (
                            "long_window_ms".to_string(),
                            Value::Int(i128::from(alert.long_window_ms)),
                        ),
                        (
                            "short_window_ms".to_string(),
                            Value::Int(i128::from(alert.short_window_ms)),
                        ),
                        (
                            "since_ms".to_string(),
                            Value::Int(i128::from(alert.since_ms)),
                        ),
                    ])
                })
                .collect(),
        );
        let health = Value::Object(
            self.health
                .iter()
                .map(|(route, state)| (route.clone(), Value::Str(state.as_str().to_string())))
                .collect(),
        );
        Value::Object(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
            ("events".to_string(), events),
            ("alerts".to_string(), alerts),
            ("health".to_string(), health),
            (
                "dropped_events".to_string(),
                Value::Int(i128::from(self.dropped_events)),
            ),
        ])
        .render()
    }

    /// Parse a snapshot previously produced by [`TelemetrySnapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = json::parse(text)?;
        let fail = |message: &str| JsonError {
            message: message.to_string(),
            offset: 0,
        };
        let schema = root
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| fail("missing schema"))?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(fail(&format!("unsupported schema '{schema}'")));
        }
        let counters = root
            .get("counters")
            .and_then(Value::as_object)
            .ok_or_else(|| fail("missing counters"))?
            .iter()
            .map(|(name, v)| {
                v.as_u64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| fail(&format!("counter '{name}' is not a u64")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = root
            .get("gauges")
            .and_then(Value::as_object)
            .ok_or_else(|| fail("missing gauges"))?
            .iter()
            .map(|(name, v)| {
                v.as_i64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| fail(&format!("gauge '{name}' is not an i64")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = root
            .get("histograms")
            .and_then(Value::as_object)
            .ok_or_else(|| fail("missing histograms"))?
            .iter()
            .map(|(name, h)| {
                let field = |key: &str| {
                    h.get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail(&format!("histogram '{name}' missing u64 '{key}'")))
                };
                let buckets = h
                    .get("buckets")
                    .and_then(Value::as_array)
                    .ok_or_else(|| fail(&format!("histogram '{name}' missing buckets")))?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_array().unwrap_or(&[]);
                        match (
                            pair.first().and_then(Value::as_u64),
                            pair.get(1).and_then(Value::as_u64),
                        ) {
                            (Some(lower), Some(n)) => Ok((lower, n)),
                            _ => Err(fail(&format!("histogram '{name}' has a bad bucket"))),
                        }
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((
                    name.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                ))
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let events = root
            .get("events")
            .and_then(Value::as_array)
            .ok_or_else(|| fail("missing events"))?
            .iter()
            .map(|event| {
                let field = |key: &str| {
                    event
                        .get(key)
                        .and_then(Value::as_u64)
                        .ok_or_else(|| fail(&format!("event missing u64 '{key}'")))
                };
                let level = event
                    .get("level")
                    .and_then(Value::as_str)
                    .and_then(Level::parse)
                    .ok_or_else(|| fail("event missing level"))?;
                let name = event
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fail("event missing name"))?
                    .to_string();
                let parent = match event.get("parent") {
                    Some(Value::Str(parent)) => Some(parent.clone()),
                    _ => None,
                };
                Ok(EventRecord {
                    seq: field("seq")?,
                    micros: field("us")?,
                    level,
                    name,
                    request: field("request")?,
                    value: field("value")?,
                    parent,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        // Status keys are v2-only; a v1 document reads as having none.
        let alerts = match root.get("alerts") {
            Some(node) => node
                .as_array()
                .ok_or_else(|| fail("alerts is not an array"))?
                .iter()
                .map(|alert| {
                    let field = |key: &str| {
                        alert
                            .get(key)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| fail(&format!("alert missing u64 '{key}'")))
                    };
                    let text = |key: &str| {
                        alert
                            .get(key)
                            .and_then(Value::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| fail(&format!("alert missing string '{key}'")))
                    };
                    let severity = alert
                        .get("severity")
                        .and_then(Value::as_str)
                        .and_then(AlertSeverity::parse)
                        .ok_or_else(|| fail("alert missing severity"))?;
                    Ok(Alert {
                        slo: text("slo")?,
                        route: text("route")?,
                        severity,
                        burn_milli: field("burn_milli")?,
                        long_window_ms: field("long_window_ms")?,
                        short_window_ms: field("short_window_ms")?,
                        since_ms: field("since_ms")?,
                    })
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
            None => Vec::new(),
        };
        let health = match root.get("health") {
            Some(node) => node
                .as_object()
                .ok_or_else(|| fail("health is not an object"))?
                .iter()
                .map(|(route, state)| {
                    state
                        .as_str()
                        .and_then(HealthState::parse)
                        .map(|state| (route.clone(), state))
                        .ok_or_else(|| fail(&format!("route '{route}' has a bad health state")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let dropped_events = root
            .get("dropped_events")
            .and_then(Value::as_u64)
            .ok_or_else(|| fail("missing dropped_events"))?;
        Ok(TelemetrySnapshot {
            counters,
            gauges,
            histograms,
            events,
            alerts,
            health,
            dropped_events,
        })
    }

    /// Deterministic human-readable rendering: metrics sorted by name, then
    /// the journal in sequence order. Timestamps inside histogram/event
    /// payloads vary run to run, but the *layout* (sections, ordering,
    /// columns) is fixed, so dumps diff cleanly.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# telemetry snapshot ({SCHEMA})");
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n[counters]");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name} = {value}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\n[gauges]");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name} = {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\n[histograms]");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name}: count={} mean={:.1} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                    h.max,
                );
            }
        }
        if !self.health.is_empty() {
            let _ = writeln!(out, "\n[health]");
            for (route, state) in &self.health {
                let _ = writeln!(out, "{route} = {state}");
            }
        }
        if !self.alerts.is_empty() {
            let _ = writeln!(out, "\n[alerts]");
            for alert in &self.alerts {
                let _ = writeln!(out, "{alert}");
            }
        }
        let _ = writeln!(
            out,
            "\n[journal] {} events ({} dropped)",
            self.events.len(),
            self.dropped_events
        );
        for event in &self.events {
            let parent = event.parent.as_deref().unwrap_or("-");
            let _ = writeln!(
                out,
                "#{:<6} +{:>10}us {:<5} {:<28} parent={:<24} request={:<6} value={}",
                event.seq,
                event.micros,
                event.level.as_str(),
                event.name,
                parent,
                event.request,
                event.value,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut dump = MetricsDump::default();
        dump.counters.push(("gateway.completed".to_string(), 42));
        dump.gauges.push(("arena.in_use_bytes".to_string(), -3));
        let mut snap = HistogramSnapshot {
            count: 3,
            sum: 300,
            min: 50,
            max: 150,
            buckets: vec![(50, 1), (100, 1), (148, 1)],
        };
        snap.buckets.sort_unstable();
        dump.histograms.push(("lat_ns".to_string(), snap));
        let events = vec![EventRecord {
            seq: 0,
            micros: 17,
            level: Level::Info,
            name: "stage.classify".to_string(),
            request: 9,
            value: 1234,
            parent: Some("worker.batch".to_string()),
        }];
        TelemetrySnapshot::new(dump, events, 5).with_status(
            vec![Alert {
                slo: "route.a/latency".to_string(),
                route: "a".to_string(),
                severity: AlertSeverity::Page,
                burn_milli: 14_500,
                long_window_ms: 3_600_000,
                short_window_ms: 300_000,
                since_ms: 120_000,
            }],
            vec![
                ("a".to_string(), HealthState::Unhealthy),
                ("b".to_string(), HealthState::Healthy),
            ],
        )
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let snapshot = sample();
        let json = snapshot.to_json();
        let reparsed = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(reparsed, snapshot);
        // And a second generation is byte-identical.
        assert_eq!(reparsed.to_json(), json);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let json = sample().to_json().replace(SCHEMA, "sesr-telemetry/v0");
        let err = TelemetrySnapshot::from_json(&json).unwrap_err();
        assert!(err.message.contains("unsupported schema"));
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(TelemetrySnapshot::from_json("not json").is_err());
    }

    #[test]
    fn v1_documents_still_parse_without_status_keys() {
        // A v2 export with the status keys stripped and the schema rolled
        // back is exactly what PR 6's exporter wrote.
        let mut snapshot = sample();
        snapshot.alerts.clear();
        snapshot.health.clear();
        let v1 = snapshot
            .to_json()
            .replace(SCHEMA, SCHEMA_V1)
            .replace("\"alerts\":[],", "")
            .replace("\"health\":{},", "");
        assert!(!v1.contains("alerts"), "fixture must be a true v1 doc");
        let reparsed = TelemetrySnapshot::from_json(&v1).unwrap();
        assert_eq!(reparsed, snapshot);
    }

    #[test]
    fn lookups_find_metrics() {
        let snapshot = sample();
        assert_eq!(snapshot.counter("gateway.completed"), Some(42));
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.gauge("arena.in_use_bytes"), Some(-3));
        assert_eq!(snapshot.histogram("lat_ns").unwrap().count, 3);
    }

    #[test]
    fn text_rendering_is_deterministic_and_sectioned() {
        let snapshot = sample();
        let text = snapshot.render_text();
        assert_eq!(text, snapshot.render_text());
        for needle in [
            "[counters]",
            "[gauges]",
            "[histograms]",
            "[health]",
            "a = unhealthy",
            "[alerts]",
            "[page] route.a/latency burn 14.5x",
            "[journal] 1 events (5 dropped)",
            "gateway.completed = 42",
            "stage.classify",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
