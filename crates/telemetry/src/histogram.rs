//! Log-bucketed latency histogram with lock-striped shards.
//!
//! The bucket layout is HDR-style: values below `LINEAR_LIMIT` (64) get one
//! exact bucket each, and every power-of-two octave above that is divided
//! into `2^SUB_BITS = 64` equal-width sub-buckets. A bucket therefore spans
//! at most `value / 64` of its range, so quoting the bucket **midpoint**
//! bounds the relative error by `1/128 < 1%` — comfortably inside the ~2%
//! target — while covering the full `u64` range (zero through
//! `u64::MAX` nanoseconds, i.e. centuries) with a fixed 3776-slot table.
//!
//! Recording is a handful of relaxed atomic adds on one of a small number of
//! shards (chosen per thread), so the hot path takes no lock, performs no
//! heap allocation, and never needs the per-snapshot sort the old
//! sliding-window estimator paid. Snapshots merge the shards into an owned
//! [`HistogramSnapshot`], from which quantiles are an O(buckets) walk.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Number of sub-bucket bits per octave: each octave above the linear range
/// is split into `2^SUB_BITS` equal-width buckets.
const SUB_BITS: u32 = 6;

/// Values below this threshold are counted exactly (one bucket per value).
const LINEAR_LIMIT: u64 = 1 << SUB_BITS; // 64

/// Sub-buckets per octave.
const SUB_BUCKETS: usize = 1 << SUB_BITS; // 64

/// Octaves above the linear range: most-significant-bit positions
/// `SUB_BITS..=63`.
const OCTAVES: usize = 64 - SUB_BITS as usize; // 58

/// Total bucket count: 64 exact buckets + 58 octaves × 64 sub-buckets.
pub const BUCKET_COUNT: usize = LINEAR_LIMIT as usize + OCTAVES * SUB_BUCKETS; // 3776

/// Default number of lock-striped shards per histogram.
const DEFAULT_SHARDS: usize = 4;

/// Map a value to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros(); // >= SUB_BITS
        let octave = (msb - SUB_BITS) as usize;
        // Top SUB_BITS bits below the MSB select the sub-bucket.
        let sub = ((value >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        LINEAR_LIMIT as usize + octave * SUB_BUCKETS + sub
    }
}

/// Smallest value that maps to bucket `index`.
#[inline]
fn bucket_lower(index: usize) -> u64 {
    if index < LINEAR_LIMIT as usize {
        index as u64
    } else {
        let rest = index - LINEAR_LIMIT as usize;
        let octave = (rest / SUB_BUCKETS) as u32;
        let sub = (rest % SUB_BUCKETS) as u64;
        let msb = octave + SUB_BITS;
        (1u64 << msb) + (sub << (msb - SUB_BITS))
    }
}

/// Width of the bucket whose smallest value is `lower`.
#[inline]
fn width_of_lower(lower: u64) -> u64 {
    if lower < LINEAR_LIMIT {
        1
    } else {
        let msb = 63 - lower.leading_zeros();
        1u64 << (msb - SUB_BITS)
    }
}

/// Representative (midpoint) value reported for the bucket starting at
/// `lower`: exact for linear buckets, `lower + width/2` above them.
#[inline]
fn representative_of_lower(lower: u64) -> u64 {
    if lower < LINEAR_LIMIT {
        lower
    } else {
        lower.saturating_add(width_of_lower(lower) / 2)
    }
}

/// One lock stripe: a full bucket table plus summary counters, all updated
/// with relaxed atomic operations.
struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect();
        Shard {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Pick a stable per-thread shard hint so concurrent recorders spread over
/// the stripes instead of contending on one cache line.
fn shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    HINT.with(|cell| {
        let hint = cell.get();
        if hint != usize::MAX {
            hint
        } else {
            let fresh = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(fresh);
            fresh
        }
    })
}

/// Concurrent log-bucketed histogram.
///
/// `record` is wait-free: a thread-local hint selects one of the shards and
/// the value lands as a few relaxed atomic adds. [`Histogram::snapshot`]
/// merges the shards. Values are dimensionless `u64`s; the serving stack
/// records durations in nanoseconds via [`Histogram::record_duration`].
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Histogram {
    /// A histogram with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A histogram striped over `shards` stripes (rounded up to a power of
    /// two, clamped to `1..=64`). More stripes trade memory for less
    /// contention under many concurrent recorders.
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.clamp(1, 64).next_power_of_two();
        Histogram {
            shards: (0..shards).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one value. Wait-free; no lock, no allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[shard_hint() & (self.shards.len() - 1)];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merge all shards into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = vec![0u64; BUCKET_COUNT];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            for (slot, bucket) in merged.iter_mut().zip(shard.buckets.iter()) {
                *slot += bucket.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
            min = min.min(shard.min.load(Ordering::Relaxed));
            max = max.max(shard.max.load(Ordering::Relaxed));
        }
        let buckets = merged
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), n))
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min: if count == 0 { 0 } else { min },
            max,
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("shards", &self.shards.len())
            .field("count", &snap.count)
            .field("p50", &snap.quantile(0.50))
            .field("max", &snap.max)
            .finish()
    }
}

/// Point-in-time merged view of a [`Histogram`].
///
/// `buckets` holds `(bucket_lower_bound, count)` pairs for every non-empty
/// bucket, in increasing value order — enough to reconstruct quantiles after
/// a JSON round-trip without shipping the full 3776-slot table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// `(lower_bound, count)` for each non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`) using the same
    /// `rank = ceil(q · count)` convention as the original sliding-window
    /// estimator. Returns the midpoint of the bucket holding that rank, so
    /// the result is within ~1% of the exact order statistic (exact below
    /// 64). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lower, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return representative_of_lower(lower).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Exact mean of all recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile as a [`Duration`], treating recorded values as nanoseconds.
    pub fn quantile_duration(&self, q: f64) -> Duration {
        Duration::from_nanos(self.quantile(q))
    }

    /// Mean as a [`Duration`], treating recorded values as nanoseconds.
    pub fn mean_duration(&self) -> Duration {
        Duration::from_nanos(self.mean() as u64)
    }

    /// The histogram of everything recorded *after* `older` was taken, given
    /// that `self` is a later snapshot of the same histogram.
    ///
    /// Because buckets are cumulative counts, the interval view is exact:
    /// each bucket's delta count is the number of values recorded in the
    /// interval. The interval `min`/`max` are only recoverable to bucket
    /// resolution, so they are quoted as the first delta bucket's lower
    /// bound and the last delta bucket's upper bound — which keeps
    /// [`HistogramSnapshot::quantile`]'s clamping sound.
    ///
    /// Snapshots are taken with relaxed atomics, so under concurrent
    /// recording a bucket can momentarily read *lower* in the newer
    /// snapshot; such deltas saturate at zero rather than wrapping.
    pub fn delta_since(&self, older: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut old_iter = older.buckets.iter().peekable();
        for &(lower, n) in &self.buckets {
            let mut prev = 0;
            while let Some(&&(old_lower, old_n)) = old_iter.peek() {
                if old_lower < lower {
                    old_iter.next();
                } else {
                    if old_lower == lower {
                        prev = old_n;
                        old_iter.next();
                    }
                    break;
                }
            }
            let delta = n.saturating_sub(prev);
            if delta > 0 {
                buckets.push((lower, delta));
            }
        }
        let min = buckets.first().map_or(0, |&(lower, _)| lower);
        let max = buckets.last().map_or(0, |&(lower, _)| {
            lower.saturating_add(width_of_lower(lower) - 1)
        });
        HistogramSnapshot {
            count: self.count.saturating_sub(older.count),
            sum: self.sum.wrapping_sub(older.sum),
            min,
            max,
            buckets,
        }
    }

    /// Fraction of recorded values above `threshold`, in thousandths
    /// (0..=1000). Counted at bucket resolution: only buckets that lie
    /// entirely above the threshold contribute, so the estimate is
    /// conservative by at most one bucket width (~1.6% of the threshold).
    /// Returns 0 for an empty histogram.
    pub fn fraction_over_milli(&self, threshold: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let over: u128 = self
            .buckets
            .iter()
            .filter(|&&(lower, _)| lower > threshold)
            .map(|&(_, n)| u128::from(n))
            .sum();
        u64::try_from(over * 1000 / u128::from(self.count)).unwrap_or(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_roundtrips_lower_bounds() {
        for index in 0..BUCKET_COUNT {
            let lower = bucket_lower(index);
            assert_eq!(
                bucket_index(lower),
                index,
                "lower bound {lower} of bucket {index} must map back"
            );
            // The last value of the bucket also lands in it.
            let last = lower + (width_of_lower(lower) - 1);
            assert_eq!(bucket_index(last), index, "last value {last} of {index}");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..LINEAR_LIMIT {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, LINEAR_LIMIT);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, LINEAR_LIMIT - 1);
        for (i, &(lower, n)) in snap.buckets.iter().enumerate() {
            assert_eq!((lower, n), (i as u64, 1));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        let mut value = 1u64;
        // Geometric sweep across many octaves.
        while value < u64::MAX / 3 {
            h.record(value);
            value = value * 3 / 2 + 1;
        }
        for &(lower, _) in &h.snapshot().buckets {
            let rep = representative_of_lower(lower) as f64;
            let width = width_of_lower(lower) as f64;
            // Any true value in the bucket differs from the midpoint by at
            // most width/2 <= lower/64/2, i.e. under 1%.
            assert!(
                width / 2.0 <= (lower as f64 / 64.0).max(0.5) + 0.5,
                "bucket at {lower} too wide: {width}"
            );
            assert!(rep >= lower as f64 && rep < lower as f64 + width.max(1.0));
        }
    }

    #[test]
    fn concurrent_records_sum_exactly() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t as u64 * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS as u64 * PER_THREAD);
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, snap.count, "bucket counts must sum to count");
        let expected_sum: u64 = (0..THREADS as u64)
            .flat_map(|t| (0..PER_THREAD).map(move |i| t * 1_000 + i % 997))
            .sum();
        assert_eq!(snap.sum, expected_sum);
    }

    #[test]
    fn quantiles_track_exact_order_statistics() {
        let h = Histogram::new();
        let mut values: Vec<u64> = (0..5_000u64).map(|i| (i * 7919) % 1_000_000).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = snap.quantile(q);
            let tolerance = (exact as f64 * 0.02).max(1.0);
            assert!(
                (est as f64 - exact as f64).abs() <= tolerance,
                "q={q}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn delta_since_recovers_interval_counts_exactly() {
        let h = Histogram::new();
        for v in [5u64, 5, 900, 40_000] {
            h.record(v);
        }
        let older = h.snapshot();
        for v in [5u64, 7, 2_000_000] {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&older);
        assert_eq!(delta.count, 3);
        assert_eq!(delta.sum, 5 + 7 + 2_000_000);
        let total: u64 = delta.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 3, "delta buckets must hold exactly the new values");
        // The interval min/max are bucket-resolution bounds around the true
        // extremes.
        assert!(delta.min <= 5);
        assert!(delta.max >= 2_000_000);
        // Quantiles over the delta see only the interval's values.
        assert_eq!(delta.quantile(0.5), 7);
        let p100 = delta.quantile(1.0) as f64;
        assert!((p100 - 2_000_000.0).abs() <= 2_000_000.0 * 0.02);
        // Deltas against an identical snapshot are empty.
        let snap = h.snapshot();
        let none = snap.delta_since(&snap);
        assert_eq!(none.count, 0);
        assert!(none.buckets.is_empty());
    }

    #[test]
    fn fraction_over_milli_counts_whole_buckets_above_threshold() {
        let h = Histogram::new();
        for _ in 0..9 {
            h.record(10);
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.fraction_over_milli(1_000), 100, "1 of 10 is over");
        assert_eq!(snap.fraction_over_milli(u64::MAX), 0);
        assert_eq!(snap.fraction_over_milli(0), 1000, "everything is over 0");
        assert_eq!(HistogramSnapshot::default().fraction_over_milli(0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }
}
