//! Named metric handles and the registry that owns them.
//!
//! A [`MetricsRegistry`] is a lazily-populated map from metric name to a
//! shared handle ([`Counter`], [`Gauge`] or
//! [`Histogram`]). Handles are `Arc`s: callers register
//! once at setup time (the only place a lock is taken) and then record
//! through the handle with plain atomic operations — the registry map is
//! never touched on the hot path.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (pool sizes, byte counts, watermarks).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the value to `v` if it is larger than the current value.
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Set the value only if it is still zero (its initial state). Returns
    /// true when this call performed the set.
    #[inline]
    pub fn set_if_unset(&self, v: i64) -> bool {
        self.value
            .compare_exchange(0, v, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct RegistryMap {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Map from metric name to shared handle.
///
/// Registration (`counter` / `gauge` / `histogram`) is idempotent: the first
/// call for a name creates the metric, later calls return the same handle,
/// so independent subsystems can safely share names. The internal mutex is
/// held only during registration and snapshotting; recording through a
/// handle never touches it. A poisoned map lock is recovered, not
/// propagated — the maps only ever grow, so a panicking registrant cannot
/// leave them in a broken state.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryMap>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, RegistryMap> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.lock();
        if let Some(existing) = map.counters.get(name) {
            return Arc::clone(existing);
        }
        let fresh = Arc::new(Counter::new());
        map.counters.insert(name.to_string(), Arc::clone(&fresh));
        fresh
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.lock();
        if let Some(existing) = map.gauges.get(name) {
            return Arc::clone(existing);
        }
        let fresh = Arc::new(Gauge::new());
        map.gauges.insert(name.to_string(), Arc::clone(&fresh));
        fresh
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.lock();
        if let Some(existing) = map.histograms.get(name) {
            return Arc::clone(existing);
        }
        let fresh = Arc::new(Histogram::new());
        map.histograms.insert(name.to_string(), Arc::clone(&fresh));
        fresh
    }

    /// Snapshot every metric, sorted by name within each kind.
    pub fn collect(&self) -> MetricsDump {
        let map = self.lock();
        MetricsDump {
            counters: map
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: map
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: map
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &map.counters.len())
            .field("gauges", &map.gauges.len())
            .field("histograms", &map.histograms.len())
            .finish()
    }
}

/// Owned values of every metric in a registry at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsDump {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_map_survives_a_poisoned_lock() {
        let registry = Arc::new(MetricsRegistry::new());
        let counter = registry.counter("poison.survivor");
        counter.add(5);
        let poisoner = Arc::clone(&registry);
        let handle = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the metric map on purpose");
        });
        assert!(handle.join().is_err());
        assert!(registry.inner.is_poisoned());
        // Registration and snapshotting recover instead of propagating.
        let same = registry.counter("poison.survivor");
        same.add(2);
        assert_eq!(counter.get(), 7, "handle identity survives poison");
        let fresh = registry.gauge("poison.after");
        fresh.set(1);
        let dump = registry.collect();
        assert!(
            dump.counters.contains(&("poison.survivor".to_string(), 7)),
            "collect must read through the recovered lock: {dump:?}"
        );
    }

    #[test]
    fn registration_is_idempotent() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.add(3);
        b.incr();
        assert_eq!(a.get(), 4);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(
            &registry.histogram("lat"),
            &registry.histogram("lat")
        ));
    }

    #[test]
    fn gauge_operations() {
        let g = Gauge::new();
        assert!(g.set_if_unset(7));
        assert!(!g.set_if_unset(9), "second set_if_unset must not overwrite");
        assert_eq!(g.get(), 7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
        g.add(-4);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn collect_is_sorted_and_complete() {
        let registry = MetricsRegistry::new();
        registry.counter("b.count").add(2);
        registry.counter("a.count").add(1);
        registry.gauge("z.gauge").set(-5);
        registry.histogram("m.hist").record(42);
        let dump = registry.collect();
        assert_eq!(
            dump.counters,
            vec![("a.count".to_string(), 1), ("b.count".to_string(), 2)]
        );
        assert_eq!(dump.gauges, vec![("z.gauge".to_string(), -5)]);
        assert_eq!(dump.histograms.len(), 1);
        assert_eq!(dump.histograms[0].0, "m.hist");
        assert_eq!(dump.histograms[0].1.count, 1);
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let poisoner = std::sync::Arc::clone(&registry);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the registry lock");
        })
        .join();
        // Registration and collection still work afterwards.
        registry.counter("after.poison").incr();
        assert_eq!(registry.collect().counters[0].1, 1);
    }
}
