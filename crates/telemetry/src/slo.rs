//! Declarative SLOs evaluated with multi-window burn-rate rules.
//!
//! An [`SloSpec`] states an objective over the metric namespace — a latency
//! threshold on a histogram, or an error budget over counters — and a set
//! of [`BurnRateRule`]s in the classic SRE shape: an alert fires only when
//! the **burn rate** (observed budget consumption ÷ allowed consumption)
//! exceeds a limit over a *long* window **and** a *short* window at once.
//! The long window keeps one noisy minute from paging; the short window
//! makes the alert resolve promptly once the regression stops, instead of
//! paging for hours on a stale average.
//!
//! Burn rates are integers in thousandths (`burn_milli`; 1000 = consuming
//! budget exactly at the sustainable rate), so alerts round-trip exactly
//! through the JSON snapshot schema.
//!
//! The [`SloEngine`] owns the [`WindowedStore`]: feed it one cumulative
//! [`TelemetrySnapshot`] per tick via [`SloEngine::observe`] and it returns
//! per-spec evaluations with fired/resolved transitions. A [`StatusBoard`]
//! carries the currently firing alerts and per-route health into the next
//! snapshot, which is how they reach the exporter, `sesr-top` and CI.

use crate::health::HealthState;
use crate::snapshot::TelemetrySnapshot;
use crate::window::{WindowDelta, WindowedStore};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// How loudly an alert fires. `Ord`: [`AlertSeverity::Page`] outranks
/// [`AlertSeverity::Warn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Slow-burn: the budget will be gone in days — investigate.
    Warn,
    /// Fast-burn: the budget is vanishing in hours — act now.
    Page,
}

impl AlertSeverity {
    /// Stable lowercase name, used in the JSON schema.
    pub fn as_str(&self) -> &'static str {
        match self {
            AlertSeverity::Warn => "warn",
            AlertSeverity::Page => "page",
        }
    }

    /// Inverse of [`AlertSeverity::as_str`].
    pub fn parse(text: &str) -> Option<AlertSeverity> {
        match text {
            "warn" => Some(AlertSeverity::Warn),
            "page" => Some(AlertSeverity::Page),
            _ => None,
        }
    }
}

impl std::fmt::Display for AlertSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One multi-window burn-rate rule: fire at `severity` when the burn rate
/// is at least `max_burn_milli` over **both** windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurnRateRule {
    /// The long window, in milliseconds.
    pub long_ms: u64,
    /// The short confirmation window, in milliseconds.
    pub short_ms: u64,
    /// Firing threshold in thousandths (14_400 = 14.4× the sustainable
    /// burn, the classic fast-page threshold for a 30-day budget).
    pub max_burn_milli: u64,
    /// Severity of the alert this rule raises.
    pub severity: AlertSeverity,
}

impl BurnRateRule {
    /// The classic fast-burn page: 1 h long / 5 m short at 14.4× burn.
    pub fn page() -> Self {
        BurnRateRule {
            long_ms: 3_600_000,
            short_ms: 300_000,
            max_burn_milli: 14_400,
            severity: AlertSeverity::Page,
        }
    }

    /// The classic slow-burn warning: 3 d long / 6 h short at 1× burn.
    pub fn warn() -> Self {
        BurnRateRule {
            long_ms: 259_200_000,
            short_ms: 21_600_000,
            max_burn_milli: 1_000,
            severity: AlertSeverity::Warn,
        }
    }

    /// The standard pair: [`BurnRateRule::page`] + [`BurnRateRule::warn`].
    pub fn classic() -> Vec<BurnRateRule> {
        vec![BurnRateRule::page(), BurnRateRule::warn()]
    }

    /// The same rule with both windows divided by `factor` — how tests and
    /// short-lived demos compress hours into milliseconds without touching
    /// the burn thresholds.
    pub fn compressed(mut self, factor: u64) -> Self {
        let factor = factor.max(1);
        self.long_ms = (self.long_ms / factor).max(1);
        self.short_ms = (self.short_ms / factor).max(1);
        self
    }
}

/// What an [`SloSpec`] measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloObjective {
    /// A latency objective on a histogram: at most `allowed_milli`
    /// thousandths of requests may exceed `threshold_ns`. (An
    /// `allowed_milli` of 10 is a p99 objective: 1% of requests may be
    /// slower than the threshold.)
    Latency {
        /// Name of the histogram carrying per-request values (nanoseconds).
        histogram: String,
        /// The latency objective in nanoseconds.
        threshold_ns: u64,
        /// Allowed violation fraction in thousandths (the error budget).
        allowed_milli: u64,
    },
    /// An error-budget objective over counters: the sum of `errors` may be
    /// at most `budget_milli` thousandths of the sum of `total`.
    ErrorBudget {
        /// Counters whose sum is the failure count.
        errors: Vec<String>,
        /// Counters whose sum is the request count.
        total: Vec<String>,
        /// Allowed failure fraction in thousandths.
        budget_milli: u64,
    },
}

/// One service-level objective plus the burn-rate rules that police it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSpec {
    /// Unique name, also the `telemetry.slo.<name>.*` metrics scope.
    pub name: String,
    /// The route this SLO guards (feeds the route's health machine).
    pub route: String,
    /// What is measured.
    pub objective: SloObjective,
    /// When to alert. Evaluated in order; the worst firing rule wins.
    pub rules: Vec<BurnRateRule>,
}

/// A firing (or fired) alert. All numeric fields are integers so the JSON
/// snapshot round-trips exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Name of the [`SloSpec`] that raised it.
    pub slo: String,
    /// The route the SLO guards.
    pub route: String,
    /// Severity of the worst firing rule.
    pub severity: AlertSeverity,
    /// The long-window burn rate in thousandths when last evaluated.
    pub burn_milli: u64,
    /// The firing rule's long window, in milliseconds.
    pub long_window_ms: u64,
    /// The firing rule's short window, in milliseconds.
    pub short_window_ms: u64,
    /// Engine tick time (caller's monotonic ms axis) when it started firing.
    pub since_ms: u64,
}

impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Sub-second windows (compressed test/demo rules) keep their ms form.
        let window = |ms: u64| {
            if ms >= 1000 {
                format!("{}s", ms / 1000)
            } else {
                format!("{ms}ms")
            }
        };
        write!(
            f,
            "[{}] {} burn {:.1}x over {}/{} (since t+{}ms)",
            self.severity,
            self.slo,
            self.burn_milli as f64 / 1000.0,
            window(self.long_window_ms),
            window(self.short_window_ms),
            self.since_ms,
        )
    }
}

/// An alert lifecycle edge produced by one [`SloEngine::observe`] tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloTransition {
    /// The spec started firing (or escalated severity).
    Fired(Alert),
    /// The spec stopped firing; the payload is the last firing alert.
    Resolved(Alert),
}

/// One spec's verdict for one tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloEvaluation {
    /// The spec's name.
    pub spec: String,
    /// The route the spec guards.
    pub route: String,
    /// Worst long-window burn rate across the spec's rules, in thousandths.
    pub burn_milli: u64,
    /// Severity of the worst firing rule, `None` when within budget.
    pub firing: Option<AlertSeverity>,
    /// The lifecycle edge this tick produced, if any.
    pub transition: Option<SloTransition>,
}

/// Burn rate of `objective` over one window delta, in thousandths.
/// `None` when the window carries no traffic (no data is not a breach).
fn burn_milli(objective: &SloObjective, delta: &WindowDelta<'_>) -> Option<u64> {
    match objective {
        SloObjective::Latency {
            histogram,
            threshold_ns,
            allowed_milli,
        } => {
            let interval = delta.histogram_delta(histogram)?;
            if interval.count == 0 {
                return None;
            }
            let violated = interval.fraction_over_milli(*threshold_ns);
            Some(scale_by_budget(violated, *allowed_milli))
        }
        SloObjective::ErrorBudget {
            errors,
            total,
            budget_milli,
        } => {
            let total = delta.counter_sum_delta(total);
            if total == 0 {
                return None;
            }
            let errors = delta.counter_sum_delta(errors).min(total);
            let failed_milli =
                u64::try_from(u128::from(errors) * 1000 / u128::from(total)).unwrap_or(1000);
            Some(scale_by_budget(failed_milli, *budget_milli))
        }
    }
}

/// `observed_milli / (budget_milli / 1000)` without leaving integers: the
/// burn rate in thousandths given an observed violation fraction and the
/// allowed fraction, both in thousandths.
fn scale_by_budget(observed_milli: u64, budget_milli: u64) -> u64 {
    let budget = budget_milli.max(1);
    u64::try_from(u128::from(observed_milli) * 1000 / u128::from(budget)).unwrap_or(u64::MAX)
}

/// The burn-rate evaluator: a ring of snapshots plus the specs over them.
#[derive(Debug)]
pub struct SloEngine {
    store: WindowedStore,
    specs: Vec<SloSpec>,
    firing: Vec<Option<Alert>>,
}

impl SloEngine {
    /// An engine retaining `capacity` snapshot frames. Size the ring to
    /// cover the longest rule window at the expected tick interval.
    pub fn new(capacity: usize) -> Self {
        SloEngine {
            store: WindowedStore::new(capacity),
            specs: Vec::new(),
            firing: Vec::new(),
        }
    }

    /// Register one spec. Specs are evaluated in registration order.
    pub fn add_spec(&mut self, spec: SloSpec) {
        self.specs.push(spec);
        self.firing.push(None);
    }

    /// The registered specs.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// The underlying frame ring (for rate series / dashboards).
    pub fn store(&self) -> &WindowedStore {
        &self.store
    }

    /// Feed one cumulative snapshot taken at `now_ms` (caller's monotonic
    /// axis) and evaluate every spec against it.
    pub fn observe(&mut self, now_ms: u64, snapshot: TelemetrySnapshot) -> Vec<SloEvaluation> {
        self.store.push(now_ms, snapshot);
        let mut evaluations = Vec::with_capacity(self.specs.len());
        for (spec, firing) in self.specs.iter().zip(self.firing.iter_mut()) {
            let mut worst: Option<(&BurnRateRule, u64)> = None;
            let mut worst_burn = 0u64;
            for rule in &spec.rules {
                let long = self
                    .store
                    .delta(rule.long_ms)
                    .and_then(|delta| burn_milli(&spec.objective, &delta));
                let short = self
                    .store
                    .delta(rule.short_ms)
                    .and_then(|delta| burn_milli(&spec.objective, &delta));
                let long_burn = long.unwrap_or(0);
                worst_burn = worst_burn.max(long_burn);
                let fires =
                    long_burn >= rule.max_burn_milli && short.unwrap_or(0) >= rule.max_burn_milli;
                if fires {
                    let outranks = match worst {
                        Some((current, _)) => rule.severity > current.severity,
                        None => true,
                    };
                    if outranks {
                        worst = Some((rule, long_burn));
                    }
                }
            }
            let transition = match (worst, firing.as_mut()) {
                (Some((rule, burn)), Some(alert)) => {
                    // Still firing: refresh the reading, escalate severity if
                    // a louder rule took over, keep the original since_ms.
                    let escalated = rule.severity > alert.severity;
                    alert.severity = alert.severity.max(rule.severity);
                    alert.burn_milli = burn;
                    alert.long_window_ms = rule.long_ms;
                    alert.short_window_ms = rule.short_ms;
                    escalated.then(|| SloTransition::Fired(alert.clone()))
                }
                (Some((rule, burn)), None) => {
                    let alert = Alert {
                        slo: spec.name.clone(),
                        route: spec.route.clone(),
                        severity: rule.severity,
                        burn_milli: burn,
                        long_window_ms: rule.long_ms,
                        short_window_ms: rule.short_ms,
                        since_ms: now_ms,
                    };
                    *firing = Some(alert.clone());
                    Some(SloTransition::Fired(alert))
                }
                (None, Some(_)) => firing.take().map(SloTransition::Resolved),
                (None, None) => None,
            };
            evaluations.push(SloEvaluation {
                spec: spec.name.clone(),
                route: spec.route.clone(),
                burn_milli: worst_burn,
                firing: firing.as_ref().map(|alert| alert.severity),
                transition,
            });
        }
        evaluations
    }

    /// Every currently firing alert, in spec order.
    pub fn firing(&self) -> Vec<Alert> {
        self.firing.iter().flatten().cloned().collect()
    }

    /// The most severe alert currently firing for `route`.
    pub fn worst_for_route(&self, route: &str) -> Option<AlertSeverity> {
        self.firing
            .iter()
            .flatten()
            .filter(|alert| alert.route == route)
            .map(|alert| alert.severity)
            .max()
    }
}

/// Shared mutable slot for the *interpreted* state — firing alerts and
/// per-route health — that a hub folds into every snapshot it takes.
///
/// The SLO runtime publishes here after each tick; readers (the snapshot
/// path) copy the contents out under a short mutex hold. A poisoned lock is
/// recovered, not propagated, like the metrics registry's.
#[derive(Debug, Default)]
pub struct StatusBoard {
    inner: Mutex<StatusInner>,
}

#[derive(Debug, Default)]
struct StatusInner {
    alerts: Vec<Alert>,
    health: Vec<(String, HealthState)>,
}

impl StatusBoard {
    /// An empty board: no alerts, no tracked routes.
    pub fn new() -> Self {
        StatusBoard::default()
    }

    fn lock(&self) -> MutexGuard<'_, StatusInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Replace the full set of firing alerts.
    pub fn set_alerts(&self, alerts: Vec<Alert>) {
        self.lock().alerts = alerts;
    }

    /// Upsert one route's health, keeping the list sorted by route.
    pub fn set_health(&self, route: &str, state: HealthState) {
        let mut inner = self.lock();
        match inner
            .health
            .binary_search_by(|(name, _)| name.as_str().cmp(route))
        {
            Ok(index) => inner.health[index].1 = state,
            Err(index) => inner.health.insert(index, (route.to_string(), state)),
        }
    }

    /// The currently firing alerts.
    pub fn alerts(&self) -> Vec<Alert> {
        self.lock().alerts.clone()
    }

    /// Every tracked route's health, sorted by route.
    pub fn health(&self) -> Vec<(String, HealthState)> {
        self.lock().health.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn snapshot_of(registry: &MetricsRegistry) -> TelemetrySnapshot {
        TelemetrySnapshot::new(registry.collect(), Vec::new(), 0)
    }

    fn test_rules() -> Vec<BurnRateRule> {
        vec![
            BurnRateRule {
                long_ms: 1_000,
                short_ms: 250,
                max_burn_milli: 1_000,
                severity: AlertSeverity::Page,
            },
            BurnRateRule {
                long_ms: 4_000,
                short_ms: 1_000,
                max_burn_milli: 500,
                severity: AlertSeverity::Warn,
            },
        ]
    }

    fn error_budget_spec() -> SloSpec {
        SloSpec {
            name: "r/errors".to_string(),
            route: "r".to_string(),
            objective: SloObjective::ErrorBudget {
                errors: vec!["r.rejected".to_string()],
                total: vec!["r.completed".to_string(), "r.rejected".to_string()],
                budget_milli: 10, // 1% of requests may fail
            },
            rules: test_rules(),
        }
    }

    #[test]
    fn error_budget_alert_fires_and_resolves() {
        let registry = MetricsRegistry::new();
        let completed = registry.counter("r.completed");
        let rejected = registry.counter("r.rejected");
        let mut engine = SloEngine::new(64);
        engine.add_spec(error_budget_spec());

        completed.add(100);
        let evals = engine.observe(0, snapshot_of(&registry));
        assert_eq!(evals[0].firing, None, "baseline tick cannot fire");

        // A clean interval: burn stays zero.
        completed.add(100);
        let evals = engine.observe(250, snapshot_of(&registry));
        assert_eq!(evals[0].burn_milli, 0);
        assert!(evals[0].transition.is_none());

        // 50% failures against a 1% budget: burn 50x on both windows.
        completed.add(50);
        rejected.add(50);
        let evals = engine.observe(500, snapshot_of(&registry));
        match &evals[0].transition {
            Some(SloTransition::Fired(alert)) => {
                assert_eq!(alert.severity, AlertSeverity::Page);
                assert_eq!(alert.since_ms, 500);
                assert!(alert.burn_milli >= 14_400, "burn {}", alert.burn_milli);
            }
            other => panic!("expected a fired page, got {other:?}"),
        }
        assert_eq!(engine.worst_for_route("r"), Some(AlertSeverity::Page));
        assert_eq!(engine.firing().len(), 1);

        // Healthy traffic again; once the short window clears the failures,
        // the page resolves even though the long window still sees them.
        completed.add(200);
        engine.observe(750, snapshot_of(&registry));
        completed.add(200);
        let evals = engine.observe(1_750, snapshot_of(&registry));
        assert!(
            matches!(&evals[0].transition, Some(SloTransition::Resolved(_))),
            "clean short window must resolve the page: {:?}",
            evals[0]
        );
        assert_eq!(engine.worst_for_route("r"), None);
    }

    #[test]
    fn latency_objective_burns_on_threshold_violations() {
        let registry = MetricsRegistry::new();
        let hist = registry.histogram("r.latency_ns");
        let mut engine = SloEngine::new(64);
        engine.add_spec(SloSpec {
            name: "r/latency".to_string(),
            route: "r".to_string(),
            objective: SloObjective::Latency {
                histogram: "r.latency_ns".to_string(),
                threshold_ns: 10_000,
                allowed_milli: 10,
            },
            rules: test_rules(),
        });

        for _ in 0..100 {
            hist.record(1_000); // all well under the threshold
        }
        engine.observe(0, snapshot_of(&registry));
        for _ in 0..100 {
            hist.record(1_000);
        }
        let evals = engine.observe(250, snapshot_of(&registry));
        assert_eq!(evals[0].burn_milli, 0);
        assert_eq!(evals[0].firing, None);

        // Every request in the next interval violates the threshold: the
        // whole-lifetime histogram is still 2/3 healthy, but the interval
        // view sees 100% violation — the regression is not diluted.
        for _ in 0..100 {
            hist.record(1_000_000);
        }
        let evals = engine.observe(500, snapshot_of(&registry));
        assert_eq!(evals[0].firing, Some(AlertSeverity::Page));
        // The long (1s) window spans both interval ticks — 100 clean plus
        // 100 violated — so 50% violation on a 1% budget is a 50x burn.
        assert!(
            evals[0].burn_milli >= 40_000,
            "expected a ~50x long-window burn, got {}",
            evals[0].burn_milli
        );
    }

    #[test]
    fn no_traffic_is_not_a_breach() {
        let registry = MetricsRegistry::new();
        registry.counter("r.completed");
        registry.counter("r.rejected");
        let mut engine = SloEngine::new(8);
        engine.add_spec(error_budget_spec());
        for t in 0..5u64 {
            let evals = engine.observe(t * 250, snapshot_of(&registry));
            assert_eq!(evals[0].firing, None);
            assert_eq!(evals[0].burn_milli, 0);
        }
    }

    #[test]
    fn both_windows_must_burn_before_firing() {
        let registry = MetricsRegistry::new();
        let completed = registry.counter("r.completed");
        let rejected = registry.counter("r.rejected");
        let mut engine = SloEngine::new(64);
        // Only the page rule (1s long / 250ms short), so the short-window
        // veto is what is under test.
        let mut spec = error_budget_spec();
        spec.rules.truncate(1);
        engine.add_spec(spec);

        // A burst of failures...
        completed.add(50);
        rejected.add(50);
        engine.observe(0, snapshot_of(&registry));
        // ...followed by a long healthy stretch. The long (1s) window still
        // contains the burst? No: the burst predates frame 0, so it is in no
        // interval. Produce one that straddles: failures land in (0, 250].
        rejected.add(50);
        completed.add(50);
        engine.observe(250, snapshot_of(&registry));
        // Healthy quarter-seconds push the short window clean while the long
        // window still sees the burst: the rule must NOT fire on the long
        // window alone.
        completed.add(500);
        engine.observe(750, snapshot_of(&registry));
        completed.add(500);
        let evals = engine.observe(1_000, snapshot_of(&registry));
        assert!(
            evals[0].burn_milli > 1_000,
            "long window must still see the burst, got {}",
            evals[0].burn_milli
        );
        assert_eq!(
            evals[0].firing, None,
            "a clean short window must veto the page"
        );
    }

    #[test]
    fn status_board_upserts_and_sorts() {
        let board = StatusBoard::new();
        assert!(board.alerts().is_empty());
        board.set_health("b", HealthState::Degraded);
        board.set_health("a", HealthState::Healthy);
        board.set_health("b", HealthState::Unhealthy);
        assert_eq!(
            board.health(),
            vec![
                ("a".to_string(), HealthState::Healthy),
                ("b".to_string(), HealthState::Unhealthy),
            ]
        );
        let alert = Alert {
            slo: "s".to_string(),
            route: "r".to_string(),
            severity: AlertSeverity::Warn,
            burn_milli: 1_500,
            long_window_ms: 1_000,
            short_window_ms: 100,
            since_ms: 7,
        };
        board.set_alerts(vec![alert.clone()]);
        assert_eq!(board.alerts(), vec![alert]);
    }

    #[test]
    fn compressed_rules_divide_windows_only() {
        let rule = BurnRateRule::page().compressed(3_600);
        assert_eq!(rule.long_ms, 1_000);
        assert_eq!(rule.short_ms, 83);
        assert_eq!(rule.max_burn_milli, 14_400);
        assert_eq!(BurnRateRule::classic().len(), 2);
    }
}
