//! Hand-rolled observability primitives for the SESR serving stack.
//!
//! The paper's central claim is a latency/robustness trade-off, so the
//! reproduction needs to *attribute* time, not just total it: queue wait
//! vs. batch dwell vs. preprocess vs. SR forward vs. classify, per route.
//! This crate provides the pieces, with no dependencies beyond `std`:
//!
//! - [`Histogram`] — log-bucketed (HDR-style) latency histogram with
//!   lock-striped shards: recording is a few relaxed atomic adds (~1%
//!   relative error from bucket midpoints), snapshots are an O(buckets)
//!   merge with no sorting.
//! - [`Counter`] / [`Gauge`] / [`MetricsRegistry`] — named metric handles;
//!   the registry lock is touched only at registration and snapshot time.
//! - [`EventRing`] / [`Span`] / [`Probe`] — span tracing into a bounded
//!   structured-event journal (seqlock slots, no locks, no allocation on
//!   record) with per-thread span stacks for parent attribution.
//! - [`TelemetrySnapshot`] — the export surface: a deterministic text dump
//!   and a stable JSON schema that round-trips ([`snapshot::SCHEMA`]).
//! - [`merge_snapshots`] / [`prefix_snapshot`] — fleet rollups: sum
//!   counters and merge histograms bucket-wise across process snapshots,
//!   so a cluster router can quote true union quantiles.
//!
//! [`Telemetry`] bundles one registry with one journal — the serving
//! gateway, model store, and evaluation plans all share a single hub.
//!
//! # Example
//!
//! ```
//! use sesr_telemetry::{Level, Telemetry, TelemetrySnapshot};
//! use std::time::Duration;
//!
//! let telemetry = Telemetry::new();
//! let requests = telemetry.metrics().counter("gateway.requests");
//! let probe = telemetry.probe("stage.classify", Level::Debug, Some("classify_ns"));
//!
//! requests.incr();
//! {
//!     let _span = probe.span(1); // records duration + journal event on drop
//! }
//! probe.observe(2, Duration::from_micros(250)); // cross-thread interval
//!
//! let snapshot = telemetry.snapshot();
//! assert_eq!(snapshot.counter("gateway.requests"), Some(1));
//! assert_eq!(snapshot.histogram("classify_ns").unwrap().count, 2);
//! let reparsed = TelemetrySnapshot::from_json(&snapshot.to_json()).unwrap();
//! assert_eq!(reparsed, snapshot);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod health;
pub mod histogram;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod slo;
pub mod snapshot;
pub mod window;

pub use aggregate::{merge_snapshots, prefix_snapshot};
pub use health::{HealthMachine, HealthPolicy, HealthState, HealthTransition};
pub use histogram::{Histogram, HistogramSnapshot};
pub use journal::{EventCode, EventRecord, EventRing, Level, Probe, Span};
pub use metrics::{Counter, Gauge, MetricsDump, MetricsRegistry};
pub use slo::{
    Alert, AlertSeverity, BurnRateRule, SloEngine, SloEvaluation, SloObjective, SloSpec,
    SloTransition, StatusBoard,
};
pub use snapshot::{TelemetrySnapshot, SCHEMA, SCHEMA_V1};
pub use window::{Frame, WindowDelta, WindowedStore};

use std::sync::Arc;

/// Default journal capacity for a [`Telemetry`] hub.
const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// One metrics registry plus one event journal: the shared telemetry hub a
/// process threads through its subsystems.
pub struct Telemetry {
    metrics: MetricsRegistry,
    journal: Arc<EventRing>,
    status: StatusBoard,
}

impl Telemetry {
    /// A hub with the default journal capacity.
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A hub whose journal keeps the most recent `capacity` events.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        Telemetry {
            metrics: MetricsRegistry::new(),
            journal: Arc::new(EventRing::new(capacity)),
            status: StatusBoard::new(),
        }
    }

    /// The metric registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The event journal.
    pub fn journal(&self) -> &Arc<EventRing> {
        &self.journal
    }

    /// The status board an SLO runtime publishes alerts and health to;
    /// [`Telemetry::snapshot`] folds its contents into every export.
    pub fn status(&self) -> &StatusBoard {
        &self.status
    }

    /// Build a [`Probe`] for `event` at `level`, optionally mirroring
    /// durations into the histogram named `histogram`.
    pub fn probe(&self, event: &'static str, level: Level, histogram: Option<&str>) -> Probe {
        let code = self.journal.register(event);
        let probe = Probe::new(Arc::clone(&self.journal), code, level);
        match histogram {
            Some(name) => probe.with_histogram(self.metrics.histogram(name)),
            None => probe,
        }
    }

    /// Snapshot every metric, the current journal contents, and whatever
    /// status (alerts, route health) has been published to the board.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::new(
            self.metrics.collect(),
            self.journal.events(),
            self.journal.dropped(),
        )
        .with_status(self.status.alerts(), self.status.health())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("metrics", &self.metrics)
            .field("journal", &self.journal)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn hub_snapshot_combines_metrics_and_journal() {
        let telemetry = Telemetry::with_journal_capacity(32);
        telemetry.metrics().counter("a").add(5);
        telemetry.metrics().gauge("b").set(-1);
        let probe = telemetry.probe("evt", Level::Info, Some("h"));
        probe.observe(11, Duration::from_nanos(99));
        let snapshot = telemetry.snapshot();
        assert_eq!(snapshot.counter("a"), Some(5));
        assert_eq!(snapshot.gauge("b"), Some(-1));
        assert_eq!(snapshot.histogram("h").unwrap().count, 1);
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.events[0].name, "evt");
        assert_eq!(snapshot.events[0].request, 11);
        assert_eq!(snapshot.dropped_events, 0);
    }

    #[test]
    fn probe_without_histogram_only_journals() {
        let telemetry = Telemetry::new();
        let probe = telemetry.probe("bare", Level::Warn, None);
        probe.observe(0, Duration::from_nanos(1));
        let snapshot = telemetry.snapshot();
        assert!(snapshot.histograms.is_empty());
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.events[0].level, Level::Warn);
    }
}
