//! Cross-process snapshot aggregation: merge many [`TelemetrySnapshot`]s
//! into one fleet rollup.
//!
//! A federated gateway is N shared-nothing worker processes, each with its
//! own telemetry hub. The cluster router probes every member for its
//! snapshot and needs a *fleet* view: counters summed, gauges summed,
//! histograms merged bucket-wise — so a fleet p99 is computed over the
//! union of every member's samples, not averaged per member (averaging
//! quantiles is how tail latencies get laundered). [`merge_snapshots`]
//! does exactly that, and [`prefix_snapshot`] re-namespaces the result
//! (e.g. under `cluster.fleet.`) so it can ride along in the router's own
//! snapshot without colliding with the router's `net.*` metrics.
//!
//! Events, alerts and health verdicts are deliberately *not* merged: they
//! are per-process narratives (a journal interleaved across processes with
//! unsynchronized clocks is noise), and each member's own snapshot remains
//! the place to read them.

use crate::histogram::HistogramSnapshot;
use crate::snapshot::TelemetrySnapshot;
use std::collections::BTreeMap;

impl HistogramSnapshot {
    /// Fold `other` into `self`, bucket-wise. Both sides use the same
    /// log-bucket layout (bucket lower bounds are value-determined, not
    /// instance-determined), so merging is exact: the merged histogram is
    /// what one histogram would have recorded had it seen both sample
    /// streams. Quantiles of the merge are therefore true union quantiles
    /// (within bucket resolution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(lower, n) in &other.buckets {
            *buckets.entry(lower).or_insert(0) += n;
        }
        self.buckets = buckets.into_iter().collect();
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Merge many snapshots into one: counters and gauges summed by name,
/// histograms merged bucket-wise by name. Journal events, alerts, health
/// and `dropped_events` are left empty — they are per-process state (see
/// the module docs).
pub fn merge_snapshots<'a>(
    parts: impl IntoIterator<Item = &'a TelemetrySnapshot>,
) -> TelemetrySnapshot {
    let mut counters: BTreeMap<&'a str, u64> = BTreeMap::new();
    let mut gauges: BTreeMap<&'a str, i64> = BTreeMap::new();
    let mut histograms: BTreeMap<&'a str, HistogramSnapshot> = BTreeMap::new();
    for part in parts {
        for (name, value) in &part.counters {
            *counters.entry(name).or_insert(0) += value;
        }
        for (name, value) in &part.gauges {
            *gauges.entry(name).or_insert(0) += value;
        }
        for (name, histogram) in &part.histograms {
            histograms
                .entry(name)
                .or_default()
                .merge(histogram);
        }
    }
    TelemetrySnapshot {
        counters: counters
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect(),
        gauges: gauges
            .into_iter()
            .map(|(name, v)| (name.to_string(), v))
            .collect(),
        histograms: histograms
            .into_iter()
            .map(|(name, h)| (name.to_string(), h))
            .collect(),
        events: Vec::new(),
        alerts: Vec::new(),
        health: Vec::new(),
        dropped_events: 0,
    }
}

/// Rename every metric in `snapshot` under `prefix` (plain concatenation:
/// pass a trailing `.`), preserving sorted order — prefixing every name
/// with the same string preserves lexicographic order.
pub fn prefix_snapshot(mut snapshot: TelemetrySnapshot, prefix: &str) -> TelemetrySnapshot {
    for (name, _) in &mut snapshot.counters {
        *name = format!("{prefix}{name}");
    }
    for (name, _) in &mut snapshot.gauges {
        *name = format!("{prefix}{name}");
    }
    for (name, _) in &mut snapshot.histograms {
        *name = format!("{prefix}{name}");
    }
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::Telemetry;
    use std::time::Duration;

    fn snapshot_with(counter: u64, gauge: i64, micros: &[u64]) -> TelemetrySnapshot {
        let hub = Telemetry::new();
        hub.metrics().counter("requests").add(counter);
        hub.metrics().gauge("inflight").add(gauge);
        let histogram = hub.metrics().histogram("latency_ns");
        for &us in micros {
            histogram.record_duration(Duration::from_micros(us));
        }
        hub.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_gauges_by_name() {
        let a = snapshot_with(3, 2, &[]);
        let b = snapshot_with(5, -1, &[]);
        let merged = merge_snapshots([&a, &b]);
        assert_eq!(merged.counter("requests"), Some(8));
        assert_eq!(merged.gauge("inflight"), Some(1));
        assert!(merged.events.is_empty());
    }

    #[test]
    fn merged_histogram_is_the_union_of_samples() {
        let a = snapshot_with(0, 0, &[100, 100, 100, 100]);
        let b = snapshot_with(0, 0, &[100_000]);
        let merged = merge_snapshots([&a, &b]);
        let got = merged.histogram("latency_ns").expect("merged histogram");

        // The union recorded directly must agree exactly.
        let direct = Histogram::new();
        for us in [100u64, 100, 100, 100, 100_000] {
            direct.record_duration(Duration::from_micros(us));
        }
        let direct = direct.snapshot();
        assert_eq!(got, &direct);
        assert_eq!(got.count, 5);
        // The tail sample survives the merge: a per-member average would
        // have hidden it.
        assert_eq!(got.quantile(1.0), direct.quantile(1.0));
        assert!(got.quantile(1.0) >= Duration::from_micros(90_000).as_nanos() as u64);
    }

    #[test]
    fn merge_with_empty_histogram_is_identity() {
        let mut empty = HistogramSnapshot::default();
        let a = snapshot_with(0, 0, &[250, 500]);
        let histogram = a.histogram("latency_ns").expect("recorded");
        empty.merge(histogram);
        assert_eq!(&empty, histogram);
        let mut merged = histogram.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(&merged, histogram);
    }

    #[test]
    fn prefix_renames_every_metric_and_keeps_order() {
        let a = snapshot_with(1, 1, &[100]);
        let prefixed = prefix_snapshot(a, "cluster.fleet.");
        assert_eq!(prefixed.counter("cluster.fleet.requests"), Some(1));
        assert_eq!(prefixed.gauge("cluster.fleet.inflight"), Some(1));
        assert!(prefixed.histogram("cluster.fleet.latency_ns").is_some());
        let mut sorted = prefixed.counters.clone();
        sorted.sort();
        assert_eq!(prefixed.counters, sorted);
    }
}
