//! Property tests for the log-bucketed histogram: against an exact
//! sort-based oracle, every quoted quantile must stay within the advertised
//! ~2% relative error for arbitrary value distributions.

use proptest::prelude::*;
use rand::Rng;
use sesr_telemetry::Histogram;

/// Exact oracle using the same `rank = ceil(q · n)` convention as
/// `HistogramSnapshot::quantile`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantile estimates stay within 2% (or ±1 for tiny values) of the
    /// exact order statistic, for values spanning nine orders of magnitude
    /// with arbitrary mixtures of scales.
    #[test]
    fn quantile_error_is_bounded(
        seed in 0u64..10_000,
        count in 1usize..4_000,
        scale_bits in 1u32..40,
    ) {
        let mut rng = proptest::rng_for_case(seed as u32);
        let histogram = Histogram::new();
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            // Log-uniform draw: pick a magnitude, then a value inside it,
            // so every octave of the bucket table gets exercised.
            let bits = rng.gen_range(0..=scale_bits);
            let value = rng.gen_range(0..=(1u64 << bits));
            histogram.record(value);
            values.push(value);
        }
        values.sort_unstable();
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);
        prop_assert_eq!(snapshot.min, values[0]);
        prop_assert_eq!(snapshot.max, *values.last().unwrap());
        let total: u64 = values.iter().sum();
        prop_assert_eq!(snapshot.sum, total);

        for q in [0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let estimate = snapshot.quantile(q);
            let tolerance = (exact as f64 * 0.02).max(1.0);
            prop_assert!(
                (estimate as f64 - exact as f64).abs() <= tolerance,
                "q={} estimate={} exact={} tolerance={} (n={})",
                q, estimate, exact, tolerance, values.len()
            );
        }
    }
}
