//! Property test of the event journal's seqlock under real contention:
//! several writer threads force the ring to wrap many laps while a reader
//! snapshots concurrently. Whatever the interleaving,
//!
//! * accounting is exact — `recorded()` equals the number of records
//!   submitted, `dropped()` equals the wrap overflow, and every submitted
//!   record is recorded, abandoned to a claim race, or readable;
//! * no snapshot ever contains a **torn** event: each writer tags its
//!   values with its own code, so a mixed-up (name, request, value) triple
//!   is detectable in every published record.
//!
//! The claim/stamp protocol exercised here is modeled schedule-by-schedule
//! in `sesr-verify` (`models::seqlock`); this test is the native-hardware
//! companion that hammers the same invariant with OS-level parallelism.

use proptest::prelude::*;
use sesr_telemetry::{EventRing, Level};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wrapping_under_concurrent_writers_is_exact_and_never_torn(
        capacity in 8usize..64,
        writers in 2usize..5,
        per_writer in 50u64..400,
    ) {
        let ring = Arc::new(EventRing::new(capacity));
        let capacity = capacity.max(8).next_power_of_two() as u64;
        // One code per writer; values tag the writer so a torn slot is
        // visible no matter which fields got mixed.
        let codes: Vec<_> = (0..writers)
            .map(|w| ring.register(["w0", "w1", "w2", "w3", "w4"][w]))
            .collect();

        let mut handles = Vec::new();
        for (w, code) in codes.iter().enumerate() {
            let ring = Arc::clone(&ring);
            let code = *code;
            handles.push(std::thread::spawn(move || {
                for i in 0..per_writer {
                    let tag = w as u64 * 1_000_000 + i;
                    ring.record(Level::Info, code, tag, w as u64);
                }
            }));
        }
        // Concurrent reads while writers wrap the ring: every snapshot must
        // already be consistent, not just the final one.
        for _ in 0..8 {
            for event in ring.events() {
                let writer = event.value as usize;
                prop_assert!(writer < writers, "value tags a real writer");
                prop_assert_eq!(&event.name, &format!("w{writer}"));
                prop_assert_eq!(event.request / 1_000_000, writer as u64);
            }
        }
        for handle in handles {
            handle.join().expect("writer panicked");
        }

        let total = writers as u64 * per_writer;
        prop_assert_eq!(ring.recorded(), total);
        prop_assert_eq!(ring.dropped(), total.saturating_sub(capacity));

        let events = ring.events();
        prop_assert!(!events.is_empty());
        prop_assert!(events.len() as u64 + ring.abandoned() >= capacity.min(total),
            "readable events plus abandoned claims must cover the ring");
        let mut last_seq = None;
        for event in &events {
            let writer = event.value as usize;
            prop_assert!(writer < writers);
            prop_assert_eq!(&event.name, &format!("w{writer}"));
            prop_assert_eq!(event.request / 1_000_000, writer as u64);
            if let Some(last) = last_seq {
                prop_assert!(event.seq > last, "events are ordered oldest-first");
            }
            last_seq = Some(event.seq);
        }
    }
}
