//! Proof of the hot-path recording contract: once probes and metric handles
//! exist, recording a counter bump, a gauge update, a histogram sample, a
//! journal event or a full span performs **zero heap allocations** and takes
//! no lock (everything below is relaxed atomics; there is no mutex on any of
//! these paths to begin with).
//!
//! The shared [`CountingAllocator`] from `sesr-testkit` wraps the system
//! allocator, same as the arena's `alloc_tracking` harness. This file
//! deliberately contains a single `#[test]` so no sibling test can
//! allocate inside the counting window.

use sesr_telemetry::{Level, Telemetry};
use sesr_testkit::{count_allocations, CountingAllocator};
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn recording_allocates_nothing_after_setup() {
    // Setup (allocates): the hub, metric handles, probe registration.
    let telemetry = Telemetry::with_journal_capacity(256);
    let counter = telemetry.metrics().counter("hot.counter");
    let gauge = telemetry.metrics().gauge("hot.gauge");
    let histogram = telemetry.metrics().histogram("hot.histogram_ns");
    let probe = telemetry.probe("hot.stage", Level::Debug, Some("hot.stage_ns"));
    let journal = std::sync::Arc::clone(telemetry.journal());
    let code = journal.register("hot.event");

    // Warm up once so lazy thread-local state (shard hints, span stack) is
    // initialised before the counting window opens.
    counter.incr();
    gauge.set(1);
    histogram.record(1);
    journal.record(Level::Debug, code, 0, 0);
    drop(probe.span(0));
    probe.observe(0, Duration::from_nanos(1));

    let steady = count_allocations(|| {
        for i in 0..1_000u64 {
            counter.add(2);
            gauge.set(i as i64);
            gauge.set_max(i as i64);
            histogram.record(i * 1_001);
            journal.record(Level::Info, code, i, i);
            probe.observe(i, Duration::from_nanos(i));
            let span = probe.span(i);
            drop(span);
        }
    });
    assert_eq!(
        steady, 0,
        "hot-path telemetry recording must not allocate (measured {steady} \
         allocations over 1000 iterations of every recording primitive)"
    );

    // The recordings really happened.
    let snapshot = telemetry.snapshot();
    assert_eq!(snapshot.counter("hot.counter"), Some(1 + 2 * 1_000));
    assert_eq!(snapshot.histogram("hot.histogram_ns").unwrap().count, 1_001);
    assert_eq!(snapshot.histogram("hot.stage_ns").unwrap().count, 2_002);
    assert!(snapshot.dropped_events > 0, "the 256-slot ring wrapped");
}
