//! Property tests for the windowed time-series math: interval percentiles
//! recovered by subtracting cumulative snapshots must match an exact oracle
//! built from only the values recorded *inside* the interval — warm-up
//! history must not leak into the window.

use proptest::prelude::*;
use rand::Rng;
use sesr_telemetry::{Histogram, MetricsRegistry, TelemetrySnapshot, WindowedStore};

/// Exact oracle using the same `rank = ceil(q · n)` convention as
/// `HistogramSnapshot::quantile`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Record a random warm-up phase, snapshot, record a random second
    /// phase, snapshot again: quantiles of the window delta must match the
    /// exact order statistics of the second phase alone, within the
    /// histogram's advertised ~2% bucket error.
    #[test]
    fn interval_percentiles_match_the_oracle(
        seed in 0u64..10_000,
        warmup in 0usize..2_000,
        interval in 1usize..2_000,
        scale_bits in 1u32..40,
    ) {
        let mut rng = proptest::rng_for_case(seed as u32);
        let registry = MetricsRegistry::new();
        let histogram = registry.histogram("lat_ns");
        let mut draw = |hist: &Histogram, n: usize, values: Option<&mut Vec<u64>>| {
            let mut sink = Vec::new();
            let out = values.unwrap_or(&mut sink);
            for _ in 0..n {
                let bits = rng.gen_range(0..=scale_bits);
                let value = rng.gen_range(0..=(1u64 << bits));
                hist.record(value);
                out.push(value);
            }
        };

        let mut store = WindowedStore::new(8);
        draw(&histogram, warmup, None);
        store.push(0, TelemetrySnapshot::new(registry.collect(), Vec::new(), 0));

        let mut phase2 = Vec::with_capacity(interval);
        draw(&histogram, interval, Some(&mut phase2));
        store.push(1_000, TelemetrySnapshot::new(registry.collect(), Vec::new(), 0));
        phase2.sort_unstable();

        let delta = store.delta(1_000).expect("two distinct frames");
        let snapshot = delta.histogram_delta("lat_ns").expect("histogram present");
        prop_assert_eq!(snapshot.count, phase2.len() as u64);
        let total: u64 = phase2.iter().sum();
        prop_assert_eq!(snapshot.sum, total);

        for q in [0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&phase2, q);
            let estimate = snapshot.quantile(q);
            let tolerance = (exact as f64 * 0.02).max(1.0);
            prop_assert!(
                (estimate as f64 - exact as f64).abs() <= tolerance,
                "q={} estimate={} exact={} tolerance={} (warmup={} interval={})",
                q, estimate, exact, tolerance, warmup, phase2.len()
            );
        }
    }
}
