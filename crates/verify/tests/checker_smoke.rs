//! Core checker semantics: the scheduler finds classic races, respects
//! release edges, models relaxed store-store reordering, detects
//! deadlocks, and replays recorded schedules deterministically.

use sesr_verify::sync::{spawn, MAtomicU64, MCondvar, MMutex};
use sesr_verify::{check, fuzz, replay, Config};
use std::sync::atomic::Ordering;

#[test]
fn lost_update_is_found() {
    let report = check(Config::default(), || {
        let counter = MAtomicU64::new("counter", 0);
        let c2 = counter.clone();
        let t = spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
    let violation = report.violation.expect("checker must find the lost update");
    assert!(violation.message.contains("lost update"), "{}", violation);
    assert!(!violation.trace.is_empty());
}

#[test]
fn fetch_add_has_no_lost_update() {
    let report = check(Config::default(), || {
        let counter = MAtomicU64::new("counter", 0);
        let c2 = counter.clone();
        let t = spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
    assert!(report.passed(), "{report}");
    assert!(report.complete);
    assert!(report.schedules > 1, "must have explored interleavings");
}

#[test]
fn relaxed_stores_reorder_but_release_publishes() {
    // Message-passing litmus: data then flag. With a Relaxed flag store the
    // commits can reorder and the reader observes flag=1, data=0; with a
    // Release flag store the buffer is flushed first and the stale read is
    // impossible.
    let run = |flag_order: Ordering| {
        check(Config::with_preemptions(3), move || {
            let data = MAtomicU64::new("data", 0);
            let flag = MAtomicU64::new("flag", 0);
            let (d2, f2) = (data.clone(), flag.clone());
            let t = spawn(move || {
                d2.store(1, Ordering::Relaxed);
                f2.store(1, flag_order);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 1, "stale data behind flag");
            }
            t.join();
        })
    };
    let relaxed = run(Ordering::Relaxed);
    assert!(
        !relaxed.passed(),
        "relaxed flag must allow the stale read: {relaxed}"
    );
    let release = run(Ordering::Release);
    assert!(release.passed(), "release flag must forbid it: {release}");
}

#[test]
fn deadlock_is_detected() {
    let report = check(Config::default(), || {
        let a = MMutex::new("a", ());
        let b = MMutex::new("b", ());
        let (a2, b2) = (a.clone(), b.clone());
        let t = spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join();
    });
    let violation = report.violation.expect("AB/BA locking must deadlock");
    assert!(violation.message.contains("deadlock"), "{}", violation);
}

#[test]
fn condvar_wakes_waiter() {
    let report = check(Config::default(), || {
        let ready = MMutex::new("ready", false);
        let cv = MCondvar::new("cv");
        let (r2, cv2) = (ready.clone(), cv.clone());
        let t = spawn(move || {
            *r2.lock() = true;
            cv2.notify_one();
        });
        let mut guard = ready.lock();
        while !*guard {
            guard = cv.wait(guard);
        }
        drop(guard);
        t.join();
    });
    assert!(report.passed(), "{report}");
}

#[test]
fn violation_schedule_replays_to_same_failure() {
    let model = || {
        let counter = MAtomicU64::new("counter", 0);
        let c2 = counter.clone();
        let t = spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    let found = check(Config::default(), model)
        .violation
        .expect("lost update found");
    let replayed = replay(Config::default(), &found.schedule, model)
        .violation
        .expect("replay must reproduce the failure");
    assert_eq!(replayed.message, found.message);
    assert_eq!(replayed.schedule, found.schedule);
}

#[test]
fn fuzz_finds_race_and_is_seed_deterministic() {
    let model = || {
        let counter = MAtomicU64::new("counter", 0);
        let c2 = counter.clone();
        let t = spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    };
    let first = fuzz(Config::default(), 256, 42, model);
    let second = fuzz(Config::default(), 256, 42, model);
    let (a, b) = (
        first.violation.expect("fuzzer should stumble on the race"),
        second.violation.expect("same seed, same result"),
    );
    assert_eq!(a.schedule, b.schedule, "fuzzing must be seed-deterministic");
    assert_eq!(a.seed, Some(42));
}
