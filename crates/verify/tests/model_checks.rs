//! The four serving-stack protocol models, each checked exhaustively at
//! small bounds, plus their deliberately broken mutants — which the
//! checker must reject with a reproducible trace (teeth test).
//!
//! Run with `--nocapture` to see explored-schedule counts; CI does, so a
//! coverage regression (fewer schedules explored) is visible in the log.

use sesr_verify::models::arena::{arena_model, ArenaVariant};
use sesr_verify::models::queue::{queue_model, QueueVariant};
use sesr_verify::models::seqlock::{slot_model, SeqlockVariant};
use sesr_verify::models::swap::{swap_model, SwapVariant};
use sesr_verify::{check, fuzz, replay, Config, Report, Violation};

fn assert_exhaustive_pass(name: &str, report: Report) {
    println!(
        "model-check {name}: {} schedules explored, pass (complete: {})",
        report.schedules, report.complete
    );
    assert!(report.complete, "{name}: exploration truncated");
    if let Some(violation) = &report.violation {
        panic!("{name}: unexpected violation\n{violation}");
    }
    assert!(
        report.schedules > 10,
        "{name}: suspiciously few schedules ({}) — model lost its concurrency",
        report.schedules
    );
}

fn assert_mutant_caught(name: &str, report: Report, expect_in_message: &str) -> Violation {
    let violation = report.violation.unwrap_or_else(|| {
        panic!(
            "{name}: mutant survived {} schedules — the checker has no teeth",
            report.schedules
        )
    });
    println!(
        "model-check {name}: mutant rejected after {} schedules: {}",
        report.schedules, violation.message
    );
    assert!(
        violation.message.contains(expect_in_message),
        "{name}: unexpected violation message\n{violation}"
    );
    assert!(
        !violation.trace.is_empty() && !violation.schedule.is_empty(),
        "{name}: violation must carry a replayable trace"
    );
    violation
}

// --- seqlock slot protocol -------------------------------------------------

#[test]
fn seqlock_cas_claim_passes_exhaustive() {
    let report = check(Config::with_preemptions(2), || {
        slot_model(SeqlockVariant::CasClaim)
    });
    assert_exhaustive_pass("seqlock/cas-claim", report);
}

#[test]
fn seqlock_relaxed_stamp_mutant_is_caught() {
    // The store-buffer reordering that breaks a Relaxed stamp needs a
    // commit transition in exactly the wrong place; the seeded fuzzer
    // finds it within a few hundred schedules, where the DFS order only
    // reaches it ~180k schedules in. Seed and schedule make it exactly
    // reproducible either way.
    let seed = sesr_verify::env_seed(0x0005_e512);
    let report = fuzz(Config::with_preemptions(8), 2_000, seed, || {
        slot_model(SeqlockVariant::RelaxedStamp)
    });
    let violation = assert_mutant_caught("seqlock/relaxed-stamp", report, "torn read");
    assert_eq!(violation.seed, Some(seed));
    // The recorded schedule must replay to the same torn read.
    let replayed = replay(Config::with_preemptions(8), &violation.schedule, || {
        slot_model(SeqlockVariant::RelaxedStamp)
    });
    assert_eq!(
        replayed.violation.expect("replay reproduces").message,
        violation.message
    );
}

#[test]
fn seqlock_plain_store_claim_lap_race_is_caught() {
    // The protocol the ring originally shipped: no claim CAS, so two
    // writers lapped by a full ring revolution interleave into a torn
    // event the reader accepts. This is the bug that motivated the
    // CAS-claim rewrite in crates/telemetry/src/journal.rs.
    let report = check(Config::with_preemptions(2), || {
        slot_model(SeqlockVariant::PlainStoreClaim)
    });
    assert_mutant_caught("seqlock/plain-store-claim", report, "torn read");
}

// --- bounded queue ---------------------------------------------------------

#[test]
fn queue_push_pop_close_passes_exhaustive() {
    let report = check(Config::with_preemptions(2), || {
        queue_model(QueueVariant::Correct)
    });
    assert_exhaustive_pass("queue/correct", report);
}

#[test]
fn queue_capacity_toctou_mutant_is_caught() {
    let report = check(Config::with_preemptions(2), || {
        queue_model(QueueVariant::CapacityToctou)
    });
    assert_mutant_caught("queue/capacity-toctou", report, "exceeded capacity");
}

// --- hot-reload swap/drain -------------------------------------------------

#[test]
fn swap_drain_retire_passes_exhaustive() {
    let report = check(Config::with_preemptions(2), || {
        swap_model(SwapVariant::Correct)
    });
    assert_exhaustive_pass("swap/correct", report);
}

#[test]
fn swap_drop_on_close_mutant_is_caught() {
    let report = check(Config::with_preemptions(2), || {
        swap_model(SwapVariant::DropOnClose)
    });
    assert_mutant_caught("swap/drop-on-close", report, "never processed");
}

// --- arena accounting ------------------------------------------------------

#[test]
fn arena_accounting_passes_exhaustive() {
    let report = check(Config::with_preemptions(2), || {
        arena_model(ArenaVariant::Correct)
    });
    assert_exhaustive_pass("arena/correct", report);
}

#[test]
fn arena_non_atomic_rmw_mutant_is_caught() {
    let report = check(Config::with_preemptions(2), || {
        arena_model(ArenaVariant::NonAtomicRmw)
    });
    assert_mutant_caught("arena/non-atomic-rmw", report, "arena in-use counter");
}

// --- schedule fuzzing at larger bounds -------------------------------------

#[test]
fn fuzzing_at_high_preemption_bound_stays_clean() {
    // Larger bounds than the exhaustive runs can afford; random schedules,
    // reproducible from the printed seed (SESR_VERIFY_SEED overrides).
    let seed = sesr_verify::env_seed(0x0005_e512);
    let config = || Config::with_preemptions(8);
    let cases: [(&str, fn()); 4] = [
        ("seqlock/cas-claim", || slot_model(SeqlockVariant::CasClaim)),
        ("queue/correct", || queue_model(QueueVariant::Correct)),
        ("swap/correct", || swap_model(SwapVariant::Correct)),
        ("arena/correct", || arena_model(ArenaVariant::Correct)),
    ];
    for (name, model) in cases {
        let report = fuzz(config(), 300, seed, model);
        println!(
            "model-fuzz {name}: {} random schedules (seed {seed}), pass",
            report.schedules
        );
        if let Some(violation) = &report.violation {
            panic!("{name}: fuzzing found a violation\n{violation}");
        }
    }
}
