//! The virtual scheduler: shared execution state, the baton handshake
//! between the checker thread and model threads, and transition effects.
//!
//! One execution of a model runs every model thread as a real OS thread,
//! but **exactly one actor is ever active**: either the scheduler (the
//! checker's thread) or a single granted model thread. Model threads park
//! on a condvar at every *scheduling point* — each operation on a model
//! type ([`MAtomicU64`](crate::sync::MAtomicU64),
//! [`MMutex`](crate::sync::MMutex), …) declares itself and parks before it
//! takes effect. The scheduler inspects the declared operations, picks the
//! next transition (DFS, random, or replayed), and hands the baton to that
//! thread, which applies the effect under the state lock and keeps running
//! until its next scheduling point. Interleaving is therefore decided
//! entirely by the scheduler's picks, which makes every execution
//! reproducible from its choice sequence.
//!
//! ## The memory model
//!
//! Sequential consistency is the baseline: effects apply in the order the
//! scheduler grants them. On top of that, **relaxed stores are buffered**:
//! a `store(…, Relaxed)` lands in the storing thread's private buffer
//! (visible to its own later loads, invisible to everyone else) and is
//! *committed* to shared memory by a separate scheduler transition — one
//! per pending store, in any order. Release stores and read-modify-writes
//! flush the thread's buffer first, spawn/join and mutex release/acquire
//! edges flush as the corresponding synchronization would. This is a
//! deliberately small model — it simulates store-store reordering (the
//! ARM-flavoured failure mode of a `Relaxed`-published seqlock) but not
//! load-load reordering; see the crate docs for the fine print.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Upper bound on model threads per execution; keeps state-space explosion
/// (and accidental fork bombs in models) obvious early.
pub(crate) const MAX_THREADS: usize = 8;

/// Memory-ordering class of a model operation, collapsed from
/// [`std::sync::atomic::Ordering`] to what the store-buffer model
/// distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrderClass {
    /// May be buffered / reordered.
    Relaxed,
    /// Flushes the executing thread's store buffer before taking effect.
    Sync,
}

impl OrderClass {
    pub(crate) fn of_store(order: Ordering) -> OrderClass {
        match order {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => OrderClass::Sync,
            _ => OrderClass::Relaxed,
        }
    }

    pub(crate) fn of_rmw(order: Ordering) -> OrderClass {
        match order {
            Ordering::Relaxed => OrderClass::Relaxed,
            _ => OrderClass::Sync,
        }
    }
}

/// A read-modify-write flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RmwKind {
    /// `fetch_add` (wrapping).
    Add,
    /// `fetch_sub` (wrapping).
    Sub,
    /// `fetch_max`.
    Max,
    /// `swap`.
    Swap,
    /// `compare_exchange(expected, new)`.
    Cas,
}

/// A declared model operation — what a thread is about to do at its current
/// scheduling point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Thread created, waiting to run its first instruction.
    Start,
    /// Explicit `yield_now` scheduling point.
    Yield,
    /// `spawn`: registers the child thread (release edge).
    Spawn,
    /// `join(thread)`: enabled once the target finished (acquire edge).
    Join(usize),
    /// Atomic load.
    Load { loc: usize },
    /// Atomic store.
    Store {
        loc: usize,
        value: u64,
        class: OrderClass,
    },
    /// Atomic read-modify-write. `operand2` is the CAS replacement value.
    Rmw {
        loc: usize,
        kind: RmwKind,
        operand: u64,
        operand2: u64,
        class: OrderClass,
    },
    /// Mutex acquire: enabled while unowned.
    MutexLock(usize),
    /// Mutex release (release edge).
    MutexUnlock(usize),
    /// Condvar wait: atomically releases the mutex and blocks.
    CvWait { cv: usize, mutex: usize },
    /// Condvar notify. `all` wakes every waiter, otherwise the oldest.
    CvNotify { cv: usize, all: bool },
}

/// Where a parked thread stands, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Parked at a scheduling point with a declared operation.
    AtYield(Op),
    /// Granted the baton; executing model code.
    Running,
    /// Blocked inside `Condvar::wait`, not schedulable until notified.
    BlockedCv { cv: usize, mutex: usize },
    /// Closure returned (or panicked).
    Finished,
}

/// Which actor may currently mutate model state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Actor {
    Scheduler,
    Thread(usize),
}

/// One entry in a thread's relaxed-store buffer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingStore {
    pub loc: usize,
    pub value: u64,
}

pub(crate) struct ThreadInfo {
    pub phase: Phase,
    /// Relaxed stores not yet visible to other threads, program order.
    pub pending: Vec<PendingStore>,
}

pub(crate) struct Location {
    pub name: String,
    /// The committed (globally visible) value.
    pub value: u64,
}

pub(crate) struct MutexInfo {
    pub name: String,
    pub owner: Option<usize>,
}

pub(crate) struct CvInfo {
    pub name: String,
    /// Threads parked in `wait`, oldest first.
    pub waiters: Vec<usize>,
}

/// One recorded transition, compact so the per-execution trace costs no
/// allocation beyond the `Vec` itself; rendered to text only on violation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum StepKind {
    Start,
    Yield,
    Spawn {
        child: usize,
    },
    Join {
        target: usize,
    },
    Load {
        loc: usize,
        value: u64,
        own: bool,
    },
    StoreBuffered {
        loc: usize,
        value: u64,
    },
    StoreCommitted {
        loc: usize,
        value: u64,
    },
    Rmw {
        loc: usize,
        kind: RmwKind,
        prev: u64,
        new: u64,
    },
    Lock {
        mutex: usize,
    },
    Unlock {
        mutex: usize,
    },
    CvWait {
        cv: usize,
    },
    CvNotify {
        cv: usize,
        woken: usize,
    },
    /// Scheduler-chosen commit of a buffered relaxed store.
    Commit {
        loc: usize,
        value: u64,
    },
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Step {
    pub thread: usize,
    pub kind: StepKind,
}

/// Everything an execution mutates, behind [`SchedShared::state`].
pub(crate) struct SchedState {
    pub active: Actor,
    pub abort: bool,
    pub threads: Vec<ThreadInfo>,
    pub locations: Vec<Location>,
    pub mutexes: Vec<MutexInfo>,
    pub condvars: Vec<CvInfo>,
    pub trace: Vec<Step>,
    /// First failure observed (panic message from a model thread).
    pub failure: Option<String>,
    pub os_handles: Vec<Option<std::thread::JoinHandle<()>>>,
}

pub(crate) struct SchedShared {
    pub state: Mutex<SchedState>,
    pub cv: Condvar,
}

impl SchedShared {
    pub fn new() -> Arc<SchedShared> {
        Arc::new(SchedShared {
            state: Mutex::new(SchedState {
                active: Actor::Scheduler,
                abort: false,
                threads: Vec::new(),
                locations: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                trace: Vec::new(),
                failure: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    pub fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Panic payload used to unwind model threads when an execution is torn
/// down early (violation found, or the checker is shutting down).
pub(crate) struct AbortToken;

// ---------------------------------------------------------------------------
// Per-thread context
// ---------------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    pub shared: Arc<SchedShared>,
    pub id: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<Ctx>> = const { std::cell::RefCell::new(None) };
    static LAST_PANIC_LOCATION: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's model context; panics (with a clear message) when
/// a model type is used outside [`crate::check`]/[`crate::fuzz`].
pub(crate) fn current_ctx() -> Ctx {
    CTX.with(|cell| {
        cell.borrow().clone().expect(
            "sesr-verify model types (MAtomicU64, MMutex, …) may only be used \
             inside a checker execution — wrap the code in sesr_verify::check()",
        )
    })
}

pub(crate) fn in_model_thread() -> bool {
    CTX.with(|cell| cell.borrow().is_some())
}

/// Install (once, process-wide) a panic hook that swallows the default
/// stderr report for panics on model threads: model-thread panics are
/// *expected* — they are how violations and teardown unwinds surface — and
/// the checker reports them itself. The hook records the panic location so
/// the violation message can include it.
pub(crate) fn install_panic_hook() {
    static INIT: std::sync::Once = std::sync::Once::new();
    INIT.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if in_model_thread() {
                let location = info
                    .location()
                    .map(|l| format!("{}:{}", l.file(), l.line()));
                LAST_PANIC_LOCATION.with(|cell| *cell.borrow_mut() = location);
            } else {
                default(info);
            }
        }));
    });
}

/// Turn a `catch_unwind` payload into a violation message, or `None` for
/// the checker's own teardown token.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> Option<String> {
    if payload.downcast_ref::<AbortToken>().is_some() {
        return None;
    }
    let text = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(_) => "model thread panicked with a non-string payload".to_string(),
        }
    };
    let location = LAST_PANIC_LOCATION.with(|cell| cell.borrow_mut().take());
    Some(match location {
        Some(loc) => format!("{text} (at {loc})"),
        None => text,
    })
}

// ---------------------------------------------------------------------------
// The baton: parking, granting, and applying effects
// ---------------------------------------------------------------------------

/// What applying an effect tells the yielding loop to do next.
enum EffectFlow {
    /// Operation complete; return `value` to the model code.
    Done(u64),
    /// The thread blocked (condvar wait); park again and wait for the next
    /// granted operation.
    Reparked,
}

/// Declare `op`, park until the scheduler grants it (possibly a different
/// op after condvar re-arming), apply its effect, and return its result.
pub(crate) fn yield_op(ctx: &Ctx, op: Op) -> u64 {
    // A guard dropped during a panic unwind still reaches this function
    // (mutex unlock); parking for a scheduler grant mid-unwind risks a
    // double panic on abort, so apply the effect out-of-band instead. The
    // execution is already being reported as failed — determinism of the
    // remainder no longer matters.
    if std::thread::panicking() {
        let mut st = ctx.shared.lock();
        if let Op::MutexUnlock(m) = op {
            st.mutexes[m].owner = None;
        }
        return 0;
    }

    let mut st = ctx.shared.lock();
    st.threads[ctx.id].phase = Phase::AtYield(op);
    st.active = Actor::Scheduler;
    ctx.shared.cv.notify_all();
    loop {
        while !(st.abort || st.active == Actor::Thread(ctx.id)) {
            st = ctx
                .shared
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        let granted = match st.threads[ctx.id].phase {
            Phase::AtYield(granted) => granted,
            phase => unreachable!("granted thread must be parked at a yield, found {phase:?}"),
        };
        match apply_effect(&mut st, ctx.id, granted) {
            EffectFlow::Done(value) => {
                st.threads[ctx.id].phase = Phase::Running;
                return value;
            }
            EffectFlow::Reparked => {
                st.active = Actor::Scheduler;
                ctx.shared.cv.notify_all();
            }
        }
    }
}

/// First park of a fresh thread (its `Start` op was declared at
/// registration time by the spawner).
pub(crate) fn initial_park(ctx: &Ctx) {
    let mut st = ctx.shared.lock();
    while !(st.abort || st.active == Actor::Thread(ctx.id)) {
        st = ctx
            .shared
            .cv
            .wait(st)
            .unwrap_or_else(PoisonError::into_inner);
    }
    if st.abort {
        drop(st);
        std::panic::panic_any(AbortToken);
    }
    st.trace.push(Step {
        thread: ctx.id,
        kind: StepKind::Start,
    });
    st.threads[ctx.id].phase = Phase::Running;
}

/// Mark the thread finished and hand the baton back.
pub(crate) fn finish_thread(ctx: &Ctx, failure: Option<String>) {
    let mut st = ctx.shared.lock();
    st.threads[ctx.id].phase = Phase::Finished;
    if let Some(message) = failure {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
    }
    st.active = Actor::Scheduler;
    ctx.shared.cv.notify_all();
}

/// Flush every pending store of `thread`, oldest first (a release edge).
fn flush_pending(st: &mut SchedState, thread: usize) {
    let pending = std::mem::take(&mut st.threads[thread].pending);
    for store in pending {
        st.locations[store.loc].value = store.value;
    }
}

/// Apply the effect of `op` for `thread`. Runs under the state lock while
/// the thread holds the baton, so effects are atomic transitions.
fn apply_effect(st: &mut SchedState, thread: usize, op: Op) -> EffectFlow {
    let step = |st: &mut SchedState, kind: StepKind| st.trace.push(Step { thread, kind });
    match op {
        Op::Start => unreachable!("Start is consumed by initial_park"),
        Op::Yield => {
            step(st, StepKind::Yield);
            EffectFlow::Done(0)
        }
        Op::Spawn => {
            // Everything the parent wrote is visible to the child.
            flush_pending(st, thread);
            assert!(
                st.threads.len() < MAX_THREADS,
                "model spawned more than {MAX_THREADS} threads"
            );
            let child = st.threads.len();
            st.threads.push(ThreadInfo {
                phase: Phase::AtYield(Op::Start),
                pending: Vec::new(),
            });
            st.os_handles.push(None);
            step(st, StepKind::Spawn { child });
            EffectFlow::Done(child as u64)
        }
        Op::Join(target) => {
            // Everything the joined thread wrote is visible afterwards.
            flush_pending(st, target);
            step(st, StepKind::Join { target });
            EffectFlow::Done(0)
        }
        Op::Load { loc } => {
            // A thread always sees its own latest (possibly uncommitted)
            // store; otherwise the committed value.
            let own = st.threads[thread]
                .pending
                .iter()
                .rev()
                .find(|p| p.loc == loc)
                .map(|p| p.value);
            let value = own.unwrap_or(st.locations[loc].value);
            step(
                st,
                StepKind::Load {
                    loc,
                    value,
                    own: own.is_some(),
                },
            );
            EffectFlow::Done(value)
        }
        Op::Store { loc, value, class } => match class {
            OrderClass::Relaxed => {
                // Coherence: a newer store to the same location replaces the
                // buffered one (the old value was simply never observed).
                let pending = &mut st.threads[thread].pending;
                match pending.iter_mut().find(|p| p.loc == loc) {
                    Some(entry) => entry.value = value,
                    None => pending.push(PendingStore { loc, value }),
                }
                step(st, StepKind::StoreBuffered { loc, value });
                EffectFlow::Done(0)
            }
            OrderClass::Sync => {
                flush_pending(st, thread);
                st.locations[loc].value = value;
                step(st, StepKind::StoreCommitted { loc, value });
                EffectFlow::Done(0)
            }
        },
        Op::Rmw {
            loc,
            kind,
            operand,
            operand2,
            class,
        } => {
            match class {
                // Even a relaxed RMW acts on the location's modification
                // order: the thread's own buffered store to this location
                // must land first.
                OrderClass::Relaxed => {
                    let pending = &mut st.threads[thread].pending;
                    if let Some(pos) = pending.iter().position(|p| p.loc == loc) {
                        let entry = pending.remove(pos);
                        st.locations[entry.loc].value = entry.value;
                    }
                }
                OrderClass::Sync => flush_pending(st, thread),
            }
            let prev = st.locations[loc].value;
            let new = match kind {
                RmwKind::Add => prev.wrapping_add(operand),
                RmwKind::Sub => prev.wrapping_sub(operand),
                RmwKind::Max => prev.max(operand),
                RmwKind::Swap => operand,
                RmwKind::Cas => {
                    if prev == operand {
                        operand2
                    } else {
                        prev
                    }
                }
            };
            st.locations[loc].value = new;
            step(
                st,
                StepKind::Rmw {
                    loc,
                    kind,
                    prev,
                    new,
                },
            );
            EffectFlow::Done(prev)
        }
        Op::MutexLock(mutex) => {
            assert!(
                st.mutexes[mutex].owner.is_none(),
                "scheduler granted a lock on an owned mutex (scheduler bug)"
            );
            st.mutexes[mutex].owner = Some(thread);
            step(st, StepKind::Lock { mutex });
            EffectFlow::Done(0)
        }
        Op::MutexUnlock(mutex) => {
            assert_eq!(
                st.mutexes[mutex].owner,
                Some(thread),
                "model bug: unlocked a mutex it does not own"
            );
            st.mutexes[mutex].owner = None;
            flush_pending(st, thread);
            step(st, StepKind::Unlock { mutex });
            EffectFlow::Done(0)
        }
        Op::CvWait { cv, mutex } => {
            assert_eq!(
                st.mutexes[mutex].owner,
                Some(thread),
                "model bug: Condvar::wait without holding the mutex"
            );
            st.mutexes[mutex].owner = None;
            flush_pending(st, thread);
            st.condvars[cv].waiters.push(thread);
            st.threads[thread].phase = Phase::BlockedCv { cv, mutex };
            step(st, StepKind::CvWait { cv });
            EffectFlow::Reparked
        }
        Op::CvNotify { cv, all } => {
            let woken = if all {
                std::mem::take(&mut st.condvars[cv].waiters)
            } else if st.condvars[cv].waiters.is_empty() {
                Vec::new()
            } else {
                vec![st.condvars[cv].waiters.remove(0)]
            };
            let count = woken.len();
            for waiter in woken {
                let mutex = match st.threads[waiter].phase {
                    Phase::BlockedCv { mutex, .. } => mutex,
                    phase => unreachable!("condvar waiter in phase {phase:?}"),
                };
                // A woken waiter competes for the mutex like any locker.
                st.threads[waiter].phase = Phase::AtYield(Op::MutexLock(mutex));
            }
            step(st, StepKind::CvNotify { cv, woken: count });
            EffectFlow::Done(count as u64)
        }
    }
}

// ---------------------------------------------------------------------------
// Model-thread lifecycle
// ---------------------------------------------------------------------------

/// Register a new thread in `st` and return its id. The spawner (or the
/// checker, for the root) must subsequently start an OS thread via
/// [`run_model_thread`] with the same id.
pub(crate) fn register_thread(st: &mut SchedState) -> usize {
    let id = st.threads.len();
    st.threads.push(ThreadInfo {
        phase: Phase::AtYield(Op::Start),
        pending: Vec::new(),
    });
    st.os_handles.push(None);
    id
}

/// Body of every model OS thread: bind the context, park for the first
/// grant, run the closure, report the outcome.
pub(crate) fn run_model_thread<F: FnOnce() + Send + 'static>(
    shared: Arc<SchedShared>,
    id: usize,
    f: F,
) {
    let ctx = Ctx { shared, id };
    CTX.with(|cell| *cell.borrow_mut() = Some(ctx.clone()));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        initial_park(&ctx);
        f();
    }));
    let failure = match outcome {
        Ok(()) => None,
        Err(payload) => panic_message(payload),
    };
    finish_thread(&ctx, failure);
    CTX.with(|cell| *cell.borrow_mut() = None);
}

// ---------------------------------------------------------------------------
// Registration helpers used by the model types
// ---------------------------------------------------------------------------

pub(crate) fn register_location(ctx: &Ctx, name: &str, value: u64) -> usize {
    let mut st = ctx.shared.lock();
    let id = st.locations.len();
    st.locations.push(Location {
        name: name.to_string(),
        value,
    });
    id
}

pub(crate) fn register_mutex(ctx: &Ctx, name: &str) -> usize {
    let mut st = ctx.shared.lock();
    let id = st.mutexes.len();
    st.mutexes.push(MutexInfo {
        name: name.to_string(),
        owner: None,
    });
    id
}

pub(crate) fn register_condvar(ctx: &Ctx, name: &str) -> usize {
    let mut st = ctx.shared.lock();
    let id = st.condvars.len();
    st.condvars.push(CvInfo {
        name: name.to_string(),
        waiters: Vec::new(),
    });
    id
}

// ---------------------------------------------------------------------------
// Trace rendering
// ---------------------------------------------------------------------------

/// Render the compact trace to human-readable lines, one per transition.
pub(crate) fn render_trace(st: &SchedState) -> Vec<String> {
    let loc = |i: usize| st.locations[i].name.as_str();
    let mtx = |i: usize| st.mutexes[i].name.as_str();
    let cvn = |i: usize| st.condvars[i].name.as_str();
    st.trace
        .iter()
        .map(|s| {
            let t = s.thread;
            match s.kind {
                StepKind::Start => format!("t{t} starts"),
                StepKind::Yield => format!("t{t} yields"),
                StepKind::Spawn { child } => format!("t{t} spawns t{child}"),
                StepKind::Join { target } => format!("t{t} joins t{target}"),
                StepKind::Load { loc: l, value, own } => format!(
                    "t{t} {}.load -> {value}{}",
                    loc(l),
                    if own { " (own buffered store)" } else { "" }
                ),
                StepKind::StoreBuffered { loc: l, value } => {
                    format!("t{t} {}.store({value}, Relaxed) [buffered]", loc(l))
                }
                StepKind::StoreCommitted { loc: l, value } => {
                    format!("t{t} {}.store({value}, Release)", loc(l))
                }
                StepKind::Rmw {
                    loc: l,
                    kind,
                    prev,
                    new,
                } => {
                    let name = match kind {
                        RmwKind::Add => "fetch_add",
                        RmwKind::Sub => "fetch_sub",
                        RmwKind::Max => "fetch_max",
                        RmwKind::Swap => "swap",
                        RmwKind::Cas => "compare_exchange",
                    };
                    format!("t{t} {}.{name}: {prev} -> {new}", loc(l))
                }
                StepKind::Lock { mutex } => format!("t{t} locks {}", mtx(mutex)),
                StepKind::Unlock { mutex } => format!("t{t} unlocks {}", mtx(mutex)),
                StepKind::CvWait { cv } => format!("t{t} waits on {}", cvn(cv)),
                StepKind::CvNotify { cv, woken } => {
                    format!("t{t} notifies {} ({woken} woken)", cvn(cv))
                }
                StepKind::Commit { loc: l, value } => {
                    format!("   [hw] commit of t{t}'s buffered {} = {value}", loc(l))
                }
            }
        })
        .collect()
}
