//! The exploration driver: exhaustive bounded-preemption DFS, seeded
//! schedule fuzzing, and exact replay of a recorded schedule.
//!
//! Every execution is reproducible from its **choice sequence** — the list
//! of indices the scheduler picked among the enabled transitions at each
//! step. A [`Violation`] carries that sequence plus a rendered transition
//! trace; [`replay`] re-runs it deterministically, so a failure found on
//! any machine (or by the fuzzer under any seed) can be replayed anywhere.

use crate::sched::{self, Actor, Op, Phase, SchedShared, SchedState, Step, StepKind, MAX_THREADS};
use std::sync::Arc;

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum *preemptions* per execution — context switches taken while
    /// the previously running thread was still enabled. 2–3 catches the
    /// overwhelming majority of concurrency bugs (the CHESS observation)
    /// while keeping exhaustive exploration tractable.
    pub preemption_bound: usize,
    /// Hard cap on explored schedules; exhaustive runs that hit it report
    /// `complete == false` instead of running away.
    pub max_schedules: u64,
    /// Hard cap on transitions per execution (livelock guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: 2,
            max_schedules: 1_000_000,
            max_steps: 10_000,
        }
    }
}

impl Config {
    /// Default limits with a specific preemption bound.
    pub fn with_preemptions(preemption_bound: usize) -> Config {
        Config {
            preemption_bound,
            ..Config::default()
        }
    }
}

/// A failing schedule: what went wrong and how to see it again.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The panic message (or deadlock/livelock report) from the execution.
    pub message: String,
    /// Human-readable transition trace of the failing execution.
    pub trace: Vec<String>,
    /// The scheduler's choice sequence; feed to [`replay`].
    pub schedule: Vec<usize>,
    /// The fuzzer seed that produced it, when found by [`fuzz`].
    pub seed: Option<u64>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.message)?;
        writeln!(f, "failing schedule ({} transitions):", self.trace.len())?;
        for (index, line) in self.trace.iter().enumerate() {
            writeln!(f, "  {:3}. {line}", index + 1)?;
        }
        if let Some(seed) = self.seed {
            writeln!(f, "found by fuzzing; replay with SESR_VERIFY_SEED={seed}")?;
        }
        write!(f, "replay choices: {:?}", self.schedule)
    }
}

/// How a [`Report`] was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Bounded-preemption DFS over every schedule.
    Exhaustive,
    /// Seeded random schedules.
    Fuzz,
    /// Single replayed schedule.
    Replay,
}

/// Outcome of a checking run.
#[derive(Debug)]
pub struct Report {
    /// How the schedules were generated.
    pub mode: Mode,
    /// Schedules explored (including the failing one, if any).
    pub schedules: u64,
    /// Whether the exploration finished (false only when `max_schedules`
    /// stopped an exhaustive run early).
    pub complete: bool,
    /// The first failing schedule found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// True when no violating schedule was found.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mode = match self.mode {
            Mode::Exhaustive => "exhaustive",
            Mode::Fuzz => "fuzz",
            Mode::Replay => "replay",
        };
        match &self.violation {
            None => write!(
                f,
                "{mode}: {} schedules explored, no violation{}",
                self.schedules,
                if self.complete { "" } else { " (truncated)" }
            ),
            Some(v) => write!(
                f,
                "{mode}: violation after {} schedules\n{v}",
                self.schedules
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Transitions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Transition {
    /// Grant the baton to a parked, enabled thread.
    Run(usize),
    /// Commit one buffered relaxed store to shared memory.
    Commit { thread: usize, entry: usize },
}

fn op_enabled(st: &SchedState, op: Op) -> bool {
    match op {
        Op::MutexLock(mutex) => st.mutexes[mutex].owner.is_none(),
        Op::Join(target) => st.threads[target].phase == Phase::Finished,
        _ => true,
    }
}

fn thread_enabled(st: &SchedState, thread: usize) -> bool {
    match st.threads[thread].phase {
        Phase::AtYield(op) => op_enabled(st, op),
        _ => false,
    }
}

/// Enumerate the enabled transitions, deterministically ordered: continue
/// the last-run thread first (free), then other threads ascending (each a
/// preemption when the last thread is still enabled), then store commits.
fn enumerate(
    st: &SchedState,
    last: Option<usize>,
    preemptions: usize,
    bound: usize,
) -> Vec<Transition> {
    let mut out = Vec::new();
    let last_enabled = last.is_some_and(|t| thread_enabled(st, t));
    if let Some(t) = last {
        if last_enabled {
            out.push(Transition::Run(t));
        }
    }
    let switching_preempts = last_enabled;
    for t in 0..st.threads.len() {
        if Some(t) == last || !thread_enabled(st, t) {
            continue;
        }
        if switching_preempts && preemptions >= bound {
            continue;
        }
        out.push(Transition::Run(t));
    }
    for (t, info) in st.threads.iter().enumerate() {
        for entry in 0..info.pending.len() {
            out.push(Transition::Commit { thread: t, entry });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Choice cursors
// ---------------------------------------------------------------------------

struct DfsCursor {
    /// `(taken, options)` per decision point of the schedule prefix.
    stack: Vec<(usize, usize)>,
    depth: usize,
}

impl DfsCursor {
    fn new() -> DfsCursor {
        DfsCursor {
            stack: Vec::new(),
            depth: 0,
        }
    }

    fn pick(&mut self, options: usize) -> usize {
        if self.depth < self.stack.len() {
            let (taken, recorded) = self.stack[self.depth];
            assert_eq!(
                recorded, options,
                "nondeterministic enabled set during DFS replay (checker bug)"
            );
            self.depth += 1;
            taken
        } else {
            self.stack.push((0, options));
            self.depth += 1;
            0
        }
    }

    /// Move to the next unexplored branch; false when the tree is done.
    fn advance(&mut self) -> bool {
        self.depth = 0;
        while let Some((taken, options)) = self.stack.pop() {
            if taken + 1 < options {
                self.stack.push((taken + 1, options));
                return true;
            }
        }
        false
    }
}

/// xorshift64* — deterministic, dependency-free schedule fuzzing.
struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift {
            state: seed | 1, // never zero
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

enum Cursor<'a> {
    Dfs(&'a mut DfsCursor),
    Random(&'a mut XorShift),
    Replay(&'a [usize]),
}

// ---------------------------------------------------------------------------
// One execution
// ---------------------------------------------------------------------------

enum RunOutcome {
    Complete,
    Violation(Violation),
}

fn run_once<F>(config: &Config, root: &Arc<F>, cursor: &mut Cursor<'_>) -> RunOutcome
where
    F: Fn() + Send + Sync + 'static,
{
    let shared = SchedShared::new();
    {
        let mut st = shared.lock();
        let id = sched::register_thread(&mut st);
        debug_assert_eq!(id, 0);
    }
    let root_handle = {
        let shared = Arc::clone(&shared);
        let f = Arc::clone(root);
        std::thread::spawn(move || sched::run_model_thread(shared, 0, move || f()))
    };
    shared.lock().os_handles[0] = Some(root_handle);

    let mut choices: Vec<usize> = Vec::new();
    let mut last: Option<usize> = None;
    let mut preemptions = 0usize;
    let mut steps = 0usize;

    let failure: Option<String> = loop {
        let mut st = shared.lock();
        while st.active != Actor::Scheduler {
            st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        // A model thread can park at a yield and still be mid-handshake;
        // active == Scheduler is only set once it is truly parked, so the
        // state below is quiescent.
        if let Some(message) = st.failure.take() {
            break Some(message);
        }
        if st.threads.iter().all(|t| t.phase == Phase::Finished) {
            break None;
        }
        if steps >= config.max_steps {
            break Some(format!(
                "execution exceeded max_steps = {} (livelock or unbounded loop in the model)",
                config.max_steps
            ));
        }
        let transitions = enumerate(&st, last, preemptions, config.preemption_bound);
        if transitions.is_empty() {
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.phase != Phase::Finished)
                .map(|(i, t)| format!("t{i} {:?}", t.phase))
                .collect();
            break Some(format!(
                "deadlock: no enabled transition [{}]",
                stuck.join(", ")
            ));
        }
        let pick = match cursor {
            Cursor::Dfs(dfs) => dfs.pick(transitions.len()),
            Cursor::Random(rng) => rng.below(transitions.len()),
            Cursor::Replay(schedule) => {
                let index = choices.len();
                schedule
                    .get(index)
                    .copied()
                    .unwrap_or(0)
                    .min(transitions.len() - 1)
            }
        };
        choices.push(pick);
        steps += 1;
        match transitions[pick] {
            Transition::Run(t) => {
                if let Some(previous) = last {
                    if previous != t && thread_enabled(&st, previous) {
                        preemptions += 1;
                    }
                }
                last = Some(t);
                st.active = Actor::Thread(t);
                shared.cv.notify_all();
            }
            Transition::Commit { thread, entry } => {
                let store = st.threads[thread].pending.remove(entry);
                st.locations[store.loc].value = store.value;
                st.trace.push(Step {
                    thread,
                    kind: StepKind::Commit {
                        loc: store.loc,
                        value: store.value,
                    },
                });
            }
        }
    };

    // Tear down: wake every surviving thread with the abort flag (they
    // unwind via AbortToken) and join all OS threads.
    let handles: Vec<_> = {
        let mut st = shared.lock();
        st.abort = true;
        shared.cv.notify_all();
        st.os_handles.iter_mut().map(|h| h.take()).collect()
    };
    for handle in handles.into_iter().flatten() {
        let _ = handle.join();
    }

    match failure {
        None => RunOutcome::Complete,
        Some(message) => {
            let st = shared.lock();
            RunOutcome::Violation(Violation {
                message,
                trace: sched::render_trace(&st),
                schedule: choices,
                seed: None,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Exhaustively explore every schedule of `f` within the preemption bound.
///
/// `f` runs once per schedule on a fresh model thread; model state must be
/// created inside it. Violations are panics inside `f` (assertion
/// failures), deadlocks, or livelocks.
pub fn check<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    sched::install_panic_hook();
    let root = Arc::new(f);
    let mut dfs = DfsCursor::new();
    let mut schedules = 0u64;
    loop {
        schedules += 1;
        match run_once(&config, &root, &mut Cursor::Dfs(&mut dfs)) {
            RunOutcome::Complete => {}
            RunOutcome::Violation(render) => {
                return Report {
                    mode: Mode::Exhaustive,
                    schedules,
                    complete: true,
                    violation: Some(render),
                };
            }
        }
        if !dfs.advance() {
            return Report {
                mode: Mode::Exhaustive,
                schedules,
                complete: true,
                violation: None,
            };
        }
        if schedules >= config.max_schedules {
            return Report {
                mode: Mode::Exhaustive,
                schedules,
                complete: false,
                violation: None,
            };
        }
    }
}

/// Explore `iterations` random schedules of `f`, seeded for reproduction.
///
/// The effective seed is `SESR_VERIFY_SEED` (env var) when set, otherwise
/// `seed`; the violation, if any, records it.
pub fn fuzz<F>(config: Config, iterations: u64, seed: u64, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    sched::install_panic_hook();
    let seed = env_seed(seed);
    let root = Arc::new(f);
    let mut schedules = 0u64;
    for round in 0..iterations {
        // Each round gets its own generator derived from (seed, round), so
        // one failing round is reproducible without replaying the others.
        let mut rng = XorShift::new(seed ^ round.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        schedules += 1;
        match run_once(&config, &root, &mut Cursor::Random(&mut rng)) {
            RunOutcome::Complete => {}
            RunOutcome::Violation(mut render) => {
                render.seed = Some(seed);
                return Report {
                    mode: Mode::Fuzz,
                    schedules,
                    complete: true,
                    violation: Some(render),
                };
            }
        }
    }
    Report {
        mode: Mode::Fuzz,
        schedules,
        complete: true,
        violation: None,
    }
}

/// Re-run one exact schedule (a [`Violation::schedule`]) of `f`.
pub fn replay<F>(config: Config, schedule: &[usize], f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    sched::install_panic_hook();
    let root = Arc::new(f);
    let outcome = run_once(&config, &root, &mut Cursor::Replay(schedule));
    Report {
        mode: Mode::Replay,
        schedules: 1,
        complete: true,
        violation: match outcome {
            RunOutcome::Complete => None,
            RunOutcome::Violation(render) => Some(render),
        },
    }
}

/// The fuzzing seed: `SESR_VERIFY_SEED` when set (and parseable as u64),
/// otherwise `default`.
pub fn env_seed(default: u64) -> u64 {
    std::env::var("SESR_VERIFY_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Compile-time sanity: the thread cap the scheduler enforces.
pub const fn max_threads() -> usize {
    MAX_THREADS
}
