//! `sesr-verify` — a loom-lite concurrency model checker for the SESR
//! serving stack's hand-rolled lock-free protocols.
//!
//! # What it does
//!
//! Real concurrency tests run each interleaving the OS happens to produce;
//! on the 1-CPU CI runner that is usually *one* interleaving. This crate
//! instead runs a **model** of a protocol under a deterministic virtual
//! scheduler that enumerates interleavings itself:
//!
//! - Model threads ([`sync::spawn`]) are real OS threads, but a baton
//!   handshake keeps exactly one runnable at a time; every operation on a
//!   model type is an explicit scheduling point.
//! - [`check`] drives a bounded-preemption DFS (CHESS-style) over all
//!   schedules within the preemption bound — exhaustive at small bounds.
//! - [`fuzz`] samples random schedules from a seed (`SESR_VERIFY_SEED`
//!   overrides) for larger state spaces.
//! - A failing schedule is returned as a [`Violation`]: panic message,
//!   human-readable transition trace, and the exact choice sequence, which
//!   [`replay`] re-executes deterministically.
//!
//! # Weak memory
//!
//! `Relaxed` stores through [`sync::MAtomicU64`] are buffered per thread
//! and committed to shared memory by *separate scheduler transitions*, in
//! any order — so store-store reordering (the ARM/POWER behavior that
//! breaks a seqlock stamped with `Relaxed`) is part of the explored state
//! space. `Release`/`SeqCst` stores, non-relaxed RMWs, mutex unlocks,
//! spawn, and join flush the buffer (release edges). Load-load reordering
//! is *not* modeled; the checker over-approximates acquire loads, so a
//! protocol passing here still needs its acquire annotations reviewed by
//! hand.
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::Ordering;
//!
//! // A classic lost update: two threads do load-then-store instead of
//! // fetch_add. The checker finds the interleaving that drops a count.
//! let report = sesr_verify::check(sesr_verify::Config::default(), || {
//!     let counter = sesr_verify::sync::MAtomicU64::new("counter", 0);
//!     let c2 = counter.clone();
//!     let t = sesr_verify::sync::spawn(move || {
//!         let v = c2.load(Ordering::SeqCst);
//!         c2.store(v + 1, Ordering::SeqCst);
//!     });
//!     let v = counter.load(Ordering::SeqCst);
//!     counter.store(v + 1, Ordering::SeqCst);
//!     t.join();
//!     assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
//! });
//! assert!(!report.passed());
//! ```
//!
//! The protocol models for the serving stack (seqlock event ring, bounded
//! shard queue, hot-reload swap/drain, arena accounting) live in
//! [`models`], each alongside a deliberately broken mutant that proves the
//! checker rejects the bug class it exists to catch.

#![forbid(unsafe_code)]

mod checker;
pub mod models;
mod sched;
pub mod sync;

pub use checker::{check, env_seed, fuzz, max_threads, replay, Config, Mode, Report, Violation};
