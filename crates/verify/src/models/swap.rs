//! Model of hot-reload swap + drain-retire
//! (`crates/serve/src/shard.rs` / the gateway reload path): a reloader
//! redirects submitters to a fresh queue, then closes and drains the old
//! one; the old worker must quiesce without dropping a request.
//!
//! The protocol under check:
//!
//! 1. submitters read the active-queue index (`Acquire`) and push there; a
//!    push rejected because the queue closed re-reads the index and
//!    retries (the real gateway resubmits to the new shard's sender);
//! 2. the reloader publishes the new index (`Release`) **before** closing
//!    the old queue, so a rejected submitter always finds the new queue;
//! 3. close wakes the old worker, which drains remaining items and exits;
//!    the reloader joins it (quiescence — a stuck worker is a deadlock the
//!    checker reports on its own).
//!
//! Invariant: every accepted request is processed by exactly one worker
//! (accepted and processed checksums match once both workers retired).
//!
//! [`SwapVariant::DropOnClose`] is the mutant: the reloader force-closes
//! the old queue, discarding queued items instead of letting the worker
//! drain them — a request that was accepted is never answered.

use crate::sync::{spawn, MAtomicU64, MAtomicUsize, MCondvar, MMutex};
use std::sync::atomic::Ordering;

/// Which retire protocol to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapVariant {
    /// Swap, close, drain — must pass exhaustively.
    Correct,
    /// Mutant: close discards queued items instead of draining them.
    DropOnClose,
}

struct QueueState {
    items: Vec<u64>,
    closed: bool,
}

#[derive(Clone)]
struct ModelQueue {
    state: MMutex<QueueState>,
    cv: MCondvar,
}

impl ModelQueue {
    fn new(name_state: &str, name_cv: &str) -> ModelQueue {
        ModelQueue {
            state: MMutex::new(
                name_state,
                QueueState {
                    items: Vec::new(),
                    closed: false,
                },
            ),
            cv: MCondvar::new(name_cv),
        }
    }

    /// Push unless the queue has closed; false means "resubmit elsewhere".
    fn push(&self, item: u64) -> bool {
        let mut st = self.state.lock();
        if st.closed {
            return false;
        }
        st.items.push(item);
        drop(st);
        self.cv.notify_all();
        true
    }

    fn pop(&self) -> Option<u64> {
        let mut st = self.state.lock();
        loop {
            if !st.items.is_empty() {
                return Some(st.items.remove(0));
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st);
        }
    }

    fn close(&self, variant: SwapVariant) {
        let mut st = self.state.lock();
        st.closed = true;
        if variant == SwapVariant::DropOnClose {
            // BUG under test: queued requests vanish instead of draining.
            st.items.clear();
        }
        drop(st);
        self.cv.notify_all();
    }
}

fn worker(queue: &ModelQueue, processed: &MAtomicU64) {
    while let Some(item) = queue.pop() {
        processed.fetch_add(item, Ordering::Relaxed);
    }
}

/// One execution: a submitter races the reload; old worker drains, new
/// worker takes over; nothing accepted is lost.
pub fn swap_model(variant: SwapVariant) {
    let old_queue = ModelQueue::new("old.state", "old.cv");
    let new_queue = ModelQueue::new("new.state", "new.cv");
    let active = MAtomicUsize::new("active", 0);
    let accepted = MAtomicU64::new("accepted.sum", 0);
    let processed = MAtomicU64::new("processed.sum", 0);

    let old_worker = {
        let (q, p) = (old_queue.clone(), processed.clone());
        spawn(move || worker(&q, &p))
    };
    let new_worker = {
        let (q, p) = (new_queue.clone(), processed.clone());
        spawn(move || worker(&q, &p))
    };
    let submitter = {
        let (oq, nq) = (old_queue.clone(), new_queue.clone());
        let (active, accepted) = (active.clone(), accepted.clone());
        spawn(move || {
            // Two attempts suffice: a rejection proves the old queue
            // closed, which the protocol orders after the swap.
            for _ in 0..2 {
                let target = if active.load(Ordering::Acquire) == 0 {
                    &oq
                } else {
                    &nq
                };
                if target.push(3) {
                    accepted.fetch_add(3, Ordering::Relaxed);
                    break;
                }
            }
        })
    };

    // The root is the reloader: publish the new route, then retire the old
    // queue and wait for its worker to quiesce.
    active.store(1, Ordering::Release);
    old_queue.close(variant);
    old_worker.join();

    submitter.join();
    new_queue.close(SwapVariant::Correct);
    new_worker.join();

    assert_eq!(
        accepted.load(Ordering::Acquire),
        processed.load(Ordering::Acquire),
        "a request was accepted but never processed"
    );
}
