//! Faithful models of the serving stack's concurrency protocols, plus
//! deliberately broken mutants proving the checker catches each bug class.
//!
//! Each module models one protocol from the real codebase:
//!
//! | module | protocol | source |
//! |---|---|---|
//! | [`seqlock`] | event-ring slot claim/stamp/read | `crates/telemetry/src/journal.rs` |
//! | [`queue`] | bounded submission queue push/pop/close | `crates/serve/src/shard.rs` |
//! | [`swap`] | hot-reload swap + drain-retire | `crates/serve/src/shard.rs` + gateway reload |
//! | [`arena`] | arena acquire/recycle in-use accounting | `crates/tensor/src/arena.rs` |
//!
//! Every model takes a *variant* enum selecting the correct protocol or a
//! mutant; the test suite checks the correct variant exhaustively and
//! asserts each mutant is rejected with a reproducible trace.

pub mod arena;
pub mod queue;
pub mod seqlock;
pub mod swap;
