//! Model of the tensor arena's in-use accounting
//! (`crates/tensor/src/arena.rs`): concurrent acquire/recycle pairs keep a
//! live-buffer counter and a high-water mark with single RMW instructions.
//!
//! Invariants checked on every schedule:
//!
//! - the in-use counter never underflows (a recycle always observes at
//!   least its own acquire);
//! - after every holder recycles, the counter returns to zero exactly;
//! - the high-water mark ends between 1 and the number of holders.
//!
//! [`ArenaVariant::NonAtomicRmw`] is the mutant: acquire bumps the counter
//! with a separate load + store instead of one `fetch_add`, losing an
//! update when two acquires interleave — which the recycle path then
//! reveals as an underflow or a nonzero final count.

use crate::sync::{spawn, MAtomicU64};
use std::sync::atomic::Ordering;

/// Which accounting protocol to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaVariant {
    /// Single-instruction RMW accounting — must pass exhaustively.
    Correct,
    /// Mutant: acquire uses load-then-store — lost update reachable.
    NonAtomicRmw,
}

fn acquire(variant: ArenaVariant, in_use: &MAtomicU64, high_water: &MAtomicU64) {
    let now_live = match variant {
        ArenaVariant::Correct => in_use.fetch_add(1, Ordering::Relaxed) + 1,
        ArenaVariant::NonAtomicRmw => {
            // BUG under test: a racing acquire between the load and the
            // store is silently overwritten.
            let seen = in_use.load(Ordering::Relaxed);
            in_use.store(seen + 1, Ordering::Relaxed);
            seen + 1
        }
    };
    high_water.fetch_max(now_live, Ordering::Relaxed);
}

fn recycle(in_use: &MAtomicU64) {
    let previous = in_use.fetch_sub(1, Ordering::Release);
    assert!(previous >= 1, "arena in-use counter underflowed");
}

/// One execution: two holders acquire and recycle a buffer each.
pub fn arena_model(variant: ArenaVariant) {
    let in_use = MAtomicU64::new("in_use", 0);
    let high_water = MAtomicU64::new("high_water", 0);

    let other = {
        let (in_use, high_water) = (in_use.clone(), high_water.clone());
        spawn(move || {
            acquire(variant, &in_use, &high_water);
            recycle(&in_use);
        })
    };

    // The root is the second holder.
    acquire(variant, &in_use, &high_water);
    recycle(&in_use);

    other.join();

    assert_eq!(
        in_use.load(Ordering::Acquire),
        0,
        "arena in-use counter nonzero after all buffers recycled"
    );
    let peak = high_water.load(Ordering::Acquire);
    assert!(
        (1..=2).contains(&peak),
        "high-water mark {peak} outside the possible range 1..=2"
    );
}
