//! Model of the bounded shard submission queue
//! (`crates/serve/src/shard.rs`): producers push work and receive
//! `Overloaded` when the queue is at capacity; a consumer pops until the
//! queue is closed and drained.
//!
//! Invariants checked on every schedule:
//!
//! - the queue never exceeds its capacity (the `Overloaded` contract);
//! - every *accepted* item is consumed exactly once — checksums of the
//!   accepted and popped items match after close/drain;
//! - close wakes the consumer (a schedule where it sleeps forever is a
//!   deadlock, which the checker reports on its own).
//!
//! [`QueueVariant::CapacityToctou`] is the mutant: the capacity check and
//! the insert run under *separate* lock acquisitions, so two racing
//! producers both observe a free slot and overfill the queue.

use crate::sync::{spawn, MAtomicU64, MCondvar, MMutex};
use std::sync::atomic::Ordering;

/// Which push protocol to check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueVariant {
    /// Check-and-insert under one lock — must pass exhaustively.
    Correct,
    /// Mutant: capacity checked, lock released, then inserted — overfills.
    CapacityToctou,
}

struct QueueState {
    items: Vec<u64>,
    closed: bool,
}

#[derive(Clone)]
struct ModelQueue {
    state: MMutex<QueueState>,
    cv: MCondvar,
    capacity: usize,
}

impl ModelQueue {
    fn new(capacity: usize) -> ModelQueue {
        ModelQueue {
            state: MMutex::new(
                "queue.state",
                QueueState {
                    items: Vec::new(),
                    closed: false,
                },
            ),
            cv: MCondvar::new("queue.cv"),
            capacity,
        }
    }

    /// Push `item`; false means `Overloaded` (queue at capacity).
    fn push(&self, variant: QueueVariant, item: u64) -> bool {
        match variant {
            QueueVariant::Correct => {
                let mut st = self.state.lock();
                if st.items.len() == self.capacity {
                    return false;
                }
                st.items.push(item);
                assert!(
                    st.items.len() <= self.capacity,
                    "queue exceeded capacity {} with {} items",
                    self.capacity,
                    st.items.len()
                );
                drop(st);
                self.cv.notify_all();
                true
            }
            QueueVariant::CapacityToctou => {
                let full = {
                    let st = self.state.lock();
                    st.items.len() == self.capacity
                };
                // BUG under test: the lock was released; the slot observed
                // free above can be claimed by a racing producer.
                if full {
                    return false;
                }
                let mut st = self.state.lock();
                st.items.push(item);
                assert!(
                    st.items.len() <= self.capacity,
                    "queue exceeded capacity {} with {} items",
                    self.capacity,
                    st.items.len()
                );
                drop(st);
                self.cv.notify_all();
                true
            }
        }
    }

    /// Pop the oldest item, blocking until one arrives or the queue is
    /// closed; `None` means closed-and-drained.
    fn pop(&self) -> Option<u64> {
        let mut st = self.state.lock();
        loop {
            if !st.items.is_empty() {
                return Some(st.items.remove(0));
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

/// One execution: two producers race a capacity-1 queue; a consumer
/// drains; the root closes after the producers finish.
pub fn queue_model(variant: QueueVariant) {
    let queue = ModelQueue::new(1);
    let accepted = MAtomicU64::new("accepted.sum", 0);
    let popped = MAtomicU64::new("popped.sum", 0);

    let consumer = {
        let queue = queue.clone();
        let popped = popped.clone();
        spawn(move || {
            while let Some(item) = queue.pop() {
                popped.fetch_add(item, Ordering::Relaxed);
            }
        })
    };
    let producer = {
        let queue = queue.clone();
        let accepted = accepted.clone();
        spawn(move || {
            if queue.push(variant, 7) {
                accepted.fetch_add(7, Ordering::Relaxed);
            }
        })
    };

    // The root is the second producer.
    if queue.push(variant, 11) {
        accepted.fetch_add(11, Ordering::Relaxed);
    }

    producer.join();
    queue.close();
    consumer.join();

    assert_eq!(
        accepted.load(Ordering::Acquire),
        popped.load(Ordering::Acquire),
        "accepted items and popped items diverged"
    );
}
