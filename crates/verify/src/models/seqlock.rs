//! Model of the `EventRing` seqlock slot protocol
//! (`crates/telemetry/src/journal.rs`).
//!
//! Two writers race to publish a record into the **same ring slot** (their
//! global indices differ by one full ring lap, as happens after the ring
//! wraps) while a reader snapshots it. The invariant: a reader that
//! *accepts* a record (stable, completed sequence word) must see one
//! writer's fields as a matched pair — never a mix of two writers, never
//! the slot's initial state.
//!
//! [`SeqlockVariant::CasClaim`] is the canonical protocol: a writer claims
//! the slot by CAS-ing the sequence word from a stable (even) value to its
//! own odd claim marker `2·index + 1`, abandoning the record on any
//! interference, and stamps `2·(index + 1)` with `Release` when the fields
//! are in place. Readers accept only stable non-zero *even* words.
//!
//! The mutants are the two bugs this model exists to catch:
//!
//! - [`SeqlockVariant::RelaxedStamp`] — the final stamp written `Relaxed`.
//!   The store-buffer model lets the stamp commit before the field writes,
//!   so a reader accepts the slot's stale fields.
//! - [`SeqlockVariant::PlainStoreClaim`] — the pre-claim protocol the ring
//!   originally shipped: writers "claim" with `seq.store(0)` and stamp
//!   `index + 1`, with no collision detection. Two lapped writers
//!   interleave claim/stamp so the reader accepts writer A's stamp over a
//!   mix of A's and B's fields.

use crate::sync::{spawn, MAtomicU64};
use std::sync::atomic::Ordering;

/// Which slot protocol to check. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqlockVariant {
    /// Canonical CAS-claim / odd-even protocol — must pass exhaustively.
    CasClaim,
    /// Mutant: completion stamp written `Relaxed` — torn read reachable.
    RelaxedStamp,
    /// Mutant: original claim-by-store protocol — lapped writers tear.
    PlainStoreClaim,
}

/// Ring capacity implied by the two writer indices: writer 0 records index
/// 0, writer 1 records index `LAP` (same slot, one lap later).
const LAP: u64 = 4;

fn writer(
    variant: SeqlockVariant,
    seq: &MAtomicU64,
    name: &MAtomicU64,
    value: &MAtomicU64,
    w: u64,
) {
    let index = w * LAP;
    match variant {
        SeqlockVariant::CasClaim | SeqlockVariant::RelaxedStamp => {
            let claim = 2 * index + 1;
            let stamp = 2 * (index + 1);
            let current = seq.load(Ordering::Acquire);
            if current % 2 == 1 || current >= claim {
                // Another writer is mid-flight, or a same-or-newer record
                // already owns the slot: abandon (counts as dropped).
                return;
            }
            if seq
                .compare_exchange(current, claim, Ordering::AcqRel)
                .is_err()
            {
                return;
            }
            name.store(10 + w, Ordering::Relaxed);
            value.store(100 + w, Ordering::Relaxed);
            let stamp_order = if variant == SeqlockVariant::RelaxedStamp {
                Ordering::Relaxed
            } else {
                Ordering::Release
            };
            seq.store(stamp, stamp_order);
        }
        SeqlockVariant::PlainStoreClaim => {
            seq.store(0, Ordering::Release);
            name.store(10 + w, Ordering::Relaxed);
            value.store(100 + w, Ordering::Relaxed);
            seq.store(index + 1, Ordering::Release);
        }
    }
}

fn read_once(variant: SeqlockVariant, seq: &MAtomicU64, name: &MAtomicU64, value: &MAtomicU64) {
    let before = seq.load(Ordering::Acquire);
    let stable = match variant {
        SeqlockVariant::CasClaim | SeqlockVariant::RelaxedStamp => {
            before != 0 && before.is_multiple_of(2)
        }
        SeqlockVariant::PlainStoreClaim => before != 0,
    };
    if !stable {
        return;
    }
    let n = name.load(Ordering::Relaxed);
    let v = value.load(Ordering::Relaxed);
    if seq.load(Ordering::Acquire) != before {
        return;
    }
    // Accepted: the fields must be one writer's matched pair.
    assert!(
        v == n + 90 && n >= 10,
        "torn read: accepted seq {before} with name {n} / value {v}"
    );
}

/// One execution of the model: two lapped writers, one reader, one slot.
pub fn slot_model(variant: SeqlockVariant) {
    let seq = MAtomicU64::new("slot.seq", 0);
    let name = MAtomicU64::new("slot.name", 0);
    let value = MAtomicU64::new("slot.value", 0);

    let (s0, n0, v0) = (seq.clone(), name.clone(), value.clone());
    let a = spawn(move || writer(variant, &s0, &n0, &v0, 0));
    let (s1, n1, v1) = (seq.clone(), name.clone(), value.clone());
    let b = spawn(move || writer(variant, &s1, &n1, &v1, 1));

    // The root thread is the reader.
    read_once(variant, &seq, &name, &value);

    a.join();
    b.join();
}
