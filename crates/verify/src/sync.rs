//! Model synchronization types — the vocabulary protocols are written in.
//!
//! Each type mirrors a `std::sync` counterpart but routes every operation
//! through the virtual scheduler as an explicit scheduling point:
//!
//! | model type | stands in for |
//! |---|---|
//! | [`MAtomicU64`] / [`MAtomicUsize`] | `std::sync::atomic::AtomicU64` / `AtomicUsize` |
//! | [`MMutex`] | `std::sync::Mutex` |
//! | [`MCondvar`] | `std::sync::Condvar` |
//! | [`spawn`] / [`JoinHandle`] | `std::thread::spawn` / `JoinHandle` |
//!
//! The types are `Clone`: clones alias the **same** logical variable (the
//! clone is how a model shares state across model threads, where real code
//! would share an `Arc`). They may only be used inside a checker execution
//! ([`crate::check`], [`crate::fuzz`], [`crate::replay`]); any use outside
//! one panics with a descriptive message.

use crate::sched::{self, Op, OrderClass, RmwKind};
use std::sync::atomic::Ordering;

/// Model of `AtomicU64`. Relaxed stores are buffered (visible to the
/// storing thread, committed to other threads by a later scheduler
/// transition); release stores and non-relaxed RMWs flush the buffer.
#[derive(Clone)]
pub struct MAtomicU64 {
    loc: usize,
}

impl MAtomicU64 {
    /// A new location, named for the violation trace.
    pub fn new(name: &str, value: u64) -> MAtomicU64 {
        let ctx = sched::current_ctx();
        MAtomicU64 {
            loc: sched::register_location(&ctx, name, value),
        }
    }

    fn op(&self, op: Op) -> u64 {
        let ctx = sched::current_ctx();
        sched::yield_op(&ctx, op)
    }

    /// Atomic load.
    pub fn load(&self, _order: Ordering) -> u64 {
        self.op(Op::Load { loc: self.loc })
    }

    /// Atomic store. `Relaxed` buffers; `Release`/`SeqCst` publish.
    pub fn store(&self, value: u64, order: Ordering) {
        self.op(Op::Store {
            loc: self.loc,
            value,
            class: OrderClass::of_store(order),
        });
    }

    /// Wrapping `fetch_add`; returns the previous value.
    pub fn fetch_add(&self, operand: u64, order: Ordering) -> u64 {
        self.rmw(RmwKind::Add, operand, 0, order)
    }

    /// Wrapping `fetch_sub`; returns the previous value.
    pub fn fetch_sub(&self, operand: u64, order: Ordering) -> u64 {
        self.rmw(RmwKind::Sub, operand, 0, order)
    }

    /// `fetch_max`; returns the previous value.
    pub fn fetch_max(&self, operand: u64, order: Ordering) -> u64 {
        self.rmw(RmwKind::Max, operand, 0, order)
    }

    /// `swap`; returns the previous value.
    pub fn swap(&self, operand: u64, order: Ordering) -> u64 {
        self.rmw(RmwKind::Swap, operand, 0, order)
    }

    /// `compare_exchange` (strong): `Ok(previous)` when the exchange
    /// happened, `Err(actual)` otherwise. The failure ordering is implied.
    pub fn compare_exchange(&self, expected: u64, new: u64, order: Ordering) -> Result<u64, u64> {
        let prev = self.rmw(RmwKind::Cas, expected, new, order);
        if prev == expected {
            Ok(prev)
        } else {
            Err(prev)
        }
    }

    fn rmw(&self, kind: RmwKind, operand: u64, operand2: u64, order: Ordering) -> u64 {
        self.op(Op::Rmw {
            loc: self.loc,
            kind,
            operand,
            operand2,
            class: OrderClass::of_rmw(order),
        })
    }
}

/// Model of `AtomicUsize` — a thin cast layer over [`MAtomicU64`].
#[derive(Clone)]
pub struct MAtomicUsize {
    inner: MAtomicU64,
}

impl MAtomicUsize {
    /// A new location, named for the violation trace.
    pub fn new(name: &str, value: usize) -> MAtomicUsize {
        MAtomicUsize {
            inner: MAtomicU64::new(name, value as u64),
        }
    }

    /// Atomic load.
    pub fn load(&self, order: Ordering) -> usize {
        self.inner.load(order) as usize
    }

    /// Atomic store.
    pub fn store(&self, value: usize, order: Ordering) {
        self.inner.store(value as u64, order);
    }

    /// Wrapping `fetch_add`; returns the previous value.
    pub fn fetch_add(&self, operand: usize, order: Ordering) -> usize {
        self.inner.fetch_add(operand as u64, order) as usize
    }

    /// Wrapping `fetch_sub`; returns the previous value.
    pub fn fetch_sub(&self, operand: usize, order: Ordering) -> usize {
        self.inner.fetch_sub(operand as u64, order) as usize
    }

    /// `fetch_max`; returns the previous value.
    pub fn fetch_max(&self, operand: usize, order: Ordering) -> usize {
        self.inner.fetch_max(operand as u64, order) as usize
    }
}

/// Model of `std::sync::Mutex<T>`. Lock acquisition is a scheduling point
/// enabled only while the mutex is free; release is a release edge (the
/// holder's buffered stores are published).
pub struct MMutex<T> {
    id: usize,
    data: std::sync::Arc<std::sync::Mutex<T>>,
}

impl<T> Clone for MMutex<T> {
    fn clone(&self) -> Self {
        MMutex {
            id: self.id,
            data: std::sync::Arc::clone(&self.data),
        }
    }
}

impl<T> MMutex<T> {
    /// A new mutex-protected value, named for the violation trace.
    pub fn new(name: &str, value: T) -> MMutex<T> {
        let ctx = sched::current_ctx();
        MMutex {
            id: sched::register_mutex(&ctx, name),
            data: std::sync::Arc::new(std::sync::Mutex::new(value)),
        }
    }

    /// Acquire the lock, blocking (virtually) while another model thread
    /// holds it.
    pub fn lock(&self) -> MMutexGuard<'_, T> {
        let ctx = sched::current_ctx();
        sched::yield_op(&ctx, Op::MutexLock(self.id));
        // The virtual grant guarantees the std mutex is uncontended: only
        // the virtual owner ever touches it.
        let inner = self
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MMutexGuard {
            mutex: self,
            inner: Some(inner),
        }
    }
}

/// Guard returned by [`MMutex::lock`]; releasing it is a scheduling point.
pub struct MMutexGuard<'a, T> {
    mutex: &'a MMutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for MMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard data present while live")
    }
}

impl<T> std::ops::DerefMut for MMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard data present while live")
    }
}

impl<T> Drop for MMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std guard before the virtual unlock: another thread
        // is only granted the lock after the virtual owner clears.
        self.inner = None;
        let ctx = sched::current_ctx();
        sched::yield_op(&ctx, Op::MutexUnlock(self.mutex.id));
    }
}

/// Model of `std::sync::Condvar`.
///
/// Simplifications (documented, deliberate): no spurious wakeups are
/// generated, and `notify_one` wakes the oldest waiter deterministically.
/// Models should still use the standard `while !predicate { wait }` shape.
#[derive(Clone)]
pub struct MCondvar {
    id: usize,
}

impl MCondvar {
    /// A new condvar, named for the violation trace.
    pub fn new(name: &str) -> MCondvar {
        let ctx = sched::current_ctx();
        MCondvar {
            id: sched::register_condvar(&ctx, name),
        }
    }

    /// Atomically release the guard's mutex and block until notified, then
    /// reacquire and return a fresh guard.
    pub fn wait<'a, T>(&self, mut guard: MMutexGuard<'a, T>) -> MMutexGuard<'a, T> {
        let ctx = sched::current_ctx();
        let mutex = guard.mutex;
        // Drop the std guard by hand so the guard's Drop (a MutexUnlock
        // scheduling point) does not also run.
        guard.inner = None;
        std::mem::forget(guard);
        // One yield covers the whole wait: the CvWait effect releases the
        // mutex and blocks; a notify re-arms the thread as a MutexLock
        // request, whose grant completes this call.
        sched::yield_op(
            &ctx,
            Op::CvWait {
                cv: self.id,
                mutex: mutex.id,
            },
        );
        let inner = mutex
            .data
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MMutexGuard {
            mutex,
            inner: Some(inner),
        }
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        let ctx = sched::current_ctx();
        sched::yield_op(
            &ctx,
            Op::CvNotify {
                cv: self.id,
                all: true,
            },
        );
    }

    /// Wake the oldest waiter, if any.
    pub fn notify_one(&self) {
        let ctx = sched::current_ctx();
        sched::yield_op(
            &ctx,
            Op::CvNotify {
                cv: self.id,
                all: false,
            },
        );
    }
}

/// Handle to a model thread; see [`spawn`].
pub struct JoinHandle {
    id: usize,
}

impl JoinHandle {
    /// Block (virtually) until the thread finishes. A release/acquire
    /// edge: the joined thread's writes are visible afterwards.
    pub fn join(self) {
        let ctx = sched::current_ctx();
        sched::yield_op(&ctx, Op::Join(self.id));
    }
}

/// Spawn a model thread. A scheduling point and a release edge: the
/// spawner's writes so far are visible to the child.
pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
    let ctx = sched::current_ctx();
    let child = sched::yield_op(&ctx, Op::Spawn) as usize;
    // The spawner holds the baton, so the scheduler cannot grant the child
    // before the OS thread below exists and its handle is stored.
    let shared = std::sync::Arc::clone(&ctx.shared);
    let handle = std::thread::spawn({
        let shared = std::sync::Arc::clone(&shared);
        move || sched::run_model_thread(shared, child, f)
    });
    shared.lock().os_handles[child] = Some(handle);
    JoinHandle { id: child }
}

/// An explicit scheduling point with no effect — lets the scheduler
/// preempt between two otherwise-atomic model steps.
pub fn yield_now() {
    let ctx = sched::current_ctx();
    sched::yield_op(&ctx, Op::Yield);
}
