//! The composable evaluation-plan API.
//!
//! The paper's evidence is a grid of scenarios — SR model × scale ×
//! preprocessing × attack × ε × classifier — and this module makes that grid
//! a first-class, declarative object instead of a set of hard-coded table
//! drivers:
//!
//! * [`EvalPlan`] declares an ordered list of named [`Scenario`]s (grids are
//!   just constructors that fan a config out into scenarios) and executes
//!   them on a share-nothing worker pool, one scenario per worker at a time.
//! * [`ModelBank`] is the *train-once* model provider: every trained model a
//!   scenario needs is hydrated through `sesr-store`'s
//!   [`ModelRegistry`](sesr_store::ModelRegistry), and a missing artifact is
//!   trained exactly once per `(kind, experiment-config)` pair — concurrent
//!   scenarios wait on the first trainer instead of re-training, and a
//!   second plan run over a warm store trains nothing at all.
//! * [`EvalSink`] streams results out as they complete (in declaration
//!   order, so output is deterministic): [`TextTableSink`] for humans,
//!   [`JsonSink`] for machine-readable artifacts, [`CsvSink`] for
//!   spreadsheets.
//! * [`CustomScenario`] is the extension point for scenarios that need
//!   machinery above this crate — e.g. `sesr-serve`'s gateway evaluation,
//!   which pushes attacked images through `DefenseGateway` routes instead of
//!   calling the pipeline directly.
//!
//! The legacy `experiments::run_table1..run_table4` drivers survive as
//! deprecated shims over [`EvalPlan::table1`]..[`EvalPlan::table4`] with
//! bitwise-identical output.
//!
//! # Example
//!
//! ```no_run
//! use sesr_defense::eval::{EvalPlan, ModelBank};
//! use sesr_defense::experiments::ExperimentConfig;
//!
//! let config = ExperimentConfig::quick();
//! let bank = ModelBank::open("/tmp/eval-store", config.clone())?;
//! let report = EvalPlan::table1(&config)
//!     .extend(EvalPlan::table2(&config))
//!     .run(&bank)?;
//! assert!(report.ok());
//! // A second run over the same store hydrates everything and trains nothing.
//! # Ok::<(), sesr_tensor::TensorError>(())
//! ```

mod bank;
mod plan;
mod record;
mod scenario;
mod sink;

pub use bank::{ModelBank, TrainCounts};
pub use plan::{EvalPlan, PlanReport, ScenarioMeta, ScenarioReport, ScenarioStatus};
pub use record::{EvalRecord, FieldValue};
pub use scenario::{CustomScenario, DefenseSpec, Scenario, ScenarioSpec};
pub use sink::{CsvSink, EvalSink, JsonSink, TextTableSink};
