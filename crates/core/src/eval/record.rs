//! The generic result row streamed out of scenario executions.
//!
//! A record is an ordered list of `(key, value)` fields rather than a fixed
//! struct, so one sink implementation can render every scenario kind — the
//! text sink aligns columns from the keys, the JSON sink emits one object
//! per record, and the legacy table shims reconstruct their typed rows by
//! field name.

/// One typed field value of an [`EvalRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string field (names, labels).
    Text(String),
    /// An unsigned integer field (counts, parameter totals).
    Int(u64),
    /// A floating-point field (accuracies, PSNR, latencies). `f32` sources
    /// are widened losslessly, so reconstructing the `f32` is exact.
    Float(f64),
}

impl FieldValue {
    /// Render the value as JSON (strings escaped, non-finite floats as
    /// `null`).
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::Text(s) => json_string(s),
            FieldValue::Int(v) => v.to_string(),
            FieldValue::Float(v) if v.is_finite() => format!("{v}"),
            FieldValue::Float(_) => "null".to_string(),
        }
    }

    /// Render the value for human-readable table output.
    pub fn display(&self) -> String {
        match self {
            FieldValue::Text(s) => s.clone(),
            FieldValue::Int(v) => v.to_string(),
            FieldValue::Float(v) => format!("{v:.4}"),
        }
    }
}

/// Escape a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One result row: an ordered list of named, typed fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EvalRecord {
    fields: Vec<(String, FieldValue)>,
}

impl EvalRecord {
    /// An empty record.
    pub fn new() -> Self {
        EvalRecord { fields: Vec::new() }
    }

    /// Append a text field.
    pub fn text(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields
            .push((key.to_string(), FieldValue::Text(value.into())));
        self
    }

    /// Append an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), FieldValue::Int(value)));
        self
    }

    /// Append a float field.
    pub fn float(mut self, key: &str, value: f64) -> Self {
        self.fields
            .push((key.to_string(), FieldValue::Float(value)));
        self
    }

    /// Append a float field only when `value` is present (the key is simply
    /// absent otherwise, which sinks render as a blank/`-` cell).
    pub fn maybe_float(self, key: &str, value: Option<f64>) -> Self {
        match value {
            Some(v) => self.float(key, v),
            None => self,
        }
    }

    /// Append an integer field only when `value` is present.
    pub fn maybe_int(self, key: &str, value: Option<u64>) -> Self {
        match value {
            Some(v) => self.int(key, v),
            None => self,
        }
    }

    /// The ordered fields.
    pub fn fields(&self) -> &[(String, FieldValue)] {
        &self.fields
    }

    /// Look a field up by key.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A text field's value, if present and textual.
    pub fn get_text(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(FieldValue::Text(s)) => Some(s),
            _ => None,
        }
    }

    /// An integer field's value, if present and integral.
    pub fn get_int(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(FieldValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// A float field's value, if present and floating.
    pub fn get_float(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(FieldValue::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// Render the record as one JSON object (fields in order).
    pub fn to_json(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), v.to_json()))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_getters_roundtrip() {
        let record = EvalRecord::new()
            .text("model", "SESR-M2")
            .int("params", 10_608)
            .float("psnr", 27.5)
            .maybe_float("paper_psnr", None)
            .maybe_int("paper_params", Some(10_608));
        assert_eq!(record.get_text("model"), Some("SESR-M2"));
        assert_eq!(record.get_int("params"), Some(10_608));
        assert_eq!(record.get_float("psnr"), Some(27.5));
        assert_eq!(record.get("paper_psnr"), None);
        assert_eq!(record.get_int("paper_params"), Some(10_608));
        assert_eq!(record.get_float("params"), None, "type-checked getter");
        assert_eq!(record.fields().len(), 4);
    }

    #[test]
    fn f32_fields_reconstruct_exactly() {
        let value: f32 = 0.123_456_79;
        let record = EvalRecord::new().float("acc", f64::from(value));
        assert_eq!(record.get_float("acc").unwrap() as f32, value);
    }

    #[test]
    fn json_escapes_and_handles_non_finite() {
        let record = EvalRecord::new()
            .text("name", "a\"b\\c\nd")
            .float("bad", f64::NAN)
            .float("good", 1.5);
        let json = record.to_json();
        assert!(json.contains(r#""name": "a\"b\\c\nd""#), "{json}");
        assert!(json.contains(r#""bad": null"#));
        assert!(json.contains(r#""good": 1.5"#));
    }
}
