//! The train-once model provider backing every plan run.

// lint: allow-file(atomic-ordering): train-count/ephemeral-id counters; all Relaxed, no data guarded

use crate::eval::scenario::DefenseSpec;
use crate::experiments::ExperimentConfig;
use crate::pipeline::DefensePipeline;
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_classifiers::{ClassifierKind, ClassifierTrainer, ClassifierTrainingConfig};
use sesr_datagen::{ClassificationDataset, DatasetConfig, SrDataset, SrDatasetConfig};
use sesr_models::trainer::{SrLoss, SrTrainer, SrTrainingConfig};
use sesr_models::{NetworkUpscaler, SrModelKind};
use sesr_nn::Layer;
use sesr_store::{fnv1a64, Checkpoint, ModelRegistry, ModelStore};
use sesr_tensor::TensorError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Lifetime training counters of a [`ModelBank`]; the proof object for
/// train-once semantics (a warm-store re-run reports all zeros).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrainCounts {
    /// Number of SR training runs the bank performed.
    pub sr_models: u64,
    /// Number of classifier training runs the bank performed.
    pub classifiers: u64,
}

impl TrainCounts {
    /// Total training runs.
    pub fn total(&self) -> u64 {
        self.sr_models + self.classifiers
    }
}

/// Store-backed provider of every trained model an evaluation plan needs.
///
/// All model access funnels through `sesr-store`: the bank derives a
/// config-digested artifact identity per `(kind, ExperimentConfig)` pair,
/// hydrates it through a memoizing [`ModelRegistry`], and trains **only** on
/// [`NotFound`](sesr_store::StoreError::NotFound) — at most once per pair,
/// even under concurrent scenarios (the registry serialises producers per
/// pair). Identical experiment configs therefore share trained weights
/// across scenarios, across plans and across processes, while a changed
/// config (different epochs, dataset size, seed, …) gets a fresh identity
/// and never silently reuses stale weights.
///
/// Training uses exactly the seed derivations of the legacy
/// `experiments` drivers, so plan-based tables reproduce the historical
/// numbers bit for bit.
pub struct ModelBank {
    registry: ModelRegistry,
    config: ExperimentConfig,
    sr_trainings: AtomicU64,
    classifier_trainings: AtomicU64,
    sr_dataset: Mutex<Option<Arc<SrDataset>>>,
    classification_dataset: Mutex<Option<Arc<ClassificationDataset>>>,
    /// Set only by [`ModelBank::ephemeral`]; removed on drop.
    owned_root: Option<PathBuf>,
}

static EPHEMERAL_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ModelBank {
    /// Wrap an existing store.
    pub fn new(store: ModelStore, config: ExperimentConfig) -> Self {
        ModelBank {
            registry: ModelRegistry::new(store),
            config,
            sr_trainings: AtomicU64::new(0),
            classifier_trainings: AtomicU64::new(0),
            sr_dataset: Mutex::new(None),
            classification_dataset: Mutex::new(None),
            owned_root: None,
        }
    }

    /// Open (or create) the store rooted at `root` and wrap it.
    ///
    /// # Errors
    ///
    /// Returns an error if the store root cannot be created.
    pub fn open(root: impl Into<PathBuf>, config: ExperimentConfig) -> Result<Self> {
        let store = ModelStore::open(root).map_err(TensorError::from)?;
        Ok(ModelBank::new(store, config))
    }

    /// A bank over a fresh process-unique temporary store, removed when the
    /// bank is dropped. This is what the deprecated `run_tableN` shims use:
    /// they keep their historical train-every-invocation semantics by never
    /// reusing a store.
    ///
    /// # Errors
    ///
    /// Returns an error if the temporary directory cannot be created.
    pub fn ephemeral(config: ExperimentConfig) -> Result<Self> {
        let root = std::env::temp_dir().join(format!(
            "sesr_eval_bank_{}_{}",
            std::process::id(),
            EPHEMERAL_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let mut bank = ModelBank::open(&root, config)?;
        bank.owned_root = Some(root);
        Ok(bank)
    }

    /// The experiment configuration every scenario of the plan shares.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// The underlying memoizing registry.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The underlying artifact store.
    pub fn store(&self) -> &ModelStore {
        self.registry.store()
    }

    /// How many training runs this bank has performed so far.
    pub fn train_counts(&self) -> TrainCounts {
        TrainCounts {
            sr_models: self.sr_trainings.load(Ordering::Relaxed),
            classifiers: self.classifier_trainings.load(Ordering::Relaxed),
        }
    }

    /// The shared synthetic SR dataset (generated once, memoized).
    ///
    /// # Errors
    ///
    /// Returns an error if dataset generation fails.
    pub fn sr_dataset(&self) -> Result<Arc<SrDataset>> {
        let mut slot = self.sr_dataset.lock().expect("sr dataset mutex poisoned");
        if let Some(dataset) = slot.as_ref() {
            return Ok(Arc::clone(dataset));
        }
        let dataset = Arc::new(SrDataset::generate(SrDatasetConfig {
            train_size: self.config.sr_train_size,
            val_size: self.config.sr_val_size,
            hr_size: self.config.sr_hr_size,
            scale: 2,
            seed: self.config.seed.wrapping_add(17),
        })?);
        *slot = Some(Arc::clone(&dataset));
        Ok(dataset)
    }

    /// The shared synthetic classification dataset (generated once,
    /// memoized).
    ///
    /// # Errors
    ///
    /// Returns an error if dataset generation fails.
    pub fn classification_dataset(&self) -> Result<Arc<ClassificationDataset>> {
        let mut slot = self
            .classification_dataset
            .lock()
            .expect("classification dataset mutex poisoned");
        if let Some(dataset) = slot.as_ref() {
            return Ok(Arc::clone(dataset));
        }
        let dataset = Arc::new(ClassificationDataset::generate(DatasetConfig {
            num_classes: self.config.num_classes,
            train_size: self.config.train_size,
            val_size: self.config.val_size,
            height: self.config.image_size,
            width: self.config.image_size,
            seed: self.config.seed,
        })?);
        *slot = Some(Arc::clone(&dataset));
        Ok(dataset)
    }

    fn sr_trainer(&self) -> SrTrainer {
        SrTrainer::new(SrTrainingConfig {
            epochs: self.config.sr_epochs,
            batch_size: 4,
            learning_rate: 1e-3,
            loss: SrLoss::Mae,
        })
    }

    fn classifier_trainer(&self) -> ClassifierTrainer {
        ClassifierTrainer::new(ClassifierTrainingConfig {
            epochs: self.config.classifier_epochs,
            batch_size: 12,
            learning_rate: 3e-3,
        })
    }

    /// Digest of everything that shapes SR training under this config.
    fn sr_config_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(48);
        for field in [
            self.config.sr_train_size as u64,
            self.config.sr_val_size as u64,
            self.config.sr_hr_size as u64,
            self.config.sr_epochs as u64,
            self.config.seed,
            self.sr_trainer().config().digest(),
        ] {
            bytes.extend_from_slice(&field.to_le_bytes());
        }
        fnv1a64(&bytes)
    }

    /// Digest of everything that shapes classifier training under this
    /// config.
    fn classifier_config_digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(56);
        for field in [
            self.config.num_classes as u64,
            self.config.train_size as u64,
            self.config.val_size as u64,
            self.config.image_size as u64,
            self.config.classifier_epochs as u64,
            self.config.seed,
            self.classifier_trainer().config().digest(),
        ] {
            bytes.extend_from_slice(&field.to_le_bytes());
        }
        fnv1a64(&bytes)
    }

    /// The store identity of `kind`'s trained weights under this experiment
    /// configuration. The config digest is part of the identity, so a warm
    /// store only satisfies plans that would train the exact same weights.
    pub fn sr_model_id(&self, kind: SrModelKind) -> String {
        format!("eval-{}-{:016x}", kind.slug(), self.sr_config_digest())
    }

    /// The store identity of `kind`'s trained classifier under this
    /// experiment configuration.
    pub fn classifier_model_id(&self, kind: ClassifierKind) -> String {
        format!(
            "eval-{}-{:016x}",
            kind.slug(),
            self.classifier_config_digest()
        )
    }

    fn train_sr_checkpoint(&self, kind: SrModelKind) -> Result<Checkpoint> {
        let dataset = self.sr_dataset()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1000 + kind as u64));
        let mut network = kind
            .build_local_network(&mut rng)
            .ok_or_else(|| TensorError::invalid_argument("learned kind must build a network"))?;
        let trainer = self.sr_trainer();
        trainer.train(network.as_mut(), &dataset)?;
        self.sr_trainings.fetch_add(1, Ordering::Relaxed);
        Ok(Checkpoint::from_layer(
            self.sr_model_id(kind),
            2,
            trainer.config().digest(),
            network.as_ref(),
        ))
    }

    fn train_classifier_checkpoint(&self, kind: ClassifierKind) -> Result<Checkpoint> {
        let dataset = self.classification_dataset()?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(3000 + kind as u64));
        let mut network = kind.build_local(self.config.num_classes, &mut rng);
        let trainer = self.classifier_trainer();
        trainer.train(network.as_mut(), &dataset)?;
        self.classifier_trainings.fetch_add(1, Ordering::Relaxed);
        Ok(Checkpoint::from_layer(
            self.classifier_model_id(kind),
            1,
            trainer.config().digest(),
            network.as_ref(),
        ))
    }

    /// A trained SR network for a learned `kind`: hydrated from the store,
    /// trained first (exactly once bank-wide) when the store is cold.
    ///
    /// # Errors
    ///
    /// Returns an error if `kind` is an interpolation baseline, or if
    /// training/hydration fails.
    pub fn sr_network(&self, kind: SrModelKind) -> Result<Box<dyn Layer>> {
        if !kind.is_learned() {
            return Err(TensorError::invalid_argument(format!(
                "{kind} is an interpolation baseline and has no trained network"
            )));
        }
        let model_id = self.sr_model_id(kind);
        let (checkpoint, _trained) =
            self.registry
                .hydrate_or_insert::<TensorError>(&model_id, 2, || {
                    self.train_sr_checkpoint(kind)
                })?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(2000 + kind as u64));
        let mut network = kind
            .build_local_network(&mut rng)
            .ok_or_else(|| TensorError::invalid_argument("learned kind must build a network"))?;
        checkpoint
            .apply_to(network.as_mut())
            .map_err(TensorError::from)?;
        Ok(network)
    }

    /// A defense pipeline for `spec`: `Ok(None)` for the no-defense spec,
    /// interpolation built directly, learned models hydrated/trained through
    /// the store.
    ///
    /// Every call builds an independent pipeline (share-nothing), so
    /// parallel scenarios and per-worker serving assets never contend.
    ///
    /// # Errors
    ///
    /// Returns an error if a learned model is requested at a scale other
    /// than ×2, or if training/hydration fails.
    pub fn defense(&self, spec: &DefenseSpec) -> Result<Option<DefensePipeline>> {
        let Some(kind) = spec.model else {
            return Ok(None);
        };
        if let Some(upscaler) = kind.build_interpolation(spec.scale) {
            return Ok(Some(DefensePipeline::new(spec.preprocess, upscaler)));
        }
        if spec.scale != 2 {
            return Err(TensorError::invalid_argument(format!(
                "learned local SR networks are x2-only, requested x{}",
                spec.scale
            )));
        }
        let network = self.sr_network(kind)?;
        Ok(Some(DefensePipeline::new(
            spec.preprocess,
            Box::new(NetworkUpscaler::new(kind.name(), 2, network)),
        )))
    }

    /// A trained classifier for `kind`: hydrated from the store, trained
    /// first (exactly once bank-wide) when the store is cold. Each call
    /// returns an independent instance.
    ///
    /// # Errors
    ///
    /// Returns an error if training or hydration fails.
    pub fn classifier(&self, kind: ClassifierKind) -> Result<Box<dyn Layer>> {
        let model_id = self.classifier_model_id(kind);
        let (checkpoint, _trained) =
            self.registry
                .hydrate_or_insert::<TensorError>(&model_id, 1, || {
                    self.train_classifier_checkpoint(kind)
                })?;
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(3000 + kind as u64));
        let mut network = kind.build_local(self.config.num_classes, &mut rng);
        checkpoint
            .apply_to(network.as_mut())
            .map_err(TensorError::from)?;
        Ok(network)
    }
}

impl Drop for ModelBank {
    fn drop(&mut self) {
        if let Some(root) = &self.owned_root {
            std::fs::remove_dir_all(root).ok();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PreprocessConfig;

    fn tiny_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::quick();
        config.sr_epochs = 1;
        config.classifier_epochs = 1;
        config.sr_train_size = 4;
        config.sr_val_size = 2;
        config.train_size = 12;
        config.val_size = 6;
        config
    }

    #[test]
    fn model_ids_separate_configs_and_kinds() {
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        let mut other_config = tiny_config();
        other_config.sr_epochs += 1;
        other_config.classifier_epochs += 1;
        let other = ModelBank::ephemeral(other_config).unwrap();
        assert_ne!(
            bank.sr_model_id(SrModelKind::SesrM2),
            bank.sr_model_id(SrModelKind::SesrM3)
        );
        assert_ne!(
            bank.sr_model_id(SrModelKind::SesrM2),
            other.sr_model_id(SrModelKind::SesrM2),
            "a changed training config must change the artifact identity"
        );
        assert_ne!(
            bank.classifier_model_id(ClassifierKind::MobileNetV2),
            other.classifier_model_id(ClassifierKind::MobileNetV2)
        );
    }

    #[test]
    fn sr_network_trains_once_and_is_deterministic() {
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        assert_eq!(bank.train_counts().total(), 0);
        let a = bank.sr_network(SrModelKind::SesrM2).unwrap();
        assert_eq!(bank.train_counts().sr_models, 1);
        let b = bank.sr_network(SrModelKind::SesrM2).unwrap();
        assert_eq!(
            bank.train_counts().sr_models,
            1,
            "second build must hydrate"
        );
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.value, pb.value);
        }
        assert!(bank.sr_network(SrModelKind::Bicubic).is_err());
    }

    #[test]
    fn defense_covers_every_spec_shape() {
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        assert!(bank.defense(&DefenseSpec::none()).unwrap().is_none());
        let nearest = bank
            .defense(&DefenseSpec::new(
                SrModelKind::NearestNeighbor,
                3,
                PreprocessConfig::none(),
            ))
            .unwrap()
            .unwrap();
        assert_eq!(nearest.scale(), 3, "interpolation defenses honour scale");
        assert!(
            bank.defense(&DefenseSpec::new(
                SrModelKind::SesrM2,
                3,
                PreprocessConfig::paper()
            ))
            .is_err(),
            "learned kinds are x2-only"
        );
        let learned = bank
            .defense(&DefenseSpec::paper(SrModelKind::SesrM2))
            .unwrap()
            .unwrap();
        assert_eq!(learned.upscaler_name(), "SESR-M2");
        assert_eq!(bank.train_counts().sr_models, 1);
    }

    #[test]
    fn classifier_hydration_matches_trained_instance() {
        use sesr_datagen::ClassificationDataset;
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        let mut first = bank.classifier(ClassifierKind::MobileNetV2).unwrap();
        assert_eq!(bank.train_counts().classifiers, 1);
        let mut second = bank.classifier(ClassifierKind::MobileNetV2).unwrap();
        assert_eq!(bank.train_counts().classifiers, 1);
        let dataset: Arc<ClassificationDataset> = bank.classification_dataset().unwrap();
        let image = &dataset.val_images()[0];
        assert_eq!(
            first.forward(image, false).unwrap(),
            second.forward(image, false).unwrap(),
            "hydrated instances must agree bit for bit (params and buffers)"
        );
    }

    #[test]
    fn ephemeral_root_is_removed_on_drop() {
        let bank = ModelBank::ephemeral(tiny_config()).unwrap();
        let root = bank.store().root().to_path_buf();
        assert!(root.exists());
        drop(bank);
        assert!(!root.exists());
    }
}
