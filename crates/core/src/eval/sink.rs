//! Result sinks: where a plan run streams its records.
//!
//! Sinks receive scenarios in declaration order (the runner holds completed
//! scenarios back until their prefix is done), so every sink's output is
//! deterministic regardless of worker scheduling.

use crate::eval::plan::{PlanReport, ScenarioMeta, ScenarioStatus};
use crate::eval::record::{json_string, EvalRecord, FieldValue};
use crate::Result;
use sesr_tensor::TensorError;
use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

fn io_err(context: &str, err: &std::io::Error) -> TensorError {
    TensorError::invalid_argument(format!("eval sink {context}: {err}"))
}

/// A consumer of plan results.
///
/// All methods default to no-ops so a sink only implements the events it
/// cares about.
pub trait EvalSink {
    /// Called once before any scenario, with the plan name and scenario
    /// count.
    ///
    /// # Errors
    ///
    /// A sink error aborts the plan run with that error.
    fn begin_plan(&mut self, _plan: &str, _scenarios: usize) -> Result<()> {
        Ok(())
    }

    /// Called when a scenario's results start streaming.
    ///
    /// # Errors
    ///
    /// A sink error aborts the plan run with that error.
    fn begin_scenario(&mut self, _meta: &ScenarioMeta) -> Result<()> {
        Ok(())
    }

    /// Called once per result record.
    ///
    /// # Errors
    ///
    /// A sink error aborts the plan run with that error.
    fn record(&mut self, _meta: &ScenarioMeta, _record: &EvalRecord) -> Result<()> {
        Ok(())
    }

    /// Called when a scenario's results are complete (or it failed).
    ///
    /// # Errors
    ///
    /// A sink error aborts the plan run with that error.
    fn end_scenario(
        &mut self,
        _meta: &ScenarioMeta,
        _status: &ScenarioStatus,
        _duration: Duration,
    ) -> Result<()> {
        Ok(())
    }

    /// Called once after every scenario has been emitted.
    ///
    /// # Errors
    ///
    /// A sink error fails the plan run with that error (the report is
    /// already complete at this point).
    fn end_plan(&mut self, _report: &PlanReport) -> Result<()> {
        Ok(())
    }
}

/// Human-readable sink: one aligned text table per scenario, written to any
/// [`Write`] (stdout in the plan-runner bin).
pub struct TextTableSink<W: Write> {
    out: W,
    pending: Vec<EvalRecord>,
}

impl<W: Write> TextTableSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        TextTableSink {
            out,
            pending: Vec::new(),
        }
    }

    /// The wrapped writer (useful for tests over `Vec<u8>`).
    pub fn into_inner(self) -> W {
        self.out
    }
}

/// Column layout: keys in first-appearance order across the scenario's
/// records.
fn columns(records: &[EvalRecord]) -> Vec<String> {
    let mut keys: Vec<String> = Vec::new();
    for record in records {
        for (key, _) in record.fields() {
            if !keys.contains(key) {
                keys.push(key.clone());
            }
        }
    }
    keys
}

impl<W: Write> EvalSink for TextTableSink<W> {
    fn begin_plan(&mut self, plan: &str, scenarios: usize) -> Result<()> {
        writeln!(self.out, "plan {plan}: {scenarios} scenario(s)").map_err(|e| io_err("write", &e))
    }

    fn begin_scenario(&mut self, _meta: &ScenarioMeta) -> Result<()> {
        self.pending.clear();
        Ok(())
    }

    fn record(&mut self, _meta: &ScenarioMeta, record: &EvalRecord) -> Result<()> {
        self.pending.push(record.clone());
        Ok(())
    }

    fn end_scenario(
        &mut self,
        meta: &ScenarioMeta,
        status: &ScenarioStatus,
        duration: Duration,
    ) -> Result<()> {
        let write = |out: &mut W, text: &str| {
            out.write_all(text.as_bytes())
                .map_err(|e| io_err("write", &e))
        };
        match status {
            ScenarioStatus::Failed { error } => {
                return write(
                    &mut self.out,
                    &format!("\n== {} [{}] FAILED: {error}\n", meta.name, meta.kind),
                );
            }
            ScenarioStatus::Completed { records } => {
                write(
                    &mut self.out,
                    &format!(
                        "\n== {} [{}] {records} row(s) in {:.2}s\n",
                        meta.name,
                        meta.kind,
                        duration.as_secs_f64()
                    ),
                )?;
            }
        }
        let keys = columns(&self.pending);
        if keys.is_empty() {
            return Ok(());
        }
        // Cell text first, widths second, then aligned output.
        let rows: Vec<Vec<String>> = self
            .pending
            .iter()
            .map(|record| {
                keys.iter()
                    .map(|key| record.get(key).map(FieldValue::display).unwrap_or_default())
                    .collect()
            })
            .collect();
        let widths: Vec<usize> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                rows.iter()
                    .map(|row| row[i].len())
                    .chain(std::iter::once(key.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut line = String::new();
        for (key, width) in keys.iter().zip(&widths) {
            line.push_str(&format!("{key:<width$}  "));
        }
        write(&mut self.out, &format!("{}\n", line.trim_end()))?;
        for row in &rows {
            let mut line = String::new();
            for (cell, width) in row.iter().zip(&widths) {
                line.push_str(&format!("{cell:<width$}  "));
            }
            write(&mut self.out, &format!("{}\n", line.trim_end()))?;
        }
        self.pending.clear();
        Ok(())
    }

    fn end_plan(&mut self, report: &PlanReport) -> Result<()> {
        let failed = report.failures().len();
        writeln!(
            self.out,
            "\nplan {}: {} scenario(s), {} record(s), {failed} failure(s)",
            report.plan,
            report.scenarios.len(),
            report.record_count()
        )
        .map_err(|e| io_err("write", &e))
    }
}

/// Machine-readable sink: the whole run as one JSON document (the
/// `BENCH_*.json`-style artifact the perf trajectory consumes).
///
/// The document is rendered on [`EvalSink::end_plan`]; use
/// [`JsonSink::to_path`] to also write it to a file, and
/// [`JsonSink::rendered`] to read it back programmatically.
#[derive(Default)]
pub struct JsonSink {
    path: Option<PathBuf>,
    rendered: String,
}

impl JsonSink {
    /// A sink that only renders in memory.
    pub fn new() -> Self {
        JsonSink::default()
    }

    /// A sink that additionally writes the document to `path` at plan end.
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        JsonSink {
            path: Some(path.into()),
            rendered: String::new(),
        }
    }

    /// The rendered JSON document (empty until `end_plan`).
    pub fn rendered(&self) -> &str {
        &self.rendered
    }
}

impl EvalSink for JsonSink {
    fn end_plan(&mut self, report: &PlanReport) -> Result<()> {
        let mut out = String::new();
        out.push_str(&format!("{{\n  \"plan\": {},\n", json_string(&report.plan)));
        out.push_str(&format!(
            "  \"failures\": {},\n  \"scenarios\": [\n",
            report.failures().len()
        ));
        for (index, scenario) in report.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"kind\": {}, \"ok\": {}, \"duration_ms\": {}, ",
                json_string(&scenario.meta.name),
                json_string(scenario.meta.kind),
                scenario.status.is_ok(),
                scenario.duration.as_millis()
            ));
            if let ScenarioStatus::Failed { error } = &scenario.status {
                out.push_str(&format!("\"error\": {}, ", json_string(error)));
            }
            let records: Vec<String> = scenario.records.iter().map(EvalRecord::to_json).collect();
            out.push_str(&format!("\"records\": [{}]}}", records.join(", ")));
            out.push_str(if index + 1 < report.scenarios.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        if let Some(path) = &self.path {
            std::fs::write(path, &out).map_err(|e| io_err("json write", &e))?;
        }
        self.rendered = out;
        Ok(())
    }
}

/// Spreadsheet sink: CSV rows prefixed with the scenario name and kind. A
/// header line is (re-)written whenever the field schema changes between
/// records.
pub struct CsvSink<W: Write> {
    out: W,
    schema: Vec<String>,
}

impl<W: Write> CsvSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        CsvSink {
            out,
            schema: Vec::new(),
        }
    }

    /// The wrapped writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

fn csv_cell(value: &str) -> String {
    if value.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

impl<W: Write> EvalSink for CsvSink<W> {
    fn record(&mut self, meta: &ScenarioMeta, record: &EvalRecord) -> Result<()> {
        let keys: Vec<String> = record.fields().iter().map(|(k, _)| k.clone()).collect();
        if keys != self.schema {
            let mut header = vec!["scenario".to_string(), "kind".to_string()];
            header.extend(keys.iter().map(|k| csv_cell(k)));
            writeln!(self.out, "{}", header.join(",")).map_err(|e| io_err("csv write", &e))?;
            self.schema = keys;
        }
        let mut cells = vec![csv_cell(&meta.name), csv_cell(meta.kind)];
        for (_, value) in record.fields() {
            cells.push(match value {
                FieldValue::Text(s) => csv_cell(s),
                FieldValue::Int(v) => v.to_string(),
                FieldValue::Float(v) => format!("{v}"),
            });
        }
        writeln!(self.out, "{}", cells.join(",")).map_err(|e| io_err("csv write", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ScenarioMeta {
        ScenarioMeta {
            index: 0,
            name: "table4/sesr-m2".to_string(),
            kind: "npu-latency",
        }
    }

    fn sample_record() -> EvalRecord {
        EvalRecord::new()
            .text("sr_model", "SESR-M2")
            .float("total_ms", 66.4)
            .int("frames", 15)
    }

    #[test]
    fn text_sink_renders_aligned_tables_and_failures() {
        let mut sink = TextTableSink::new(Vec::new());
        sink.begin_plan("demo", 2).unwrap();
        sink.begin_scenario(&meta()).unwrap();
        sink.record(&meta(), &sample_record()).unwrap();
        sink.end_scenario(
            &meta(),
            &ScenarioStatus::Completed { records: 1 },
            Duration::from_millis(120),
        )
        .unwrap();
        sink.end_scenario(
            &meta(),
            &ScenarioStatus::Failed {
                error: "artifact corrupt".to_string(),
            },
            Duration::ZERO,
        )
        .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("plan demo: 2 scenario(s)"));
        assert!(text.contains("sr_model"));
        assert!(text.contains("SESR-M2"));
        assert!(text.contains("66.4000"));
        assert!(text.contains("FAILED: artifact corrupt"));
    }

    #[test]
    fn json_sink_renders_a_full_document() {
        let mut sink = JsonSink::new();
        let report = PlanReport {
            plan: "demo".to_string(),
            scenarios: vec![crate::eval::plan::ScenarioReport {
                meta: meta(),
                status: ScenarioStatus::Completed { records: 1 },
                duration: Duration::from_millis(5),
                records: vec![sample_record()],
            }],
            sink_errors: Vec::new(),
        };
        sink.end_plan(&report).unwrap();
        let json = sink.rendered();
        assert!(json.contains(r#""plan": "demo""#), "{json}");
        assert!(json.contains(r#""failures": 0"#));
        assert!(json.contains(r#""sr_model": "SESR-M2""#));
        assert!(json.contains(r#""total_ms": 66.4"#));
    }

    #[test]
    fn csv_sink_writes_headers_on_schema_change() {
        let mut sink = CsvSink::new(Vec::new());
        sink.record(&meta(), &sample_record()).unwrap();
        sink.record(&meta(), &sample_record()).unwrap();
        sink.record(&meta(), &EvalRecord::new().text("other,key", "a\"b"))
            .unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "two headers + three rows: {text}");
        assert_eq!(lines[0], "scenario,kind,sr_model,total_ms,frames");
        assert_eq!(lines[1], "table4/sesr-m2,npu-latency,SESR-M2,66.4,15");
        assert_eq!(lines[3], "scenario,kind,\"other,key\"");
        assert_eq!(lines[4], "table4/sesr-m2,npu-latency,\"a\"\"b\"");
    }
}
