//! The plan object: an ordered set of scenarios, a parallel executor, and
//! the report it produces.

use crate::eval::bank::ModelBank;
use crate::eval::record::EvalRecord;
use crate::eval::scenario::{execute, CustomScenario, DefenseSpec, Scenario, ScenarioSpec};
use crate::eval::sink::EvalSink;
use crate::experiments::ExperimentConfig;
use crate::Result;
use sesr_npu::NpuConfig;
use sesr_telemetry::{Counter, Level, Probe, Telemetry};
use sesr_tensor::TensorError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identity of one scenario inside a plan run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMeta {
    /// Position in the plan's declaration order.
    pub index: usize,
    /// The scenario's unique name.
    pub name: String,
    /// Short kind tag (`"robustness"`, `"gateway"`, …).
    pub kind: &'static str,
}

/// How one scenario ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioStatus {
    /// The scenario ran to completion.
    Completed {
        /// Number of result records it produced.
        records: usize,
    },
    /// The scenario failed; the rest of the plan still ran.
    Failed {
        /// The error message.
        error: String,
    },
}

impl ScenarioStatus {
    /// `true` for [`ScenarioStatus::Completed`].
    pub fn is_ok(&self) -> bool {
        matches!(self, ScenarioStatus::Completed { .. })
    }
}

/// One scenario's full outcome.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Which scenario this is.
    pub meta: ScenarioMeta,
    /// Completion status.
    pub status: ScenarioStatus,
    /// Wall-clock execution time.
    pub duration: Duration,
    /// The result rows (empty when failed).
    pub records: Vec<EvalRecord>,
}

/// The outcome of a whole plan run, in declaration order.
#[derive(Debug, Clone)]
pub struct PlanReport {
    /// The plan's name.
    pub plan: String,
    /// Per-scenario outcomes in declaration order.
    pub scenarios: Vec<ScenarioReport>,
    /// Errors from sinks that failed mid-run. A failing sink is disabled
    /// and recorded here; the scenarios (and the other sinks) carry on, so
    /// results are never lost to a broken output channel.
    pub sink_errors: Vec<String>,
}

impl PlanReport {
    /// `true` when every scenario completed (sink failures are reported
    /// separately in [`PlanReport::sink_errors`]).
    pub fn ok(&self) -> bool {
        self.scenarios.iter().all(|s| s.status.is_ok())
    }

    /// The scenarios that failed.
    pub fn failures(&self) -> Vec<&ScenarioReport> {
        self.scenarios
            .iter()
            .filter(|s| !s.status.is_ok())
            .collect()
    }

    /// Look a scenario up by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioReport> {
        self.scenarios.iter().find(|s| s.meta.name == name)
    }

    /// Every record of every scenario, in declaration order.
    pub fn records(&self) -> impl Iterator<Item = &EvalRecord> {
        self.scenarios.iter().flat_map(|s| s.records.iter())
    }

    /// Total number of records across scenarios.
    pub fn record_count(&self) -> usize {
        self.scenarios.iter().map(|s| s.records.len()).sum()
    }
}

/// Telemetry hooks of an instrumented plan: per-scenario durations and
/// completion/failure counts.
#[derive(Debug, Clone)]
struct PlanTelemetry {
    /// Journals `eval.scenario` per completed scenario (request = the
    /// scenario's declaration index) and feeds `eval.scenario_ns`.
    scenario: Probe,
    /// Journals `eval.scenario_failed` at Warn for failed scenarios.
    scenario_failed: Probe,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
}

/// A declarative, ordered set of named scenarios, executed in parallel on a
/// share-nothing worker pool and streamed to sinks in declaration order.
#[derive(Debug, Clone)]
pub struct EvalPlan {
    name: String,
    scenarios: Vec<Scenario>,
    workers: Option<usize>,
    telemetry: Option<PlanTelemetry>,
}

impl EvalPlan {
    /// An empty plan.
    pub fn new(name: impl Into<String>) -> Self {
        EvalPlan {
            name: name.into(),
            scenarios: Vec::new(),
            workers: None,
            telemetry: None,
        }
    }

    /// Record execution telemetry into `hub`: each completed scenario's
    /// wall-clock duration lands in the `eval.scenario_ns` histogram and an
    /// `eval.scenario` journal event (tagged with the scenario's declaration
    /// index); completions and failures are counted as
    /// `eval.scenarios_completed` / `eval.scenarios_failed`.
    pub fn with_telemetry(mut self, hub: &Telemetry) -> Self {
        self.telemetry = Some(PlanTelemetry {
            scenario: hub.probe("eval.scenario", Level::Info, Some("eval.scenario_ns")),
            scenario_failed: hub.probe("eval.scenario_failed", Level::Warn, None),
            completed: hub.metrics().counter("eval.scenarios_completed"),
            failed: hub.metrics().counter("eval.scenarios_failed"),
        });
        self
    }

    /// The plan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a scenario.
    pub fn scenario(mut self, name: impl Into<String>, spec: ScenarioSpec) -> Self {
        self.scenarios.push(Scenario {
            name: name.into(),
            spec,
        });
        self
    }

    /// Append an externally implemented scenario (e.g. `sesr-serve`'s
    /// gateway evaluation).
    pub fn custom(self, name: impl Into<String>, custom: Arc<dyn CustomScenario>) -> Self {
        self.scenario(name, ScenarioSpec::Custom(custom))
    }

    /// Append every scenario of `other` (names must stay unique).
    pub fn extend(mut self, other: EvalPlan) -> Self {
        self.scenarios.extend(other.scenarios);
        self
    }

    /// Keep only scenarios whose name contains at least one of `needles`
    /// (an empty needle list keeps everything).
    pub fn filter(mut self, needles: &[String]) -> Self {
        if !needles.is_empty() {
            self.scenarios.retain(|s| {
                needles
                    .iter()
                    .any(|needle| s.name.contains(needle.as_str()))
            });
        }
        self
    }

    /// Cap the worker pool (default: available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// `true` when the plan has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenario names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name.as_str()).collect()
    }

    /// The scenarios in declaration order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// The Table I plan: one [`ScenarioSpec::SrQuality`] scenario per
    /// learned SR model in the config.
    pub fn table1(config: &ExperimentConfig) -> EvalPlan {
        let mut plan = EvalPlan::new("table1");
        for kind in config.sr_kinds.iter().filter(|k| k.is_learned()) {
            plan = plan.scenario(
                format!("table1/{}", kind.slug()),
                ScenarioSpec::SrQuality { sr: *kind },
            );
        }
        plan
    }

    /// The Table II plan: one [`ScenarioSpec::Robustness`] section per
    /// classifier — "No Defense" plus every configured SR model, against
    /// every configured attack at the config's ε.
    pub fn table2(config: &ExperimentConfig) -> EvalPlan {
        let mut defenses = vec![DefenseSpec::none()];
        defenses.extend(config.sr_kinds.iter().map(|k| DefenseSpec::paper(*k)));
        let mut plan = EvalPlan::new("table2");
        for classifier in &config.classifiers {
            plan = plan.scenario(
                format!("table2/{}", classifier.slug()),
                ScenarioSpec::Robustness {
                    classifier: *classifier,
                    defenses: defenses.clone(),
                    attacks: config.attacks.clone(),
                    epsilons: vec![config.attack.epsilon],
                },
            );
        }
        plan
    }

    /// The Table III plan: one [`ScenarioSpec::JpegAblation`] scenario per
    /// classifier over the learned SR models.
    pub fn table3(config: &ExperimentConfig) -> EvalPlan {
        let defenses: Vec<_> = config
            .sr_kinds
            .iter()
            .copied()
            .filter(|k| k.is_learned())
            .collect();
        let mut plan = EvalPlan::new("table3");
        for classifier in &config.classifiers {
            plan = plan.scenario(
                format!("table3/{}", classifier.slug()),
                ScenarioSpec::JpegAblation {
                    classifier: *classifier,
                    defenses: defenses.clone(),
                    attacks: config.attacks.clone(),
                },
            );
        }
        plan
    }

    /// The Table IV plan: one [`ScenarioSpec::NpuLatency`] scenario per SR
    /// model of the paper's Table IV row order.
    pub fn table4(npu: &NpuConfig) -> EvalPlan {
        let mut plan = EvalPlan::new("table4");
        for kind in crate::experiments::table4_sr_models() {
            plan = plan.scenario(
                format!("table4/{}", kind.slug()),
                ScenarioSpec::NpuLatency {
                    sr: kind,
                    npu: npu.clone(),
                },
            );
        }
        plan
    }

    /// The transfer-attack plan: one [`ScenarioSpec::TransferAttack`]
    /// scenario per ordered pair of distinct configured classifiers, over
    /// "No Defense" plus the configured SR models.
    pub fn transfer(config: &ExperimentConfig) -> EvalPlan {
        let mut defenses = vec![DefenseSpec::none()];
        defenses.extend(config.sr_kinds.iter().map(|k| DefenseSpec::paper(*k)));
        let mut plan = EvalPlan::new("transfer");
        for source in &config.classifiers {
            for target in &config.classifiers {
                if source == target {
                    continue;
                }
                plan = plan.scenario(
                    format!("transfer/{}-to-{}", source.slug(), target.slug()),
                    ScenarioSpec::TransferAttack {
                        source: *source,
                        target: *target,
                        defenses: defenses.clone(),
                        attacks: config.attacks.clone(),
                    },
                );
            }
        }
        plan
    }

    /// Execute the plan without sinks; results live in the returned report.
    ///
    /// # Errors
    ///
    /// Returns an error only for plan-level failures (duplicate scenario
    /// names). Individual scenario failures are recorded in the report —
    /// check [`PlanReport::ok`].
    pub fn run(&self, bank: &ModelBank) -> Result<PlanReport> {
        self.run_with_sinks(bank, &mut [])
    }

    /// Execute the plan, streaming results to `sinks`.
    ///
    /// Scenarios run share-nothing on a pool of up to
    /// [`EvalPlan::workers`] threads (default: available parallelism, capped
    /// by the scenario count). Completed scenarios are emitted to the sinks
    /// in **declaration order** as soon as their prefix is complete, so sink
    /// output is deterministic regardless of scheduling.
    ///
    /// A sink that fails (e.g. stdout closed behind a `| head`) is disabled
    /// for the rest of the run and its error recorded in
    /// [`PlanReport::sink_errors`]; the other sinks keep streaming and the
    /// computed results are never lost.
    ///
    /// # Errors
    ///
    /// Returns an error for duplicate scenario names. Individual scenario
    /// failures are recorded in the report instead — check
    /// [`PlanReport::ok`] — and sink failures in
    /// [`PlanReport::sink_errors`].
    pub fn run_with_sinks(
        &self,
        bank: &ModelBank,
        sinks: &mut [&mut dyn EvalSink],
    ) -> Result<PlanReport> {
        for (i, scenario) in self.scenarios.iter().enumerate() {
            if self.scenarios[..i].iter().any(|s| s.name == scenario.name) {
                return Err(TensorError::invalid_argument(format!(
                    "scenario {:?} is declared twice",
                    scenario.name
                )));
            }
        }
        let total = self.scenarios.len();
        let mut sink_alive: Vec<bool> = vec![true; sinks.len()];
        let mut sink_errors: Vec<String> = Vec::new();
        for (index, sink) in sinks.iter_mut().enumerate() {
            if let Err(err) = sink.begin_plan(&self.name, total) {
                sink_alive[index] = false;
                sink_errors.push(err.to_string());
            }
        }

        let worker_count = self
            .workers
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .clamp(1, total.max(1));

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Duration, Result<Vec<EvalRecord>>)>();
        let scenarios = &self.scenarios;
        let mut slots: Vec<Option<ScenarioReport>> = (0..total).map(|_| None).collect();

        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                let tx = tx.clone();
                let next = &next;
                scope.spawn(move || loop {
                    // lint: allow(atomic-ordering): work-stealing index; Relaxed suffices, no data published through it
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let started = Instant::now();
                    let result = execute(&scenarios[index], bank);
                    if tx.send((index, started.elapsed(), result)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Stream completed scenarios to the sinks in declaration order.
            let mut emitted = 0usize;
            while let Ok((index, duration, result)) = rx.recv() {
                let meta = ScenarioMeta {
                    index,
                    name: scenarios[index].name.clone(),
                    kind: scenarios[index].spec.kind(),
                };
                let (status, records) = match result {
                    Ok(records) => (
                        ScenarioStatus::Completed {
                            records: records.len(),
                        },
                        records,
                    ),
                    Err(err) => (
                        ScenarioStatus::Failed {
                            error: err.to_string(),
                        },
                        Vec::new(),
                    ),
                };
                if let Some(telemetry) = &self.telemetry {
                    if status.is_ok() {
                        telemetry.completed.incr();
                        telemetry.scenario.observe(index as u64, duration);
                    } else {
                        telemetry.failed.incr();
                        telemetry.scenario_failed.observe(index as u64, duration);
                    }
                }
                slots[index] = Some(ScenarioReport {
                    meta,
                    status,
                    duration,
                    records,
                });
                while emitted < total {
                    let Some(report) = &slots[emitted] else { break };
                    emit_scenario(sinks, &mut sink_alive, &mut sink_errors, report);
                    emitted += 1;
                }
            }
        });

        let mut report = PlanReport {
            plan: self.name.clone(),
            scenarios: slots.into_iter().flatten().collect(),
            sink_errors: Vec::new(),
        };
        for (index, sink) in sinks.iter_mut().enumerate() {
            if !sink_alive[index] {
                continue;
            }
            if let Err(err) = sink.end_plan(&report) {
                sink_errors.push(err.to_string());
            }
        }
        report.sink_errors = sink_errors;
        Ok(report)
    }
}

/// Emit one scenario to every still-healthy sink, disabling (and recording)
/// any sink that fails so the remaining sinks keep their artifacts.
fn emit_scenario(
    sinks: &mut [&mut dyn EvalSink],
    sink_alive: &mut [bool],
    sink_errors: &mut Vec<String>,
    report: &ScenarioReport,
) {
    for (index, sink) in sinks.iter_mut().enumerate() {
        if !sink_alive[index] {
            continue;
        }
        let result = sink.begin_scenario(&report.meta).and_then(|()| {
            for record in &report.records {
                sink.record(&report.meta, record)?;
            }
            sink.end_scenario(&report.meta, &report.status, report.duration)
        });
        if let Err(err) = result {
            sink_alive[index] = false;
            sink_errors.push(err.to_string());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_models::SrModelKind;

    fn npu_plan() -> EvalPlan {
        EvalPlan::table4(&NpuConfig::ethos_u55_256())
    }

    fn tiny_bank() -> ModelBank {
        ModelBank::ephemeral(ExperimentConfig::quick()).unwrap()
    }

    #[test]
    fn plan_builders_cover_the_config() {
        let config = ExperimentConfig::quick();
        assert_eq!(EvalPlan::table1(&config).len(), 1, "one learned kind");
        assert_eq!(EvalPlan::table2(&config).len(), config.classifiers.len());
        assert_eq!(EvalPlan::table3(&config).len(), config.classifiers.len());
        assert_eq!(npu_plan().len(), 4);
        // One classifier -> no transfer pairs; two -> both ordered pairs.
        assert!(EvalPlan::transfer(&config).is_empty());
        let mut two = config.clone();
        two.classifiers = sesr_classifiers::ClassifierKind::all();
        assert_eq!(EvalPlan::transfer(&two).len(), 6);
    }

    #[test]
    fn filter_selects_by_substring() {
        let plan = npu_plan();
        assert_eq!(
            plan.clone()
                .filter(&["sesr-m2".to_string(), "fsrcnn".to_string()])
                .names(),
            vec!["table4/fsrcnn", "table4/sesr-m2"]
        );
        assert_eq!(plan.clone().filter(&[]).len(), 4, "empty filter keeps all");
        assert!(plan.filter(&["nonexistent".to_string()]).is_empty());
    }

    #[test]
    fn run_executes_in_declaration_order_and_reports() {
        let bank = tiny_bank();
        let report = npu_plan().workers(3).run(&bank).unwrap();
        assert!(report.ok());
        assert_eq!(report.scenarios.len(), 4);
        let names: Vec<_> = report.scenarios.iter().map(|s| &s.meta.name).collect();
        assert_eq!(
            names,
            vec![
                "table4/fsrcnn",
                "table4/sesr-m5",
                "table4/sesr-m3",
                "table4/sesr-m2"
            ]
        );
        assert_eq!(report.record_count(), 4);
        assert_eq!(
            report.scenario("table4/sesr-m2").unwrap().records[0].get_text("sr_model"),
            Some("SESR-M2")
        );
        assert_eq!(bank.train_counts().total(), 0, "table 4 is analytic");
    }

    #[test]
    fn failed_scenarios_are_reported_not_fatal() {
        struct Failing;
        impl CustomScenario for Failing {
            fn run(&self, _bank: &ModelBank) -> Result<Vec<EvalRecord>> {
                Err(TensorError::invalid_argument("boom"))
            }
        }
        let bank = tiny_bank();
        let plan = EvalPlan::new("mixed")
            .custom("will-fail", Arc::new(Failing))
            .scenario(
                "will-pass",
                ScenarioSpec::NpuLatency {
                    sr: SrModelKind::SesrM2,
                    npu: NpuConfig::ethos_u55_256(),
                },
            );
        let report = plan.run(&bank).unwrap();
        assert!(!report.ok());
        assert_eq!(report.failures().len(), 1);
        assert_eq!(report.failures()[0].meta.name, "will-fail");
        assert!(matches!(
            &report.failures()[0].status,
            ScenarioStatus::Failed { error } if error.contains("boom")
        ));
        assert!(report.scenario("will-pass").unwrap().status.is_ok());
    }

    #[test]
    fn instrumented_plans_time_every_scenario() {
        let bank = tiny_bank();
        let hub = Telemetry::new();
        struct Failing;
        impl CustomScenario for Failing {
            fn run(&self, _bank: &ModelBank) -> Result<Vec<EvalRecord>> {
                Err(TensorError::invalid_argument("boom"))
            }
        }
        let plan = npu_plan()
            .custom("will-fail", Arc::new(Failing))
            .with_telemetry(&hub);
        let report = plan.run(&bank).unwrap();
        assert_eq!(report.scenarios.len(), 5);

        let snapshot = hub.snapshot();
        assert_eq!(snapshot.counter("eval.scenarios_completed"), Some(4));
        assert_eq!(snapshot.counter("eval.scenarios_failed"), Some(1));
        assert_eq!(snapshot.histogram("eval.scenario_ns").unwrap().count, 4);
        let failed: Vec<_> = snapshot
            .events
            .iter()
            .filter(|e| e.name == "eval.scenario_failed")
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0].request, 4,
            "the failure event carries the scenario's declaration index"
        );
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let bank = tiny_bank();
        let plan = npu_plan().extend(npu_plan());
        assert!(plan.run(&bank).is_err());
    }

    #[test]
    fn a_failing_sink_is_disabled_without_losing_results() {
        use crate::eval::sink::JsonSink;

        /// A sink whose output channel breaks on the first record (think
        /// `| head` closing stdout).
        struct BrokenPipe {
            records_before_failure: usize,
        }
        impl EvalSink for BrokenPipe {
            fn record(&mut self, _meta: &ScenarioMeta, _record: &EvalRecord) -> Result<()> {
                self.records_before_failure += 1;
                Err(TensorError::invalid_argument("broken pipe"))
            }
        }

        let bank = tiny_bank();
        let mut broken = BrokenPipe {
            records_before_failure: 0,
        };
        let mut json = JsonSink::new();
        let mut sinks: Vec<&mut dyn EvalSink> = vec![&mut broken, &mut json];
        let report = npu_plan().run_with_sinks(&bank, &mut sinks).unwrap();

        assert!(report.ok(), "scenarios themselves all succeeded");
        assert_eq!(report.record_count(), 4, "no result was lost");
        assert_eq!(report.sink_errors.len(), 1);
        assert!(report.sink_errors[0].contains("broken pipe"));
        assert_eq!(
            broken.records_before_failure, 1,
            "the failing sink must be disabled after its first error"
        );
        assert!(
            json.rendered().contains("\"sr_model\": \"SESR-M2\""),
            "the healthy sink still produced its full artifact"
        );
    }
}
