//! Scenario declarations and their share-nothing executors.

use crate::eval::bank::ModelBank;
use crate::eval::record::EvalRecord;
use crate::pipeline::PreprocessConfig;
use crate::robustness::RobustnessEvaluator;
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_attacks::AttackKind;
use sesr_classifiers::ClassifierKind;
use sesr_models::cost::{paper_cost, paper_reported, paper_reported_psnr};
use sesr_models::trainer::evaluate_network_psnr;
use sesr_models::SrModelKind;
use sesr_npu::{estimate_pipeline, NpuConfig, PipelineLatency};
use sesr_tensor::{Tensor, TensorError};
use std::sync::Arc;

/// One point of the defense grid: which upscaler (or none), at which scale,
/// behind which preprocessing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseSpec {
    /// The SR model defending this point, or `None` for the undefended
    /// baseline row.
    pub model: Option<SrModelKind>,
    /// Upscaling factor (learned local networks are ×2-only; interpolation
    /// baselines accept any factor).
    pub scale: usize,
    /// The non-learned preprocessing stages.
    pub preprocess: PreprocessConfig,
}

impl DefenseSpec {
    /// The undefended baseline ("No Defense" row).
    pub fn none() -> Self {
        DefenseSpec {
            model: None,
            scale: 1,
            preprocess: PreprocessConfig::none(),
        }
    }

    /// An explicit grid point.
    pub fn new(model: SrModelKind, scale: usize, preprocess: PreprocessConfig) -> Self {
        DefenseSpec {
            model: Some(model),
            scale,
            preprocess,
        }
    }

    /// The paper's configuration for `model`: ×2 with JPEG + wavelet
    /// preprocessing.
    pub fn paper(model: SrModelKind) -> Self {
        DefenseSpec::new(model, 2, PreprocessConfig::paper())
    }

    /// Display name used in result rows (`"No Defense"` or the model name).
    pub fn name(&self) -> String {
        match self.model {
            Some(kind) => kind.name().to_string(),
            None => "No Defense".to_string(),
        }
    }

    /// Compact identity label, e.g. `"sesr-m2:x2:jpeg75+wavelet2"` or
    /// `"none"`.
    pub fn label(&self) -> String {
        match self.model {
            Some(kind) => format!(
                "{}:x{}:{}",
                kind.slug(),
                self.scale,
                self.preprocess.label()
            ),
            None => "none".to_string(),
        }
    }
}

/// A scenario implemented outside this crate (e.g. `sesr-serve`'s gateway
/// evaluation). The implementation pulls every trained model it needs from
/// the [`ModelBank`], so it inherits train-once semantics for free.
pub trait CustomScenario: Send + Sync {
    /// Short scenario-kind tag shown in reports (e.g. `"gateway"`).
    fn kind(&self) -> &'static str {
        "custom"
    }

    /// Execute the scenario against the shared model bank.
    ///
    /// # Errors
    ///
    /// Implementation-defined; a failure marks this scenario failed without
    /// aborting the rest of the plan.
    fn run(&self, bank: &ModelBank) -> Result<Vec<EvalRecord>>;
}

/// What one scenario evaluates.
#[derive(Clone)]
pub enum ScenarioSpec {
    /// Table I row: train/hydrate one learned SR model, measure PSNR on the
    /// shared validation set, report analytic paper-scale cost.
    SrQuality {
        /// The learned SR model.
        sr: SrModelKind,
    },
    /// Table II section generalised: one classifier against a defense grid
    /// × attack grid × ε grid (the legacy driver could only express a single
    /// ε).
    Robustness {
        /// The classifier under attack.
        classifier: ClassifierKind,
        /// Defense grid (row order).
        defenses: Vec<DefenseSpec>,
        /// Attack grid (column order).
        attacks: Vec<AttackKind>,
        /// Perturbation budgets; each produces one row set.
        epsilons: Vec<f32>,
    },
    /// Table III rows for one classifier: robustness with and without the
    /// JPEG stage, per learned defense and attack.
    JpegAblation {
        /// The classifier under attack.
        classifier: ClassifierKind,
        /// Learned SR models to ablate.
        defenses: Vec<SrModelKind>,
        /// Attacks to evaluate.
        attacks: Vec<AttackKind>,
    },
    /// Table IV row: analytic end-to-end latency of the enlarged
    /// MobileNet-V2 plus one SR model on a micro-NPU.
    NpuLatency {
        /// The SR model.
        sr: SrModelKind,
        /// The NPU configuration to estimate on.
        npu: NpuConfig,
    },
    /// Cross-model transfer attack: adversarial examples crafted against
    /// `source` are defended and evaluated on `target` — the black-box
    /// transferability protocol the legacy API could not express.
    TransferAttack {
        /// The surrogate classifier the attacker has gradients for.
        source: ClassifierKind,
        /// The deployed classifier actually being evaluated.
        target: ClassifierKind,
        /// Defense grid.
        defenses: Vec<DefenseSpec>,
        /// Attacks to evaluate.
        attacks: Vec<AttackKind>,
    },
    /// An externally implemented scenario.
    Custom(Arc<dyn CustomScenario>),
}

impl ScenarioSpec {
    /// Short kind tag shown in reports and sinks.
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioSpec::SrQuality { .. } => "sr-quality",
            ScenarioSpec::Robustness { .. } => "robustness",
            ScenarioSpec::JpegAblation { .. } => "jpeg-ablation",
            ScenarioSpec::NpuLatency { .. } => "npu-latency",
            ScenarioSpec::TransferAttack { .. } => "transfer-attack",
            ScenarioSpec::Custom(custom) => custom.kind(),
        }
    }
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.kind())
    }
}

/// One named scenario of a plan.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name within the plan, e.g. `"table2/mobilenet-v2"`; the handle
    /// `--filter` and reports use.
    pub name: String,
    /// What to evaluate.
    pub spec: ScenarioSpec,
}

/// Execute one scenario against the bank, producing its result rows.
pub(crate) fn execute(scenario: &Scenario, bank: &ModelBank) -> Result<Vec<EvalRecord>> {
    match &scenario.spec {
        ScenarioSpec::SrQuality { sr } => run_sr_quality(*sr, bank),
        ScenarioSpec::Robustness {
            classifier,
            defenses,
            attacks,
            epsilons,
        } => run_robustness(*classifier, defenses, attacks, epsilons, bank),
        ScenarioSpec::JpegAblation {
            classifier,
            defenses,
            attacks,
        } => run_jpeg_ablation(*classifier, defenses, attacks, bank),
        ScenarioSpec::NpuLatency { sr, npu } => run_npu_latency(*sr, npu),
        ScenarioSpec::TransferAttack {
            source,
            target,
            defenses,
            attacks,
        } => run_transfer(*source, *target, defenses, attacks, bank),
        ScenarioSpec::Custom(custom) => custom.run(bank),
    }
}

fn run_sr_quality(kind: SrModelKind, bank: &ModelBank) -> Result<Vec<EvalRecord>> {
    let mut network = bank.sr_network(kind)?;
    let dataset = bank.sr_dataset()?;
    let measured_psnr = evaluate_network_psnr(network.as_mut(), &dataset)?;
    let cost = paper_cost(kind)?
        .ok_or_else(|| TensorError::invalid_argument("learned kind must have a cost"))?;
    let reported = paper_reported(kind);
    Ok(vec![EvalRecord::new()
        .text("model", kind.name())
        .int("params", cost.params)
        .int("macs", cost.macs)
        .float("measured_psnr", f64::from(measured_psnr))
        .maybe_float("paper_psnr", paper_reported_psnr(kind).map(f64::from))
        .maybe_int("paper_params", reported.map(|r| r.params))
        .maybe_int("paper_macs", reported.map(|r| r.macs))])
}

fn evaluator_for(
    classifier: ClassifierKind,
    bank: &ModelBank,
) -> Result<(RobustnessEvaluator, f32)> {
    let dataset = bank.classification_dataset()?;
    let network = bank.classifier(classifier)?;
    let mut evaluator = RobustnessEvaluator::new(
        classifier.name(),
        network,
        dataset.val_images(),
        dataset.val_labels(),
        bank.config().eval_images,
    )?;
    let clean_accuracy = evaluator.clean_accuracy()?;
    Ok((evaluator, clean_accuracy))
}

fn run_robustness(
    classifier: ClassifierKind,
    defenses: &[DefenseSpec],
    attacks: &[AttackKind],
    epsilons: &[f32],
    bank: &ModelBank,
) -> Result<Vec<EvalRecord>> {
    let (mut evaluator, clean_accuracy) = evaluator_for(classifier, bank)?;

    // Crafting is deterministic per (classifier, attack, ε) — the RNG is
    // re-seeded per cell with the legacy seed derivation — so each
    // adversarial set is computed once and shared across the defense grid
    // (the legacy driver re-crafted it per defense row).
    let mut crafted: Vec<Vec<Tensor>> = Vec::with_capacity(attacks.len() * epsilons.len());
    for attack_kind in attacks {
        for &epsilon in epsilons {
            let attack = attack_kind.build(bank.config().attack.with_epsilon(epsilon));
            let mut rng = StdRng::seed_from_u64(
                bank.config()
                    .seed
                    .wrapping_add(4000 + *attack_kind as u64 * 17 + classifier as u64),
            );
            crafted.push(evaluator.craft_adversarial(attack.as_ref(), &mut rng)?);
        }
    }

    let mut records = Vec::new();
    for spec in defenses {
        let pipeline = bank.defense(spec)?;
        for (attack_index, attack_kind) in attacks.iter().enumerate() {
            for (epsilon_index, &epsilon) in epsilons.iter().enumerate() {
                let adversarial = &crafted[attack_index * epsilons.len() + epsilon_index];
                let robust_accuracy =
                    evaluator.defended_accuracy(adversarial, pipeline.as_ref())?;
                records.push(
                    EvalRecord::new()
                        .text("classifier", classifier.name())
                        .text("defense", spec.name())
                        .text("attack", attack_kind.name())
                        .float("epsilon", f64::from(epsilon))
                        .float("clean_accuracy", f64::from(clean_accuracy))
                        .float("robust_accuracy", f64::from(robust_accuracy))
                        .int("num_images", adversarial.len() as u64),
                );
            }
        }
    }
    Ok(records)
}

fn run_jpeg_ablation(
    classifier: ClassifierKind,
    defenses: &[SrModelKind],
    attacks: &[AttackKind],
    bank: &ModelBank,
) -> Result<Vec<EvalRecord>> {
    let (mut evaluator, _clean) = evaluator_for(classifier, bank)?;
    let mut records = Vec::new();
    for attack_kind in attacks {
        let attack = attack_kind.build(bank.config().attack);
        let mut rng = StdRng::seed_from_u64(
            bank.config()
                .seed
                .wrapping_add(5000 + *attack_kind as u64 * 13 + classifier as u64),
        );
        let adversarial = evaluator.craft_adversarial(attack.as_ref(), &mut rng)?;
        for kind in defenses.iter().filter(|k| k.is_learned()) {
            let with_jpeg = bank.defense(&DefenseSpec::paper(*kind))?;
            let without_jpeg = bank.defense(&DefenseSpec::new(
                *kind,
                2,
                PreprocessConfig::without_jpeg(),
            ))?;
            let jpeg_accuracy = evaluator.defended_accuracy(&adversarial, with_jpeg.as_ref())?;
            let no_jpeg_accuracy =
                evaluator.defended_accuracy(&adversarial, without_jpeg.as_ref())?;
            records.push(
                EvalRecord::new()
                    .text("classifier", classifier.name())
                    .text("defense", kind.name())
                    .text("attack", attack_kind.name())
                    .float("no_jpeg_accuracy", f64::from(no_jpeg_accuracy))
                    .float("jpeg_accuracy", f64::from(jpeg_accuracy)),
            );
        }
    }
    Ok(records)
}

fn run_npu_latency(kind: SrModelKind, npu: &NpuConfig) -> Result<Vec<EvalRecord>> {
    let classifier_spec = sesr_classifiers::cost::mobilenet_v2_paper_spec();
    let sr_spec = kind
        .paper_spec()
        .ok_or_else(|| TensorError::invalid_argument("NPU latency needs a learned SR model"))?;
    let PipelineLatency {
        sr_ms,
        classification_ms,
        total_ms,
        fps,
    } = estimate_pipeline(&sr_spec, &classifier_spec, (3, 299, 299), 2, npu)?;
    Ok(vec![EvalRecord::new()
        .text("sr_model", kind.name())
        .text("npu", &npu.name)
        .float("classification_ms", classification_ms)
        .float("sr_ms", sr_ms)
        .float("total_ms", total_ms)
        .float("fps", fps)])
}

fn run_transfer(
    source: ClassifierKind,
    target: ClassifierKind,
    defenses: &[DefenseSpec],
    attacks: &[AttackKind],
    bank: &ModelBank,
) -> Result<Vec<EvalRecord>> {
    let mut surrogate = bank.classifier(source)?;
    let (mut evaluator, clean_accuracy) = evaluator_for(target, bank)?;

    let mut records = Vec::new();
    for attack_kind in attacks {
        let attack = attack_kind.build(bank.config().attack);
        let mut rng = StdRng::seed_from_u64(bank.config().seed.wrapping_add(
            6000 + *attack_kind as u64 * 19 + source as u64 * 31 + target as u64 * 7,
        ));
        // Gradients come from the surrogate; the evaluation subset (and the
        // final verdict) belong to the target.
        let adversarial =
            evaluator.craft_adversarial_against(attack.as_ref(), surrogate.as_mut(), &mut rng)?;
        for spec in defenses {
            let pipeline = bank.defense(spec)?;
            let robust_accuracy = evaluator.defended_accuracy(&adversarial, pipeline.as_ref())?;
            records.push(
                EvalRecord::new()
                    .text("source", source.name())
                    .text("target", target.name())
                    .text("defense", spec.name())
                    .text("attack", attack_kind.name())
                    .float("clean_accuracy", f64::from(clean_accuracy))
                    .float("robust_accuracy", f64::from(robust_accuracy))
                    .int("num_images", adversarial.len() as u64),
            );
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_spec_names_and_labels() {
        assert_eq!(DefenseSpec::none().name(), "No Defense");
        assert_eq!(DefenseSpec::none().label(), "none");
        let spec = DefenseSpec::paper(SrModelKind::SesrM2);
        assert_eq!(spec.name(), "SESR-M2");
        assert_eq!(spec.label(), "sesr-m2:x2:jpeg75+wavelet2");
        let raw = DefenseSpec::new(SrModelKind::Bicubic, 4, PreprocessConfig::none());
        assert_eq!(raw.label(), "bicubic:x4:raw");
    }

    #[test]
    fn scenario_kinds_are_stable() {
        assert_eq!(
            ScenarioSpec::SrQuality {
                sr: SrModelKind::SesrM2
            }
            .kind(),
            "sr-quality"
        );
        assert_eq!(
            ScenarioSpec::NpuLatency {
                sr: SrModelKind::SesrM2,
                npu: NpuConfig::ethos_u55_256()
            }
            .kind(),
            "npu-latency"
        );
    }
}
