//! Plain-text report formatting for the table reproductions.
//!
//! The formatting mirrors the layout of the paper's tables so that the
//! `tables` binary and the benchmark harness print directly comparable rows.

use crate::experiments::{Table1Row, Table2Section, Table3Row, Table4Row};

fn human_count(value: u64) -> String {
    if value >= 1_000_000_000_000 {
        format!("{:.2}T", value as f64 / 1e12)
    } else if value >= 1_000_000_000 {
        format!("{:.2}B", value as f64 / 1e9)
    } else if value >= 1_000_000 {
        format!("{:.2}M", value as f64 / 1e6)
    } else if value >= 1_000 {
        format!("{:.1}K", value as f64 / 1e3)
    } else {
        value.to_string()
    }
}

/// Format the Table I reproduction (PSNR / parameters / MACs per SR model).
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str("Table I — PSNR and cost of SR methods (x2 SR, RGB)\n");
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>14} {:>12} {:>14} {:>12}\n",
        "Model", "Params", "MACs", "PSNR (ours)", "PSNR (paper)", "Params (paper)", "MACs (paper)"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<18} {:>12} {:>12} {:>14.2} {:>12} {:>14} {:>12}\n",
            row.model,
            human_count(row.params),
            human_count(row.macs),
            row.measured_psnr,
            row.paper_psnr
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_string()),
            row.paper_params
                .map(human_count)
                .unwrap_or_else(|| "-".to_string()),
            row.paper_macs
                .map(human_count)
                .unwrap_or_else(|| "-".to_string()),
        ));
    }
    out
}

/// Format the Table II reproduction (robust accuracy per classifier, defense
/// and attack).
pub fn format_table2(sections: &[Table2Section]) -> String {
    let mut out = String::new();
    out.push_str("Table II — Robust accuracy (%) per classifier, defense and attack\n");
    for section in sections {
        out.push_str(&format!(
            "\n[{}]  clean accuracy on eval subset: {:.1}%\n",
            section.classifier,
            section.clean_accuracy * 100.0
        ));
        if let Some(first) = section.rows.first() {
            out.push_str(&format!("{:<20}", "Defense"));
            for (attack, _) in &first.accuracies {
                out.push_str(&format!("{attack:>10}"));
            }
            out.push('\n');
        }
        for row in &section.rows {
            out.push_str(&format!("{:<20}", row.defense));
            for (_, accuracy) in &row.accuracies {
                out.push_str(&format!("{:>10.1}", accuracy * 100.0));
            }
            out.push('\n');
        }
    }
    out
}

/// Format the Table III reproduction (JPEG ablation).
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    out.push_str("Table III — Robustness with vs. without the JPEG stage (%)\n");
    out.push_str(&format!(
        "{:<16} {:<14} {:<10} {:>10} {:>10}\n",
        "Classifier", "SR", "Attack", "No-JPEG", "JPEG"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<16} {:<14} {:<10} {:>10.1} {:>10.1}\n",
            row.classifier,
            row.defense,
            row.attack,
            row.no_jpeg_accuracy * 100.0,
            row.jpeg_accuracy * 100.0
        ));
    }
    out
}

/// Format the Table IV reproduction (Ethos-U55-class latency estimate).
pub fn format_table4(rows: &[Table4Row], npu_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table IV — Estimated latency on {npu_name}: enlarged MobileNet-V2 + SR\n"
    ));
    out.push_str(&format!(
        "{:<14} {:>20} {:>14} {:>16} {:>8}\n",
        "SR Model", "Classification (ms)", "SR (ms)", "Total (ms)", "FPS"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<14} {:>20.2} {:>14.2} {:>16.2} {:>8.2}\n",
            row.sr_model, row.classification_ms, row.sr_ms, row.total_ms, row.fps
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_count_formatting() {
        assert_eq!(human_count(950), "950");
        assert_eq!(human_count(24_336), "24.3K");
        assert_eq!(human_count(1_190_000), "1.19M");
        assert_eq!(human_count(5_820_000_000), "5.82B");
        assert_eq!(human_count(3_400_000_000_000), "3.40T");
    }

    #[test]
    fn table1_formatting_contains_rows() {
        let rows = vec![Table1Row {
            model: "SESR-M2".to_string(),
            params: 10_608,
            macs: 948_000_000,
            measured_psnr: 27.5,
            paper_psnr: Some(33.26),
            paper_params: Some(10_608),
            paper_macs: Some(948_000_000),
        }];
        let text = format_table1(&rows);
        assert!(text.contains("SESR-M2"));
        assert!(text.contains("10.6K"));
        assert!(text.contains("33.26"));
    }

    #[test]
    fn table2_formatting_contains_sections_and_percentages() {
        let sections = vec![Table2Section {
            classifier: "MobileNet-V2".to_string(),
            clean_accuracy: 1.0,
            rows: vec![crate::experiments::Table2Row {
                defense: "No Defense".to_string(),
                accuracies: vec![("FGSM".to_string(), 0.034)],
            }],
        }];
        let text = format_table2(&sections);
        assert!(text.contains("MobileNet-V2"));
        assert!(text.contains("No Defense"));
        assert!(text.contains("3.4"));
    }

    #[test]
    fn table3_and_table4_formatting() {
        let t3 = format_table3(&[Table3Row {
            classifier: "ResNet-50".to_string(),
            defense: "SESR-M2".to_string(),
            attack: "PGD".to_string(),
            no_jpeg_accuracy: 0.449,
            jpeg_accuracy: 0.497,
        }]);
        assert!(t3.contains("ResNet-50") && t3.contains("44.9") && t3.contains("49.7"));

        let t4 = format_table4(
            &[Table4Row {
                sr_model: "SESR-M2".to_string(),
                classification_ms: 46.2,
                sr_ms: 20.2,
                total_ms: 66.4,
                fps: 15.1,
            }],
            "Ethos-U55-256",
        );
        assert!(t4.contains("Ethos-U55-256") && !t4.contains("15.06"));
        assert!(t4.contains("SESR-M2"));
    }
}
