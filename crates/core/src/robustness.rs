//! Gray-box robustness evaluation harness.
//!
//! The paper's protocol (Section IV-A):
//!
//! 1. pick an evaluation subset on which the classifier is 100 % correct on
//!    clean images (there is no point defending images that were already
//!    misclassified);
//! 2. craft adversarial examples **against the bare classifier** at its
//!    native resolution — the attacker knows the classifier (white-box access
//!    to gradients) but not the preprocessing defense (gray-box overall);
//! 3. pass the adversarial images through a defense pipeline (or no defense)
//!    and measure the classifier's accuracy on the result.

use crate::pipeline::DefensePipeline;
use crate::Result;
use rand::rngs::StdRng;
use sesr_attacks::Attack;
use sesr_nn::Layer;
use sesr_tensor::{Tensor, TensorError};

/// One classifier plus its clean-correct evaluation subset.
pub struct RobustnessScenario {
    classifier_name: String,
    eval_images: Vec<Tensor>,
    eval_labels: Vec<usize>,
}

/// Result of evaluating one (attack, defense) cell of Table II / III.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseEvaluation {
    /// Name of the defense (upscaler) or `"No Defense"`.
    pub defense: String,
    /// Name of the attack.
    pub attack: String,
    /// Accuracy on the defended adversarial images, in `[0, 1]`.
    pub robust_accuracy: f32,
    /// Number of evaluation images.
    pub num_images: usize,
}

/// The evaluation harness owning a trained classifier and its subset.
pub struct RobustnessEvaluator {
    classifier: Box<dyn Layer>,
    scenario: RobustnessScenario,
}

impl RobustnessScenario {
    /// Name of the classifier this scenario was built for.
    pub fn classifier_name(&self) -> &str {
        &self.classifier_name
    }

    /// Number of evaluation images in the clean-correct subset.
    pub fn len(&self) -> usize {
        self.eval_images.len()
    }

    /// `true` if the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.eval_images.is_empty()
    }

    /// The clean evaluation images of the subset.
    pub fn eval_images(&self) -> &[Tensor] {
        &self.eval_images
    }

    /// The labels of the evaluation subset.
    pub fn eval_labels(&self) -> &[usize] {
        &self.eval_labels
    }
}

/// Select up to `max_images` images that `classifier` classifies correctly,
/// mirroring the paper's "choose 5000 images with 100 % top-1 accuracy".
///
/// # Errors
///
/// Returns an error if the image and label counts differ or inference fails.
pub fn select_correct_subset(
    classifier: &mut dyn Layer,
    images: &[Tensor],
    labels: &[usize],
    max_images: usize,
) -> Result<(Vec<Tensor>, Vec<usize>)> {
    if images.len() != labels.len() {
        return Err(TensorError::invalid_argument(format!(
            "{} images but {} labels",
            images.len(),
            labels.len()
        )));
    }
    let mut subset_images = Vec::new();
    let mut subset_labels = Vec::new();
    for (image, &label) in images.iter().zip(labels) {
        if subset_images.len() >= max_images {
            break;
        }
        let logits = classifier.forward(image, false)?;
        if logits.argmax()? == label {
            subset_images.push(image.clone());
            subset_labels.push(label);
        }
    }
    Ok((subset_images, subset_labels))
}

impl RobustnessEvaluator {
    /// Build an evaluator from a trained classifier and a candidate pool of
    /// images, keeping only a clean-correct subset of at most `max_images`.
    ///
    /// # Errors
    ///
    /// Returns an error if the image and label counts differ, inference
    /// fails, or the resulting subset is empty.
    pub fn new(
        classifier_name: impl Into<String>,
        mut classifier: Box<dyn Layer>,
        images: &[Tensor],
        labels: &[usize],
        max_images: usize,
    ) -> Result<Self> {
        let (eval_images, eval_labels) =
            select_correct_subset(classifier.as_mut(), images, labels, max_images)?;
        if eval_images.is_empty() {
            return Err(TensorError::invalid_argument(
                "the classifier does not classify any candidate image correctly",
            ));
        }
        Ok(RobustnessEvaluator {
            classifier,
            scenario: RobustnessScenario {
                classifier_name: classifier_name.into(),
                eval_images,
                eval_labels,
            },
        })
    }

    /// The scenario metadata (classifier name, subset size).
    pub fn scenario(&self) -> &RobustnessScenario {
        &self.scenario
    }

    /// Accuracy of the classifier on the clean evaluation subset (1.0 by
    /// construction; exposed for sanity checks).
    ///
    /// # Errors
    ///
    /// Returns an error if inference fails.
    pub fn clean_accuracy(&mut self) -> Result<f32> {
        let mut correct = 0usize;
        for (image, &label) in self
            .scenario
            .eval_images
            .iter()
            .zip(&self.scenario.eval_labels)
        {
            if self.classifier.forward(image, false)?.argmax()? == label {
                correct += 1;
            }
        }
        Ok(correct as f32 / self.scenario.eval_images.len() as f32)
    }

    /// Craft adversarial versions of the evaluation subset with `attack`,
    /// against the bare classifier (gray-box threat model).
    ///
    /// # Errors
    ///
    /// Returns an error if the attack fails on any image.
    pub fn craft_adversarial(
        &mut self,
        attack: &dyn Attack,
        rng: &mut StdRng,
    ) -> Result<Vec<Tensor>> {
        let mut adversarial = Vec::with_capacity(self.scenario.eval_images.len());
        for (image, &label) in self
            .scenario
            .eval_images
            .iter()
            .zip(&self.scenario.eval_labels)
        {
            adversarial.push(attack.perturb(self.classifier.as_mut(), image, &[label], rng)?);
        }
        Ok(adversarial)
    }

    /// Craft adversarial versions of the evaluation subset against an
    /// arbitrary *surrogate* classifier instead of the evaluator's own — the
    /// transfer-attack (black-box) threat model: the attacker has gradients
    /// for `surrogate`, while this evaluator's classifier is the deployment
    /// target that later judges the perturbed images.
    ///
    /// # Errors
    ///
    /// Returns an error if the attack fails on any image.
    pub fn craft_adversarial_against(
        &self,
        attack: &dyn Attack,
        surrogate: &mut dyn Layer,
        rng: &mut StdRng,
    ) -> Result<Vec<Tensor>> {
        let mut adversarial = Vec::with_capacity(self.scenario.eval_images.len());
        for (image, &label) in self
            .scenario
            .eval_images
            .iter()
            .zip(&self.scenario.eval_labels)
        {
            adversarial.push(attack.perturb(surrogate, image, &[label], rng)?);
        }
        Ok(adversarial)
    }

    /// Accuracy of the classifier on a list of (possibly adversarial) images
    /// after applying `defense` (or no defense).
    ///
    /// # Errors
    ///
    /// Returns an error if the image count differs from the subset or any
    /// stage fails.
    pub fn defended_accuracy(
        &mut self,
        images: &[Tensor],
        defense: Option<&DefensePipeline>,
    ) -> Result<f32> {
        if images.len() != self.scenario.eval_labels.len() {
            return Err(TensorError::invalid_argument(format!(
                "expected {} images, got {}",
                self.scenario.eval_labels.len(),
                images.len()
            )));
        }
        let mut correct = 0usize;
        for (image, &label) in images.iter().zip(&self.scenario.eval_labels) {
            let input = match defense {
                Some(pipeline) => pipeline.defend(image)?,
                None => image.clone(),
            };
            if self.classifier.forward(&input, false)?.argmax()? == label {
                correct += 1;
            }
        }
        Ok(correct as f32 / images.len() as f32)
    }

    /// Craft adversarial examples and evaluate one defense in a single call,
    /// producing one cell of Table II.
    ///
    /// # Errors
    ///
    /// Returns an error if attacking, defending or classifying fails.
    pub fn evaluate(
        &mut self,
        attack: &dyn Attack,
        defense: Option<&DefensePipeline>,
        rng: &mut StdRng,
    ) -> Result<DefenseEvaluation> {
        let adversarial = self.craft_adversarial(attack, rng)?;
        let defense_name = defense
            .map(|d| d.upscaler_name().to_string())
            .unwrap_or_else(|| "No Defense".to_string());
        let robust_accuracy = self.defended_accuracy(&adversarial, defense)?;
        Ok(DefenseEvaluation {
            defense: defense_name,
            attack: attack.name().to_string(),
            robust_accuracy,
            num_images: adversarial.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PreprocessConfig;
    use rand::SeedableRng;
    use sesr_attacks::{AttackConfig, FgsmAttack};
    use sesr_classifiers::{ClassifierKind, ClassifierTrainer, ClassifierTrainingConfig};
    use sesr_datagen::{ClassificationDataset, DatasetConfig};
    use sesr_models::SrModelKind;

    fn trained_setup() -> (Box<dyn Layer>, ClassificationDataset) {
        let dataset = ClassificationDataset::generate(DatasetConfig {
            num_classes: 3,
            train_size: 36,
            val_size: 18,
            height: 16,
            width: 16,
            seed: 5,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let mut classifier = ClassifierKind::MobileNetV2.build_local(3, &mut rng);
        ClassifierTrainer::new(ClassifierTrainingConfig {
            epochs: 6,
            batch_size: 12,
            learning_rate: 3e-3,
        })
        .train(classifier.as_mut(), &dataset)
        .unwrap();
        (classifier, dataset)
    }

    #[test]
    fn subset_selection_keeps_only_correct_images() {
        let (mut classifier, dataset) = trained_setup();
        let (images, labels) = select_correct_subset(
            classifier.as_mut(),
            dataset.val_images(),
            dataset.val_labels(),
            10,
        )
        .unwrap();
        assert_eq!(images.len(), labels.len());
        assert!(images.len() <= 10);
        for (image, &label) in images.iter().zip(&labels) {
            assert_eq!(
                classifier.forward(image, false).unwrap().argmax().unwrap(),
                label
            );
        }
    }

    #[test]
    fn clean_accuracy_is_one_on_the_subset() {
        let (classifier, dataset) = trained_setup();
        let mut evaluator = RobustnessEvaluator::new(
            "MobileNet-V2",
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            8,
        )
        .unwrap();
        assert!((evaluator.clean_accuracy().unwrap() - 1.0).abs() < 1e-6);
        assert!(!evaluator.scenario().is_empty());
        assert_eq!(evaluator.scenario().classifier_name(), "MobileNet-V2");
    }

    #[test]
    fn attack_reduces_accuracy_and_defense_changes_it() {
        let (classifier, dataset) = trained_setup();
        let mut evaluator = RobustnessEvaluator::new(
            "MobileNet-V2",
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            6,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        // Use a large epsilon so even the tiny test model reliably misclassifies.
        let attack = FgsmAttack::new(AttackConfig::paper().with_epsilon(0.2));
        let no_defense = evaluator.evaluate(&attack, None, &mut rng).unwrap();
        assert!(no_defense.robust_accuracy <= 1.0);
        assert_eq!(no_defense.defense, "No Defense");
        assert_eq!(no_defense.attack, "FGSM");

        let defense = DefensePipeline::new(
            PreprocessConfig::paper(),
            SrModelKind::NearestNeighbor.build_interpolation(2).unwrap(),
        );
        let defended = evaluator
            .evaluate(&attack, Some(&defense), &mut rng)
            .unwrap();
        assert_eq!(defended.defense, "nearest-neighbor");
        assert!(defended.robust_accuracy >= 0.0 && defended.robust_accuracy <= 1.0);
    }

    #[test]
    fn mismatched_image_count_is_rejected() {
        let (classifier, dataset) = trained_setup();
        let mut evaluator = RobustnessEvaluator::new(
            "MobileNet-V2",
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            4,
        )
        .unwrap();
        let wrong = vec![dataset.val_images()[0].clone()];
        if evaluator.scenario().len() != 1 {
            assert!(evaluator.defended_accuracy(&wrong, None).is_err());
        }
    }
}
