//! The training-free defense pipeline of Fig. 1(b): JPEG compression →
//! wavelet denoising → ×2 super resolution.

use crate::Result;
use sesr_imaging::{jpeg_compress, wavelet_denoise};
pub use sesr_imaging::{JpegConfig, WaveletConfig};
use sesr_models::{ScratchSpace, Upscaler};
use sesr_telemetry::Probe;
use sesr_tensor::Tensor;

/// Telemetry hooks for the two timed stages of a defense call, passed to
/// [`DefensePipeline::defend_scratch_traced`] by instrumented callers (the
/// `sesr-serve` worker pool). Each probe records a span into its journal and,
/// when bound to a histogram, the stage duration in nanoseconds; `request`
/// tags the emitted events so a trace can be reassembled per request.
#[derive(Debug, Clone, Copy)]
pub struct DefendTrace<'a> {
    /// Times the preprocessing stages (clamp + JPEG + wavelet) as one span.
    pub preprocess: &'a Probe,
    /// Times the super-resolution forward pass.
    pub sr_forward: &'a Probe,
    /// Request id attached to the emitted journal events.
    pub request: u64,
}

/// Configuration of the non-learned preprocessing stages.
///
/// The paper's main configuration enables both JPEG and wavelet denoising;
/// Table III ablates the JPEG stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// JPEG compression stage (disabled in the Table III "No-JPEG" column).
    pub jpeg: Option<JpegConfig>,
    /// Wavelet-denoising stage.
    pub wavelet: Option<WaveletConfig>,
}

impl PreprocessConfig {
    /// The paper's full configuration: JPEG (quality 75) + wavelet denoising.
    pub fn paper() -> Self {
        PreprocessConfig {
            jpeg: Some(JpegConfig::default()),
            wavelet: Some(WaveletConfig::default()),
        }
    }

    /// The Table III ablation: wavelet denoising only, no JPEG.
    pub fn without_jpeg() -> Self {
        PreprocessConfig {
            jpeg: None,
            wavelet: Some(WaveletConfig::default()),
        }
    }

    /// No preprocessing at all (upscaling only).
    pub fn none() -> Self {
        PreprocessConfig {
            jpeg: None,
            wavelet: None,
        }
    }

    /// Short stable identity label for the enabled stages, e.g.
    /// `"jpeg75+wavelet2"`, `"wavelet2"` or `"raw"`. Two configurations with
    /// the same label compute the same preprocessing, which is what lets
    /// serving routes and cache keys name a configuration compactly.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if let Some(jpeg) = self.jpeg {
            parts.push(format!("jpeg{}", jpeg.quality));
        }
        if let Some(wavelet) = self.wavelet {
            if wavelet.threshold_scale == 1.0 {
                parts.push(format!("wavelet{}", wavelet.levels));
            } else {
                parts.push(format!(
                    "wavelet{}t{}",
                    wavelet.levels, wavelet.threshold_scale
                ));
            }
        }
        if parts.is_empty() {
            "raw".to_string()
        } else {
            parts.join("+")
        }
    }

    /// Parse a label produced by [`PreprocessConfig::label`] back into the
    /// configuration — the exact inverse, so
    /// `parse_label(c.label()) == Some(c)` for every valid configuration.
    /// Returns `None` for anything `label` cannot emit (unknown stages,
    /// out-of-range quality, stages out of order or repeated). Cluster
    /// tooling uses this to turn wire route labels back into typed keys.
    pub fn parse_label(label: &str) -> Option<PreprocessConfig> {
        if label == "raw" {
            return Some(PreprocessConfig::none());
        }
        let mut jpeg: Option<JpegConfig> = None;
        let mut wavelet: Option<WaveletConfig> = None;
        for part in label.split('+') {
            if let Some(quality) = part.strip_prefix("jpeg") {
                // JPEG is emitted first and at most once.
                if jpeg.is_some() || wavelet.is_some() {
                    return None;
                }
                jpeg = Some(JpegConfig::new(quality.parse().ok()?).ok()?);
            } else if let Some(rest) = part.strip_prefix("wavelet") {
                if wavelet.is_some() {
                    return None;
                }
                let (levels, threshold_scale) = match rest.split_once('t') {
                    Some((levels, scale)) => (levels.parse().ok()?, scale.parse::<f32>().ok()?),
                    None => (rest.parse().ok()?, 1.0),
                };
                wavelet = Some(WaveletConfig {
                    levels,
                    threshold_scale,
                });
            } else {
                return None;
            }
        }
        Some(PreprocessConfig { jpeg, wavelet })
    }
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig::paper()
    }
}

/// The full defense pipeline: preprocessing followed by an interchangeable
/// upscaler (interpolation, FSRCNN, EDSR or a SESR variant).
pub struct DefensePipeline {
    preprocess: PreprocessConfig,
    upscaler: Box<dyn Upscaler>,
}

impl DefensePipeline {
    /// Build a pipeline from a preprocessing configuration and an upscaler.
    pub fn new(preprocess: PreprocessConfig, upscaler: Box<dyn Upscaler>) -> Self {
        DefensePipeline {
            preprocess,
            upscaler,
        }
    }

    /// Name of the upscaler driving this pipeline (used in table rows).
    pub fn upscaler_name(&self) -> &str {
        self.upscaler.name()
    }

    /// The preprocessing configuration.
    pub fn preprocess_config(&self) -> PreprocessConfig {
        self.preprocess
    }

    /// The upscaling factor applied by the pipeline.
    pub fn scale(&self) -> usize {
        self.upscaler.scale()
    }

    /// Apply the defense to an `[N, 3, H, W]` batch with values in `[0, 1]`,
    /// returning the `[N, 3, H*scale, W*scale]` image fed to the classifier.
    ///
    /// Takes `&self`: the preprocessing stages are pure and the upscaler
    /// contract is `&self` (interior mutability where needed), so one
    /// pipeline can serve many threads — which is what the `sesr-serve`
    /// worker pool and the parallel table drivers rely on.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is not an RGB NCHW batch or a stage
    /// fails (e.g. odd image sizes for the wavelet transform).
    pub fn defend(&self, image: &Tensor) -> Result<Tensor> {
        let mut x = image.clamp(0.0, 1.0);
        if let Some(jpeg) = self.preprocess.jpeg {
            x = jpeg_compress(&x, jpeg)?;
        }
        if let Some(wavelet) = self.preprocess.wavelet {
            x = wavelet_denoise(&x, wavelet)?;
        }
        self.upscaler.upscale(&x)
    }

    /// Arena-backed [`DefensePipeline::defend`], the serving hot path: the
    /// clamp and the whole SR forward pass draw their buffers from `scratch`
    /// and recycle them, so a warmed-up scratch space runs the SR stage with
    /// zero heap allocations per request. The caller may recycle the
    /// returned tensor once it is consumed.
    ///
    /// The optional JPEG and wavelet stages still allocate internally (they
    /// are cheap, block-local transforms); configure
    /// [`PreprocessConfig::none`] to make the entire call allocation-free.
    /// Output is bitwise identical to `defend`.
    ///
    /// # Errors
    ///
    /// Everything [`DefensePipeline::defend`] can return.
    pub fn defend_scratch(&self, image: &Tensor, scratch: &mut ScratchSpace) -> Result<Tensor> {
        self.defend_scratch_inner(image, scratch, None)
    }

    /// [`DefensePipeline::defend_scratch`] with stage-level telemetry: the
    /// preprocessing stages and the SR forward pass each run under a span of
    /// the corresponding [`DefendTrace`] probe, so instrumented servers get
    /// per-stage latency histograms and journal events without the pipeline
    /// depending on any particular metrics sink. Output is bitwise identical
    /// to the untraced call.
    ///
    /// # Errors
    ///
    /// Everything [`DefensePipeline::defend_scratch`] can return.
    pub fn defend_scratch_traced(
        &self,
        image: &Tensor,
        scratch: &mut ScratchSpace,
        trace: &DefendTrace<'_>,
    ) -> Result<Tensor> {
        self.defend_scratch_inner(image, scratch, Some(trace))
    }

    fn defend_scratch_inner(
        &self,
        image: &Tensor,
        scratch: &mut ScratchSpace,
        trace: Option<&DefendTrace<'_>>,
    ) -> Result<Tensor> {
        // Every stage recycles its input even on failure, so the arena's
        // in-use accounting stays exact when a stage rejects a request.
        let span = trace.map(|t| t.preprocess.span(t.request));
        let mut x = image.clamp_arena(0.0, 1.0, scratch.arena());
        if let Some(jpeg) = self.preprocess.jpeg {
            match jpeg_compress(&x, jpeg) {
                Ok(compressed) => scratch.recycle(std::mem::replace(&mut x, compressed)),
                Err(err) => {
                    scratch.recycle(x);
                    return Err(err);
                }
            }
        }
        if let Some(wavelet) = self.preprocess.wavelet {
            match wavelet_denoise(&x, wavelet) {
                Ok(denoised) => scratch.recycle(std::mem::replace(&mut x, denoised)),
                Err(err) => {
                    scratch.recycle(x);
                    return Err(err);
                }
            }
        }
        drop(span);
        let span = trace.map(|t| t.sr_forward.span(t.request));
        let out = self.upscaler.upscale_scratch(&x, scratch);
        drop(span);
        scratch.recycle(x);
        out
    }
}

impl std::fmt::Debug for DefensePipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DefensePipeline {{ upscaler: {}, jpeg: {}, wavelet: {} }}",
            self.upscaler.name(),
            self.preprocess.jpeg.is_some(),
            self.preprocess.wavelet.is_some()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sesr_models::{InterpolationUpscaler, SrModelKind};
    use sesr_tensor::{init, Shape};

    fn image() -> Tensor {
        let mut rng = StdRng::seed_from_u64(0);
        init::uniform(Shape::new(&[1, 3, 32, 32]), 0.0, 1.0, &mut rng)
    }

    #[test]
    fn pipeline_upscales_and_stays_in_range() {
        let pipeline = DefensePipeline::new(
            PreprocessConfig::paper(),
            Box::new(InterpolationUpscaler::nearest(2)),
        );
        let out = pipeline.defend(&image()).unwrap();
        assert_eq!(out.shape().dims(), &[1, 3, 64, 64]);
        assert!(out.min() >= 0.0 && out.max() <= 1.0);
        assert_eq!(pipeline.scale(), 2);
        assert_eq!(pipeline.upscaler_name(), "nearest-neighbor");
    }

    #[test]
    fn jpeg_ablation_changes_the_output() {
        let img = image();
        let with_jpeg = DefensePipeline::new(
            PreprocessConfig::paper(),
            Box::new(InterpolationUpscaler::nearest(2)),
        );
        let without_jpeg = DefensePipeline::new(
            PreprocessConfig::without_jpeg(),
            Box::new(InterpolationUpscaler::nearest(2)),
        );
        let a = with_jpeg.defend(&img).unwrap();
        let b = without_jpeg.defend(&img).unwrap();
        assert_ne!(a, b, "disabling JPEG must change the defended image");
    }

    #[test]
    fn none_preprocessing_is_pure_upscaling() {
        let img = image();
        let pipeline = DefensePipeline::new(
            PreprocessConfig::none(),
            Box::new(InterpolationUpscaler::nearest(2)),
        );
        let out = pipeline.defend(&img).unwrap();
        let plain = InterpolationUpscaler::nearest(2);
        let expected = sesr_models::Upscaler::upscale(&plain, &img).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn works_with_zoo_interpolation_upscalers() {
        let img = image();
        for kind in [SrModelKind::NearestNeighbor, SrModelKind::Bicubic] {
            let pipeline = DefensePipeline::new(
                PreprocessConfig::paper(),
                kind.build_interpolation(2).unwrap(),
            );
            let out = pipeline.defend(&img).unwrap();
            assert_eq!(out.shape().dims(), &[1, 3, 64, 64]);
        }
    }

    #[test]
    fn defend_scratch_matches_defend() {
        let img = image();
        let mut scratch = sesr_models::ScratchSpace::new();
        for preprocess in [
            PreprocessConfig::paper(),
            PreprocessConfig::without_jpeg(),
            PreprocessConfig::none(),
        ] {
            let pipeline = DefensePipeline::new(
                preprocess,
                SrModelKind::SesrM2.build_seeded_upscaler(2, 7).unwrap(),
            );
            let expected = pipeline.defend(&img).unwrap();
            for _ in 0..2 {
                let out = pipeline.defend_scratch(&img, &mut scratch).unwrap();
                assert_eq!(out, expected, "arena defense must be bitwise identical");
                scratch.recycle(out);
            }
        }
        assert!(scratch.stats().hits > 0);
    }

    #[test]
    fn traced_defense_is_identical_and_emits_stage_spans() {
        let img = image();
        let mut scratch = sesr_models::ScratchSpace::new();
        let pipeline = DefensePipeline::new(
            PreprocessConfig::paper(),
            SrModelKind::SesrM2.build_seeded_upscaler(2, 7).unwrap(),
        );
        let expected = pipeline.defend_scratch(&img, &mut scratch).unwrap();
        scratch.recycle(expected.clone());

        let telemetry = sesr_telemetry::Telemetry::new();
        let trace = DefendTrace {
            preprocess: &telemetry.probe(
                "stage.preprocess",
                sesr_telemetry::Level::Debug,
                Some("stage.preprocess_ns"),
            ),
            sr_forward: &telemetry.probe(
                "stage.sr_forward",
                sesr_telemetry::Level::Debug,
                Some("stage.sr_forward_ns"),
            ),
            request: 42,
        };
        let out = pipeline
            .defend_scratch_traced(&img, &mut scratch, &trace)
            .unwrap();
        assert_eq!(out, expected, "tracing must not change the output");

        let snapshot = telemetry.snapshot();
        for name in ["stage.preprocess_ns", "stage.sr_forward_ns"] {
            let hist = snapshot.histogram(name).expect(name);
            assert_eq!(hist.count, 1, "{name} must record exactly one span");
        }
        let events: Vec<_> = snapshot.events.iter().map(|e| e.name.as_str()).collect();
        assert!(events.contains(&"stage.preprocess"));
        assert!(events.contains(&"stage.sr_forward"));
        assert!(snapshot.events.iter().all(|e| e.request == 42));
    }

    #[test]
    fn labels_name_the_enabled_stages() {
        assert_eq!(PreprocessConfig::paper().label(), "jpeg75+wavelet2");
        assert_eq!(PreprocessConfig::without_jpeg().label(), "wavelet2");
        assert_eq!(PreprocessConfig::none().label(), "raw");
        let mut aggressive = PreprocessConfig::without_jpeg();
        aggressive.wavelet.as_mut().unwrap().threshold_scale = 2.0;
        assert_eq!(aggressive.label(), "wavelet2t2");
    }

    #[test]
    fn parse_label_inverts_label() {
        let mut scaled = PreprocessConfig::paper();
        scaled.wavelet.as_mut().unwrap().threshold_scale = 0.75;
        let mut jpeg_only = PreprocessConfig::paper();
        jpeg_only.wavelet = None;
        for config in [
            PreprocessConfig::paper(),
            PreprocessConfig::without_jpeg(),
            PreprocessConfig::none(),
            scaled,
            jpeg_only,
        ] {
            let parsed = PreprocessConfig::parse_label(&config.label())
                .unwrap_or_else(|| panic!("label {:?} must parse", config.label()));
            assert_eq!(
                parsed.jpeg.map(|j| j.quality),
                config.jpeg.map(|j| j.quality)
            );
            assert_eq!(
                parsed
                    .wavelet
                    .map(|w| (w.levels, w.threshold_scale.to_bits())),
                config
                    .wavelet
                    .map(|w| (w.levels, w.threshold_scale.to_bits())),
            );
        }
    }

    #[test]
    fn parse_label_rejects_what_label_cannot_emit() {
        for bad in [
            "",
            "jpg75",
            "jpeg0",           // quality 0 is invalid
            "jpeg101",         // quality > 100 is invalid
            "jpeg75+jpeg80",   // repeated stage
            "wavelet2+jpeg75", // wrong order: label always emits jpeg first
            "wavelet2+wavelet3",
            "waveletx",
            "raw+jpeg75",
            "jpeg75+",
        ] {
            assert!(
                PreprocessConfig::parse_label(bad).is_none(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn debug_output_is_informative() {
        let pipeline = DefensePipeline::new(
            PreprocessConfig::paper(),
            Box::new(InterpolationUpscaler::bicubic(2)),
        );
        let text = format!("{pipeline:?}");
        assert!(text.contains("bicubic"));
        assert!(text.contains("jpeg: true"));
    }
}
