//! Legacy experiment drivers for the paper's tables, now thin shims over the
//! [`eval`](crate::eval) plan API.
//!
//! The `run_table1..run_table4` functions are **deprecated**: each builds
//! the corresponding [`EvalPlan`] and executes it
//! against an ephemeral, throw-away model store, preserving the historical
//! semantics (retrain on every invocation) and bitwise-identical output.
//! New code should build plans directly and share a persistent
//! [`ModelBank`] so training happens once:
//!
//! ```no_run
//! use sesr_defense::eval::{EvalPlan, ModelBank};
//! use sesr_defense::experiments::ExperimentConfig;
//!
//! let config = ExperimentConfig::quick();
//! let bank = ModelBank::open("eval-store", config.clone())?;
//! let report = EvalPlan::table2(&config).run(&bank)?;
//! assert!(report.ok());
//! # Ok::<(), sesr_tensor::TensorError>(())
//! ```

use crate::eval::{EvalPlan, EvalRecord, ModelBank, PlanReport};
use crate::pipeline::{DefensePipeline, PreprocessConfig};
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_attacks::{AttackConfig, AttackKind};
use sesr_classifiers::ClassifierKind;
use sesr_datagen::{SrDataset, SrDatasetConfig};
use sesr_models::trainer::{evaluate_network_psnr, SrLoss, SrTrainer, SrTrainingConfig};
use sesr_models::{NetworkUpscaler, SrModelKind};
use sesr_nn::serialize::{tensors_from_string, tensors_to_string};
use sesr_nn::Layer;
use sesr_npu::NpuConfig;
use sesr_tensor::{Tensor, TensorError};

/// Sizes and hyperparameters shared by the experiment drivers.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of synthetic classes.
    pub num_classes: usize,
    /// Classification training-set size.
    pub train_size: usize,
    /// Classification validation-set size (the pool the clean-correct
    /// evaluation subset is drawn from).
    pub val_size: usize,
    /// Classification image size (square).
    pub image_size: usize,
    /// SR training-pair count.
    pub sr_train_size: usize,
    /// SR validation-pair count.
    pub sr_val_size: usize,
    /// SR HR patch size (square).
    pub sr_hr_size: usize,
    /// Classifier training epochs.
    pub classifier_epochs: usize,
    /// SR training epochs.
    pub sr_epochs: usize,
    /// Maximum number of evaluation images per classifier.
    pub eval_images: usize,
    /// Attack configuration (ε, steps).
    pub attack: AttackConfig,
    /// Attacks to evaluate (Table II columns).
    pub attacks: Vec<AttackKind>,
    /// SR models to evaluate (Table I / II rows).
    pub sr_kinds: Vec<SrModelKind>,
    /// Classifiers to evaluate (Table II sections).
    pub classifiers: Vec<ClassifierKind>,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A minutes-scale configuration used by tests and the quickstart example.
    pub fn quick() -> Self {
        ExperimentConfig {
            num_classes: 3,
            train_size: 36,
            val_size: 18,
            image_size: 16,
            sr_train_size: 10,
            sr_val_size: 4,
            sr_hr_size: 16,
            classifier_epochs: 6,
            sr_epochs: 4,
            eval_images: 5,
            attack: AttackConfig::paper().with_steps(3),
            attacks: vec![AttackKind::Fgsm],
            sr_kinds: vec![SrModelKind::NearestNeighbor, SrModelKind::SesrM2],
            classifiers: vec![ClassifierKind::MobileNetV2],
            seed: 0,
        }
    }

    /// The configuration used by the benchmark harness: every classifier,
    /// every attack and every SR model from the paper, at a scale that runs
    /// in tens of minutes on a laptop.
    pub fn full() -> Self {
        ExperimentConfig {
            num_classes: 6,
            train_size: 240,
            val_size: 90,
            image_size: 32,
            sr_train_size: 48,
            sr_val_size: 12,
            sr_hr_size: 32,
            classifier_epochs: 12,
            sr_epochs: 10,
            eval_images: 25,
            attack: AttackConfig::paper(),
            attacks: AttackKind::all(),
            sr_kinds: SrModelKind::all().to_vec(),
            classifiers: ClassifierKind::all(),
            seed: 0,
        }
    }
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// SR model name.
    pub model: String,
    /// Paper-scale parameter count (analytic).
    pub params: u64,
    /// Paper-scale MACs for 299×299 → 598×598 (analytic).
    pub macs: u64,
    /// PSNR measured on the synthetic validation set (dB).
    pub measured_psnr: f32,
    /// PSNR reported in the paper (DIV2K, dB).
    pub paper_psnr: Option<f32>,
    /// Parameter count reported in the paper.
    pub paper_params: Option<u64>,
    /// MACs reported in the paper.
    pub paper_macs: Option<u64>,
}

/// One section (classifier) of the Table II reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Section {
    /// Classifier name.
    pub classifier: String,
    /// Clean accuracy on the evaluation subset (1.0 by construction).
    pub clean_accuracy: f32,
    /// One row per defense; each row holds `(attack name, robust accuracy)`.
    pub rows: Vec<Table2Row>,
}

/// One defense row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Defense (upscaler) name or "No Defense".
    pub defense: String,
    /// Robust accuracy per attack, in the order of the config's attack list.
    pub accuracies: Vec<(String, f32)>,
}

/// One row of the Table III (JPEG ablation) reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Classifier name.
    pub classifier: String,
    /// Defense (upscaler) name.
    pub defense: String,
    /// Attack name.
    pub attack: String,
    /// Robust accuracy without the JPEG stage.
    pub no_jpeg_accuracy: f32,
    /// Robust accuracy with the JPEG stage.
    pub jpeg_accuracy: f32,
}

/// One row of the Table IV (Ethos-U55 latency) reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// SR model name.
    pub sr_model: String,
    /// Classification latency in milliseconds (enlarged MobileNet-V2).
    pub classification_ms: f64,
    /// SR latency in milliseconds.
    pub sr_ms: f64,
    /// End-to-end latency in milliseconds.
    pub total_ms: f64,
    /// End-to-end frames per second.
    pub fps: f64,
}

/// A trained SR model paired with its kind, ready to be cloned into defenses.
pub struct TrainedSrModel {
    /// Which zoo entry this is.
    pub kind: SrModelKind,
    /// The trained network (training-time form for SESR).
    pub network: Box<dyn Layer>,
    /// Validation PSNR achieved on the synthetic set.
    pub val_psnr: f32,
}

/// Copy parameter values and non-learnable buffers from one network into
/// another with an identical architecture (used to hand trained SR weights
/// to per-thread defenses).
///
/// # Errors
///
/// Returns an error if the parameter/buffer lists differ in length or shape.
pub fn copy_weights(source: &dyn Layer, target: &mut dyn Layer) -> Result<()> {
    let mut source_tensors: Vec<&Tensor> = source.params().iter().map(|p| &p.value).collect();
    source_tensors.extend(source.buffers());
    let encoded = tensors_to_string(&source_tensors);
    let tensors = tensors_from_string(&encoded)?;
    let num_params = target.params().len();
    let num_buffers = target.buffers().len();
    if num_params + num_buffers != tensors.len() {
        return Err(TensorError::invalid_argument(format!(
            "cannot copy weights: {} source tensors vs {num_params} target parameters + \
             {num_buffers} buffers",
            tensors.len(),
        )));
    }
    let (param_tensors, buffer_tensors) = tensors.split_at(num_params);
    for (param, tensor) in target.params().iter().zip(param_tensors) {
        if param.value.shape() != tensor.shape() {
            return Err(TensorError::ShapeMismatch {
                left: param.value.shape().dims().to_vec(),
                right: tensor.shape().dims().to_vec(),
            });
        }
    }
    for (buffer, tensor) in target.buffers().iter().zip(buffer_tensors) {
        if buffer.shape() != tensor.shape() {
            return Err(TensorError::ShapeMismatch {
                left: buffer.shape().dims().to_vec(),
                right: tensor.shape().dims().to_vec(),
            });
        }
    }
    for (param, tensor) in target.params_mut().iter_mut().zip(param_tensors) {
        param.value = tensor.clone();
    }
    for (buffer, tensor) in target.buffers_mut().iter_mut().zip(buffer_tensors) {
        **buffer = tensor.clone();
    }
    Ok(())
}

/// Train every learned SR model in the config on a shared synthetic dataset.
///
/// This is the in-memory training path used by the quickstart examples; plan
/// runs train through [`ModelBank`] instead, which
/// persists and reuses the weights.
///
/// # Errors
///
/// Returns an error if dataset generation or training fails.
pub fn train_sr_models(config: &ExperimentConfig) -> Result<Vec<TrainedSrModel>> {
    let dataset = SrDataset::generate(SrDatasetConfig {
        train_size: config.sr_train_size,
        val_size: config.sr_val_size,
        hr_size: config.sr_hr_size,
        scale: 2,
        seed: config.seed.wrapping_add(17),
    })?;
    let trainer = SrTrainer::new(SrTrainingConfig {
        epochs: config.sr_epochs,
        batch_size: 4,
        learning_rate: 1e-3,
        loss: SrLoss::Mae,
    });
    let mut out = Vec::new();
    for kind in config.sr_kinds.iter().filter(|k| k.is_learned()) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1000 + *kind as u64));
        let mut network = kind
            .build_local_network(&mut rng)
            .ok_or_else(|| TensorError::invalid_argument("learned kind must build a network"))?;
        trainer.train(network.as_mut(), &dataset)?;
        let val_psnr = evaluate_network_psnr(network.as_mut(), &dataset)?;
        out.push(TrainedSrModel {
            kind: *kind,
            network,
            val_psnr,
        });
    }
    Ok(out)
}

/// Build a defense pipeline for `kind`, cloning trained weights when the kind
/// is a learned model.
///
/// # Errors
///
/// Returns an error if `kind` is learned but absent from `trained`.
pub fn build_defense(
    kind: SrModelKind,
    preprocess: PreprocessConfig,
    trained: &[TrainedSrModel],
    seed: u64,
) -> Result<DefensePipeline> {
    if let Some(upscaler) = kind.build_interpolation(2) {
        return Ok(DefensePipeline::new(preprocess, upscaler));
    }
    let source = trained
        .iter()
        .find(|m| m.kind == kind)
        .ok_or_else(|| TensorError::invalid_argument(format!("{kind} has not been trained")))?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2000 + kind as u64));
    let mut network = kind
        .build_local_network(&mut rng)
        .ok_or_else(|| TensorError::invalid_argument("learned kind must build a network"))?;
    copy_weights(source.network.as_ref(), network.as_mut())?;
    let upscaler = NetworkUpscaler::new(kind.name(), 2, network);
    Ok(DefensePipeline::new(preprocess, Box::new(upscaler)))
}

/// Run a plan against a throw-away store (the deprecated shims' semantics:
/// every invocation retrains from scratch) and turn a scenario failure into
/// a hard error, matching the legacy all-or-nothing drivers.
fn run_ephemeral(plan: EvalPlan, config: &ExperimentConfig) -> Result<PlanReport> {
    let bank = ModelBank::ephemeral(config.clone())?;
    let report = plan.run(&bank)?;
    if let Some(failure) = report.failures().first() {
        if let crate::eval::ScenarioStatus::Failed { error } = &failure.status {
            return Err(TensorError::invalid_argument(format!(
                "scenario {} failed: {error}",
                failure.meta.name
            )));
        }
    }
    Ok(report)
}

fn missing(record: &EvalRecord, key: &str) -> TensorError {
    TensorError::invalid_argument(format!("eval record is missing field {key:?}: {record:?}"))
}

fn require_text(record: &EvalRecord, key: &str) -> Result<String> {
    record
        .get_text(key)
        .map(str::to_string)
        .ok_or_else(|| missing(record, key))
}

fn require_f32(record: &EvalRecord, key: &str) -> Result<f32> {
    record
        .get_float(key)
        .map(|v| v as f32)
        .ok_or_else(|| missing(record, key))
}

fn require_f64(record: &EvalRecord, key: &str) -> Result<f64> {
    record.get_float(key).ok_or_else(|| missing(record, key))
}

fn require_int(record: &EvalRecord, key: &str) -> Result<u64> {
    record.get_int(key).ok_or_else(|| missing(record, key))
}

/// Reproduce Table I: train every learned SR model, measure PSNR on the
/// synthetic validation set, and report paper-scale parameters/MACs.
///
/// # Errors
///
/// Returns an error if any training or cost computation fails.
#[deprecated(
    since = "0.1.0",
    note = "build `eval::EvalPlan::table1` and run it against a shared `eval::ModelBank` \
            (trains once per config instead of per invocation); see README migration notes"
)]
pub fn run_table1(config: &ExperimentConfig) -> Result<Vec<Table1Row>> {
    let report = run_ephemeral(EvalPlan::table1(config), config)?;
    let mut rows = Vec::new();
    for record in report.records() {
        rows.push(Table1Row {
            model: require_text(record, "model")?,
            params: require_int(record, "params")?,
            macs: require_int(record, "macs")?,
            measured_psnr: require_f32(record, "measured_psnr")?,
            paper_psnr: record.get_float("paper_psnr").map(|v| v as f32),
            paper_params: record.get_int("paper_params"),
            paper_macs: record.get_int("paper_macs"),
        });
    }
    Ok(rows)
}

/// Reproduce Table II: robust accuracy of every classifier under every attack
/// for every defense. Classifier sections run in parallel workers.
///
/// # Errors
///
/// Returns an error if any stage (training, attacking, defending) fails.
#[deprecated(
    since = "0.1.0",
    note = "build `eval::EvalPlan::table2` and run it against a shared `eval::ModelBank` \
            (trains once per config instead of per invocation); see README migration notes"
)]
pub fn run_table2(config: &ExperimentConfig) -> Result<Vec<Table2Section>> {
    let report = run_ephemeral(EvalPlan::table2(config), config)?;
    let mut sections = Vec::new();
    for scenario in &report.scenarios {
        let Some(first) = scenario.records.first() else {
            continue;
        };
        let mut section = Table2Section {
            classifier: require_text(first, "classifier")?,
            clean_accuracy: require_f32(first, "clean_accuracy")?,
            rows: Vec::new(),
        };
        for record in &scenario.records {
            let defense = require_text(record, "defense")?;
            let cell = (
                require_text(record, "attack")?,
                require_f32(record, "robust_accuracy")?,
            );
            match section.rows.iter_mut().find(|row| row.defense == defense) {
                Some(row) => row.accuracies.push(cell),
                None => section.rows.push(Table2Row {
                    defense,
                    accuracies: vec![cell],
                }),
            }
        }
        sections.push(section);
    }
    Ok(sections)
}

/// Reproduce Table III: the JPEG ablation (defense with and without the JPEG
/// stage) for a subset of classifiers, defenses and attacks.
///
/// # Errors
///
/// Returns an error if any stage fails.
#[deprecated(
    since = "0.1.0",
    note = "build `eval::EvalPlan::table3` and run it against a shared `eval::ModelBank` \
            (trains once per config instead of per invocation); see README migration notes"
)]
pub fn run_table3(config: &ExperimentConfig) -> Result<Vec<Table3Row>> {
    let report = run_ephemeral(EvalPlan::table3(config), config)?;
    let mut rows = Vec::new();
    for record in report.records() {
        rows.push(Table3Row {
            classifier: require_text(record, "classifier")?,
            defense: require_text(record, "defense")?,
            attack: require_text(record, "attack")?,
            no_jpeg_accuracy: require_f32(record, "no_jpeg_accuracy")?,
            jpeg_accuracy: require_f32(record, "jpeg_accuracy")?,
        });
    }
    Ok(rows)
}

/// The SR models reported in Table IV, in the paper's row order.
pub fn table4_sr_models() -> Vec<SrModelKind> {
    vec![
        SrModelKind::Fsrcnn,
        SrModelKind::SesrM5,
        SrModelKind::SesrM3,
        SrModelKind::SesrM2,
    ]
}

/// Reproduce Table IV analytically: end-to-end latency of the enlarged
/// MobileNet-V2 plus each SR model on an Ethos-U55-class NPU.
///
/// # Errors
///
/// Returns an error if a spec or the NPU configuration is inconsistent.
#[deprecated(
    since = "0.1.0",
    note = "build `eval::EvalPlan::table4` and run it against an `eval::ModelBank`; \
            see README migration notes"
)]
pub fn run_table4(npu: &NpuConfig) -> Result<Vec<Table4Row>> {
    // Table IV is analytic: no training, so the ephemeral store stays empty.
    let report = run_ephemeral(EvalPlan::table4(npu), &ExperimentConfig::quick())?;
    let mut rows = Vec::new();
    for record in report.records() {
        rows.push(Table4Row {
            sr_model: require_text(record, "sr_model")?,
            classification_ms: require_f64(record, "classification_ms")?,
            sr_ms: require_f64(record, "sr_ms")?,
            total_ms: require_f64(record, "total_ms")?,
            fps: require_f64(record, "fps")?,
        });
    }
    Ok(rows)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn copy_weights_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let source = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut target = SrModelKind::SesrM2.build_local_network(&mut rng2).unwrap();
        assert_ne!(
            source.params()[0].value,
            target.params()[0].value,
            "different seeds should differ before copying"
        );
        copy_weights(source.as_ref(), target.as_mut()).unwrap();
        assert_eq!(source.params().len(), target.params().len());
        for (a, b) in source.params().iter().zip(target.params()) {
            assert!(a.value.max_abs_diff(&b.value).unwrap() < 1e-6);
        }
    }

    #[test]
    fn copy_weights_rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let source = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
        let mut target = SrModelKind::SesrM3.build_local_network(&mut rng).unwrap();
        assert!(copy_weights(source.as_ref(), target.as_mut()).is_err());
    }

    #[test]
    fn copy_weights_carries_batchnorm_buffers() {
        let mut rng = StdRng::seed_from_u64(0);
        let source = ClassifierKind::MobileNetV2.build_local(3, &mut rng);
        let mut target = ClassifierKind::MobileNetV2.build_local(3, &mut rng);
        assert!(
            !source.buffers().is_empty(),
            "MobileNet-V2 has batch-norm buffers"
        );
        copy_weights(source.as_ref(), target.as_mut()).unwrap();
        for (a, b) in source.buffers().iter().zip(target.buffers()) {
            assert_eq!(*a, b);
        }
    }

    #[test]
    fn table4_is_analytic_and_ordered() {
        let rows = run_table4(&NpuConfig::ethos_u55_256()).unwrap();
        assert_eq!(rows.len(), 4);
        // Classification latency is the same for every row (same enlarged classifier).
        for row in &rows {
            assert!((row.classification_ms - rows[0].classification_ms).abs() < 1e-9);
            assert!((row.total_ms - (row.sr_ms + row.classification_ms)).abs() < 1e-9);
        }
        // FSRCNN is the slowest, SESR-M2 the fastest (Table IV ordering).
        assert_eq!(rows[0].sr_model, "FSRCNN");
        assert_eq!(rows[3].sr_model, "SESR-M2");
        assert!(rows[0].total_ms > rows[3].total_ms);
        let fps_ratio = rows[3].fps / rows[0].fps;
        assert!(
            (1.8..6.0).contains(&fps_ratio),
            "FPS ratio {fps_ratio} outside expected band"
        );
    }

    #[test]
    fn build_defense_requires_trained_weights_for_learned_kinds() {
        let err = build_defense(SrModelKind::SesrM2, PreprocessConfig::paper(), &[], 0);
        assert!(err.is_err());
        let ok = build_defense(
            SrModelKind::NearestNeighbor,
            PreprocessConfig::paper(),
            &[],
            0,
        );
        assert!(ok.is_ok());
    }
}
