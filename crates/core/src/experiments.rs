//! End-to-end experiment drivers that regenerate each table of the paper at
//! laptop scale (Tables I–III) or analytically (Table IV).
//!
//! Every driver takes an [`ExperimentConfig`] so that the unit tests can run a
//! minutes-scale configuration while the benchmark harness uses a larger one.

use crate::pipeline::{DefensePipeline, PreprocessConfig};
use crate::robustness::RobustnessEvaluator;
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_attacks::{AttackConfig, AttackKind};
use sesr_classifiers::{ClassifierKind, ClassifierTrainer, ClassifierTrainingConfig};
use sesr_datagen::{ClassificationDataset, DatasetConfig, SrDataset, SrDatasetConfig};
use sesr_models::cost::{paper_cost, paper_reported, paper_reported_psnr};
use sesr_models::trainer::{evaluate_network_psnr, SrLoss, SrTrainer, SrTrainingConfig};
use sesr_models::{NetworkUpscaler, SrModelKind};
use sesr_nn::serialize::{tensors_from_string, tensors_to_string};
use sesr_nn::Layer;
use sesr_npu::{estimate_pipeline, NpuConfig, PipelineLatency};
use sesr_tensor::TensorError;
use std::sync::Mutex;

/// Sizes and hyperparameters shared by the experiment drivers.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Number of synthetic classes.
    pub num_classes: usize,
    /// Classification training-set size.
    pub train_size: usize,
    /// Classification validation-set size (the pool the clean-correct
    /// evaluation subset is drawn from).
    pub val_size: usize,
    /// Classification image size (square).
    pub image_size: usize,
    /// SR training-pair count.
    pub sr_train_size: usize,
    /// SR validation-pair count.
    pub sr_val_size: usize,
    /// SR HR patch size (square).
    pub sr_hr_size: usize,
    /// Classifier training epochs.
    pub classifier_epochs: usize,
    /// SR training epochs.
    pub sr_epochs: usize,
    /// Maximum number of evaluation images per classifier.
    pub eval_images: usize,
    /// Attack configuration (ε, steps).
    pub attack: AttackConfig,
    /// Attacks to evaluate (Table II columns).
    pub attacks: Vec<AttackKind>,
    /// SR models to evaluate (Table I / II rows).
    pub sr_kinds: Vec<SrModelKind>,
    /// Classifiers to evaluate (Table II sections).
    pub classifiers: Vec<ClassifierKind>,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A minutes-scale configuration used by tests and the quickstart example.
    pub fn quick() -> Self {
        ExperimentConfig {
            num_classes: 3,
            train_size: 36,
            val_size: 18,
            image_size: 16,
            sr_train_size: 10,
            sr_val_size: 4,
            sr_hr_size: 16,
            classifier_epochs: 6,
            sr_epochs: 4,
            eval_images: 5,
            attack: AttackConfig::paper().with_steps(3),
            attacks: vec![AttackKind::Fgsm],
            sr_kinds: vec![SrModelKind::NearestNeighbor, SrModelKind::SesrM2],
            classifiers: vec![ClassifierKind::MobileNetV2],
            seed: 0,
        }
    }

    /// The configuration used by the benchmark harness: every classifier,
    /// every attack and every SR model from the paper, at a scale that runs
    /// in tens of minutes on a laptop.
    pub fn full() -> Self {
        ExperimentConfig {
            num_classes: 6,
            train_size: 240,
            val_size: 90,
            image_size: 32,
            sr_train_size: 48,
            sr_val_size: 12,
            sr_hr_size: 32,
            classifier_epochs: 12,
            sr_epochs: 10,
            eval_images: 25,
            attack: AttackConfig::paper(),
            attacks: AttackKind::all(),
            sr_kinds: SrModelKind::all().to_vec(),
            classifiers: ClassifierKind::all(),
            seed: 0,
        }
    }
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// SR model name.
    pub model: String,
    /// Paper-scale parameter count (analytic).
    pub params: u64,
    /// Paper-scale MACs for 299×299 → 598×598 (analytic).
    pub macs: u64,
    /// PSNR measured on the synthetic validation set (dB).
    pub measured_psnr: f32,
    /// PSNR reported in the paper (DIV2K, dB).
    pub paper_psnr: Option<f32>,
    /// Parameter count reported in the paper.
    pub paper_params: Option<u64>,
    /// MACs reported in the paper.
    pub paper_macs: Option<u64>,
}

/// One section (classifier) of the Table II reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Section {
    /// Classifier name.
    pub classifier: String,
    /// Clean accuracy on the evaluation subset (1.0 by construction).
    pub clean_accuracy: f32,
    /// One row per defense; each row holds `(attack name, robust accuracy)`.
    pub rows: Vec<Table2Row>,
}

/// One defense row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Defense (upscaler) name or "No Defense".
    pub defense: String,
    /// Robust accuracy per attack, in the order of the config's attack list.
    pub accuracies: Vec<(String, f32)>,
}

/// One row of the Table III (JPEG ablation) reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Classifier name.
    pub classifier: String,
    /// Defense (upscaler) name.
    pub defense: String,
    /// Attack name.
    pub attack: String,
    /// Robust accuracy without the JPEG stage.
    pub no_jpeg_accuracy: f32,
    /// Robust accuracy with the JPEG stage.
    pub jpeg_accuracy: f32,
}

/// One row of the Table IV (Ethos-U55 latency) reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// SR model name.
    pub sr_model: String,
    /// Classification latency in milliseconds (enlarged MobileNet-V2).
    pub classification_ms: f64,
    /// SR latency in milliseconds.
    pub sr_ms: f64,
    /// End-to-end latency in milliseconds.
    pub total_ms: f64,
    /// End-to-end frames per second.
    pub fps: f64,
}

/// A trained SR model paired with its kind, ready to be cloned into defenses.
pub struct TrainedSrModel {
    /// Which zoo entry this is.
    pub kind: SrModelKind,
    /// The trained network (training-time form for SESR).
    pub network: Box<dyn Layer>,
    /// Validation PSNR achieved on the synthetic set.
    pub val_psnr: f32,
}

/// Copy parameter values from one network into another with an identical
/// architecture (used to hand trained SR weights to per-thread defenses).
///
/// # Errors
///
/// Returns an error if the parameter lists differ in length or shape.
pub fn copy_weights(source: &dyn Layer, target: &mut dyn Layer) -> Result<()> {
    let encoded = tensors_to_string(&source.params().iter().map(|p| &p.value).collect::<Vec<_>>());
    let tensors = tensors_from_string(&encoded)?;
    let mut params = target.params_mut();
    if params.len() != tensors.len() {
        return Err(TensorError::invalid_argument(format!(
            "cannot copy weights: {} source tensors vs {} target parameters",
            tensors.len(),
            params.len()
        )));
    }
    for (param, tensor) in params.iter_mut().zip(tensors) {
        if param.value.shape() != tensor.shape() {
            return Err(TensorError::ShapeMismatch {
                left: param.value.shape().dims().to_vec(),
                right: tensor.shape().dims().to_vec(),
            });
        }
        param.value = tensor;
    }
    Ok(())
}

/// Train every learned SR model in the config on a shared synthetic dataset.
///
/// # Errors
///
/// Returns an error if dataset generation or training fails.
pub fn train_sr_models(config: &ExperimentConfig) -> Result<Vec<TrainedSrModel>> {
    let dataset = SrDataset::generate(SrDatasetConfig {
        train_size: config.sr_train_size,
        val_size: config.sr_val_size,
        hr_size: config.sr_hr_size,
        scale: 2,
        seed: config.seed.wrapping_add(17),
    })?;
    let trainer = SrTrainer::new(SrTrainingConfig {
        epochs: config.sr_epochs,
        batch_size: 4,
        learning_rate: 1e-3,
        loss: SrLoss::Mae,
    });
    let mut out = Vec::new();
    for kind in config.sr_kinds.iter().filter(|k| k.is_learned()) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(1000 + *kind as u64));
        let mut network = kind
            .build_local_network(&mut rng)
            .ok_or_else(|| TensorError::invalid_argument("learned kind must build a network"))?;
        trainer.train(network.as_mut(), &dataset)?;
        let val_psnr = evaluate_network_psnr(network.as_mut(), &dataset)?;
        out.push(TrainedSrModel {
            kind: *kind,
            network,
            val_psnr,
        });
    }
    Ok(out)
}

/// Build a defense pipeline for `kind`, cloning trained weights when the kind
/// is a learned model.
///
/// # Errors
///
/// Returns an error if `kind` is learned but absent from `trained`.
pub fn build_defense(
    kind: SrModelKind,
    preprocess: PreprocessConfig,
    trained: &[TrainedSrModel],
    seed: u64,
) -> Result<DefensePipeline> {
    if let Some(upscaler) = kind.build_interpolation(2) {
        return Ok(DefensePipeline::new(preprocess, upscaler));
    }
    let source = trained
        .iter()
        .find(|m| m.kind == kind)
        .ok_or_else(|| TensorError::invalid_argument(format!("{kind} has not been trained")))?;
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2000 + kind as u64));
    let mut network = kind
        .build_local_network(&mut rng)
        .ok_or_else(|| TensorError::invalid_argument("learned kind must build a network"))?;
    copy_weights(source.network.as_ref(), network.as_mut())?;
    let upscaler = NetworkUpscaler::new(kind.name(), 2, network);
    Ok(DefensePipeline::new(preprocess, Box::new(upscaler)))
}

/// Reproduce Table I: train every learned SR model, measure PSNR on the
/// synthetic validation set, and report paper-scale parameters/MACs.
///
/// # Errors
///
/// Returns an error if any training or cost computation fails.
pub fn run_table1(config: &ExperimentConfig) -> Result<Vec<Table1Row>> {
    let trained = train_sr_models(config)?;
    let mut rows = Vec::new();
    for model in &trained {
        let cost = paper_cost(model.kind)?
            .ok_or_else(|| TensorError::invalid_argument("learned kind must have a cost"))?;
        let reported = paper_reported(model.kind);
        rows.push(Table1Row {
            model: model.kind.name().to_string(),
            params: cost.params,
            macs: cost.macs,
            measured_psnr: model.val_psnr,
            paper_psnr: paper_reported_psnr(model.kind),
            paper_params: reported.map(|r| r.params),
            paper_macs: reported.map(|r| r.macs),
        });
    }
    Ok(rows)
}

fn train_classifier(
    kind: ClassifierKind,
    dataset: &ClassificationDataset,
    config: &ExperimentConfig,
) -> Result<Box<dyn Layer>> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(3000 + kind as u64));
    let mut classifier = kind.build_local(config.num_classes, &mut rng);
    ClassifierTrainer::new(ClassifierTrainingConfig {
        epochs: config.classifier_epochs,
        batch_size: 12,
        learning_rate: 3e-3,
    })
    .train(classifier.as_mut(), dataset)?;
    Ok(classifier)
}

fn classification_dataset(config: &ExperimentConfig) -> Result<ClassificationDataset> {
    ClassificationDataset::generate(DatasetConfig {
        num_classes: config.num_classes,
        train_size: config.train_size,
        val_size: config.val_size,
        height: config.image_size,
        width: config.image_size,
        seed: config.seed,
    })
}

/// Evaluate one classifier section of Table II.
fn run_table2_section(
    classifier_kind: ClassifierKind,
    dataset: &ClassificationDataset,
    trained_sr: &[TrainedSrModel],
    config: &ExperimentConfig,
) -> Result<Table2Section> {
    let classifier = train_classifier(classifier_kind, dataset, config)?;
    let mut evaluator = RobustnessEvaluator::new(
        classifier_kind.name(),
        classifier,
        dataset.val_images(),
        dataset.val_labels(),
        config.eval_images,
    )?;
    let clean_accuracy = evaluator.clean_accuracy()?;

    let mut rows: Vec<Table2Row> = Vec::new();
    // Row 0: No Defense. Then one row per SR kind in the config.
    let mut defenses: Vec<Option<SrModelKind>> = vec![None];
    defenses.extend(config.sr_kinds.iter().copied().map(Some));

    for defense_kind in defenses {
        let defense_name = defense_kind
            .map(|k| k.name().to_string())
            .unwrap_or_else(|| "No Defense".to_string());
        let mut accuracies = Vec::new();
        for attack_kind in &config.attacks {
            let attack = attack_kind.build(config.attack);
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add(4000 + *attack_kind as u64 * 17 + classifier_kind as u64),
            );
            let adversarial = evaluator.craft_adversarial(attack.as_ref(), &mut rng)?;
            let accuracy = match defense_kind {
                None => evaluator.defended_accuracy(&adversarial, None)?,
                Some(kind) => {
                    let pipeline =
                        build_defense(kind, PreprocessConfig::paper(), trained_sr, config.seed)?;
                    evaluator.defended_accuracy(&adversarial, Some(&pipeline))?
                }
            };
            accuracies.push((attack_kind.name().to_string(), accuracy));
        }
        rows.push(Table2Row {
            defense: defense_name,
            accuracies,
        });
    }
    Ok(Table2Section {
        classifier: classifier_kind.name().to_string(),
        clean_accuracy,
        rows,
    })
}

/// Reproduce Table II: robust accuracy of every classifier under every attack
/// for every defense. Classifier sections run in parallel threads.
///
/// # Errors
///
/// Returns an error if any stage (training, attacking, defending) fails.
pub fn run_table2(config: &ExperimentConfig) -> Result<Vec<Table2Section>> {
    let dataset = classification_dataset(config)?;
    let trained_sr = train_sr_models(config)?;
    let results: Mutex<Vec<(usize, Table2Section)>> = Mutex::new(Vec::new());
    let errors: Mutex<Vec<TensorError>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for (index, classifier_kind) in config.classifiers.iter().copied().enumerate() {
            let dataset = &dataset;
            let trained_sr = &trained_sr;
            let results = &results;
            let errors = &errors;
            scope.spawn(move || {
                match run_table2_section(classifier_kind, dataset, trained_sr, config) {
                    Ok(section) => results.lock().unwrap().push((index, section)),
                    Err(err) => errors.lock().unwrap().push(err),
                }
            });
        }
    });

    if let Some(err) = errors
        .into_inner()
        .expect("table II error mutex poisoned")
        .into_iter()
        .next()
    {
        return Err(err);
    }
    let mut sections = results
        .into_inner()
        .expect("table II result mutex poisoned");
    sections.sort_by_key(|(index, _)| *index);
    Ok(sections.into_iter().map(|(_, section)| section).collect())
}

/// Reproduce Table III: the JPEG ablation (defense with and without the JPEG
/// stage) for a subset of classifiers, defenses and attacks.
///
/// # Errors
///
/// Returns an error if any stage fails.
pub fn run_table3(config: &ExperimentConfig) -> Result<Vec<Table3Row>> {
    let dataset = classification_dataset(config)?;
    let trained_sr = train_sr_models(config)?;
    let mut rows = Vec::new();
    for classifier_kind in &config.classifiers {
        let classifier = train_classifier(*classifier_kind, &dataset, config)?;
        let mut evaluator = RobustnessEvaluator::new(
            classifier_kind.name(),
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            config.eval_images,
        )?;
        for attack_kind in &config.attacks {
            let attack = attack_kind.build(config.attack);
            let mut rng = StdRng::seed_from_u64(
                config
                    .seed
                    .wrapping_add(5000 + *attack_kind as u64 * 13 + *classifier_kind as u64),
            );
            let adversarial = evaluator.craft_adversarial(attack.as_ref(), &mut rng)?;
            for kind in config.sr_kinds.iter().filter(|k| k.is_learned()) {
                let with_jpeg =
                    build_defense(*kind, PreprocessConfig::paper(), &trained_sr, config.seed)?;
                let without_jpeg = build_defense(
                    *kind,
                    PreprocessConfig::without_jpeg(),
                    &trained_sr,
                    config.seed,
                )?;
                let jpeg_accuracy = evaluator.defended_accuracy(&adversarial, Some(&with_jpeg))?;
                let no_jpeg_accuracy =
                    evaluator.defended_accuracy(&adversarial, Some(&without_jpeg))?;
                rows.push(Table3Row {
                    classifier: classifier_kind.name().to_string(),
                    defense: kind.name().to_string(),
                    attack: attack_kind.name().to_string(),
                    no_jpeg_accuracy,
                    jpeg_accuracy,
                });
            }
        }
    }
    Ok(rows)
}

/// The SR models reported in Table IV, in the paper's row order.
pub fn table4_sr_models() -> Vec<SrModelKind> {
    vec![
        SrModelKind::Fsrcnn,
        SrModelKind::SesrM5,
        SrModelKind::SesrM3,
        SrModelKind::SesrM2,
    ]
}

/// Reproduce Table IV analytically: end-to-end latency of the enlarged
/// MobileNet-V2 plus each SR model on an Ethos-U55-class NPU.
///
/// # Errors
///
/// Returns an error if a spec or the NPU configuration is inconsistent.
pub fn run_table4(npu: &NpuConfig) -> Result<Vec<Table4Row>> {
    let classifier_spec = sesr_classifiers::cost::mobilenet_v2_paper_spec();
    let mut rows = Vec::new();
    for kind in table4_sr_models() {
        let sr_spec = kind
            .paper_spec()
            .ok_or_else(|| TensorError::invalid_argument("table IV models are all learned"))?;
        let PipelineLatency {
            sr_ms,
            classification_ms,
            total_ms,
            fps,
        } = estimate_pipeline(&sr_spec, &classifier_spec, (3, 299, 299), 2, npu)?;
        rows.push(Table4Row {
            sr_model: kind.name().to_string(),
            classification_ms,
            sr_ms,
            total_ms,
            fps,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_weights_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0);
        let source = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
        let mut rng2 = StdRng::seed_from_u64(99);
        let mut target = SrModelKind::SesrM2.build_local_network(&mut rng2).unwrap();
        assert_ne!(
            source.params()[0].value,
            target.params()[0].value,
            "different seeds should differ before copying"
        );
        copy_weights(source.as_ref(), target.as_mut()).unwrap();
        assert_eq!(source.params().len(), target.params().len());
        for (a, b) in source.params().iter().zip(target.params()) {
            assert!(a.value.max_abs_diff(&b.value).unwrap() < 1e-6);
        }
    }

    #[test]
    fn copy_weights_rejects_architecture_mismatch() {
        let mut rng = StdRng::seed_from_u64(0);
        let source = SrModelKind::SesrM2.build_local_network(&mut rng).unwrap();
        let mut target = SrModelKind::SesrM3.build_local_network(&mut rng).unwrap();
        assert!(copy_weights(source.as_ref(), target.as_mut()).is_err());
    }

    #[test]
    fn table4_is_analytic_and_ordered() {
        let rows = run_table4(&NpuConfig::ethos_u55_256()).unwrap();
        assert_eq!(rows.len(), 4);
        // Classification latency is the same for every row (same enlarged classifier).
        for row in &rows {
            assert!((row.classification_ms - rows[0].classification_ms).abs() < 1e-9);
            assert!((row.total_ms - (row.sr_ms + row.classification_ms)).abs() < 1e-9);
        }
        // FSRCNN is the slowest, SESR-M2 the fastest (Table IV ordering).
        assert_eq!(rows[0].sr_model, "FSRCNN");
        assert_eq!(rows[3].sr_model, "SESR-M2");
        assert!(rows[0].total_ms > rows[3].total_ms);
        let fps_ratio = rows[3].fps / rows[0].fps;
        assert!(
            (1.8..6.0).contains(&fps_ratio),
            "FPS ratio {fps_ratio} outside expected band"
        );
    }

    #[test]
    fn build_defense_requires_trained_weights_for_learned_kinds() {
        let err = build_defense(SrModelKind::SesrM2, PreprocessConfig::paper(), &[], 0);
        assert!(err.is_err());
        let ok = build_defense(
            SrModelKind::NearestNeighbor,
            PreprocessConfig::paper(),
            &[],
            0,
        );
        assert!(ok.is_ok());
    }
}
