//! **sesr-defense** — the core library of the reproduction of
//! *Super-Efficient Super Resolution for Fast Adversarial Defense at the
//! Edge* (DATE 2022).
//!
//! The paper's contribution is a training-free, model-agnostic defense for
//! image classifiers deployed on constrained edge devices: preprocess the
//! (possibly adversarial) input with JPEG compression, wavelet denoising and
//! ×2 super resolution before classification, and show that **tiny SR
//! networks (SESR, FSRCNN) retain the robustness of huge ones (EDSR)** while
//! being orders of magnitude cheaper — which is what makes the defense
//! deployable on a micro-NPU.
//!
//! This crate wires the substrates together:
//!
//! * [`pipeline`] — the [`DefensePipeline`] (JPEG → wavelet → SR), generic
//!   over any [`Upscaler`](sesr_models::Upscaler).
//! * [`robustness`] — the gray-box evaluation harness: select a clean-correct
//!   evaluation subset, craft attacks against the bare classifier, measure
//!   robust accuracy with and without each defense (Tables II and III).
//! * [`eval`] — the composable evaluation-plan API: declarative
//!   [`EvalPlan`](eval::EvalPlan)s over model × scale × preprocess × attack
//!   × ε × classifier grids, executed on a share-nothing worker pool with
//!   store-backed train-once model provisioning
//!   ([`ModelBank`](eval::ModelBank)) and streaming result sinks.
//! * [`experiments`] — the legacy per-table drivers, now deprecated shims
//!   over [`eval`] with bitwise-identical output.
//! * [`report`] — plain-text table formatting used by the `tables` binary and
//!   the benchmark harness.
//!
//! # Quickstart
//!
//! ```
//! use sesr_defense::pipeline::{DefensePipeline, PreprocessConfig};
//! use sesr_models::SrModelKind;
//! use sesr_tensor::{Shape, Tensor};
//!
//! // A defense with nearest-neighbour upscaling (no training needed).
//! let upscaler = SrModelKind::NearestNeighbor.build_interpolation(2).unwrap();
//! let mut defense = DefensePipeline::new(PreprocessConfig::paper(), upscaler);
//! let image = Tensor::full(Shape::new(&[1, 3, 32, 32]), 0.5);
//! let defended = defense.defend(&image)?;
//! assert_eq!(defended.shape().dims(), &[1, 3, 64, 64]);
//! # Ok::<(), sesr_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod experiments;
pub mod extensions;
pub mod pipeline;
pub mod report;
pub mod robustness;

pub use pipeline::{DefendTrace, DefensePipeline, PreprocessConfig};
pub use robustness::{DefenseEvaluation, RobustnessEvaluator, RobustnessScenario};

/// Result alias re-exported from the tensor crate.
pub type Result<T> = sesr_tensor::Result<T>;
