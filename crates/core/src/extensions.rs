//! Ablations and extensions beyond the paper's tables, addressing the open
//! questions raised in its Section V:
//!
//! * [`run_clean_accuracy_impact`] — how much accuracy does the defense cost
//!   on *clean* (non-attacked) images? (The paper argues SR-based
//!   transformations preserve clean accuracy better than other input
//!   transformations; this driver measures it.)
//! * [`run_epsilon_sweep`] — robustness as a function of the attack budget ε
//!   (the paper fixes ε = 8/255).
//! * [`run_wavelet_ablation`] — the Table III ablation applied to the wavelet
//!   stage instead of the JPEG stage.

use crate::experiments::{build_defense, train_sr_models, ExperimentConfig};
use crate::pipeline::PreprocessConfig;
use crate::robustness::RobustnessEvaluator;
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_attacks::AttackKind;
use sesr_classifiers::{ClassifierKind, ClassifierTrainer, ClassifierTrainingConfig};
use sesr_datagen::{ClassificationDataset, DatasetConfig};
use sesr_imaging::WaveletConfig;
use sesr_models::SrModelKind;
use sesr_nn::Layer;

/// One row of the clean-accuracy-impact ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanImpactRow {
    /// Classifier name.
    pub classifier: String,
    /// Defense (upscaler) name or "No Defense".
    pub defense: String,
    /// Accuracy on clean images routed through the defense.
    pub clean_defended_accuracy: f32,
}

/// One row of the robustness-vs-epsilon sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonSweepRow {
    /// Attack budget ε.
    pub epsilon: f32,
    /// Defense name or "No Defense".
    pub defense: String,
    /// Robust accuracy at this ε.
    pub robust_accuracy: f32,
}

/// One row of the wavelet ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveletAblationRow {
    /// Classifier name.
    pub classifier: String,
    /// Defense (upscaler) name.
    pub defense: String,
    /// Robust accuracy without the wavelet stage (JPEG + SR only).
    pub no_wavelet_accuracy: f32,
    /// Robust accuracy with the wavelet stage (full pipeline).
    pub wavelet_accuracy: f32,
}

fn dataset_for(config: &ExperimentConfig) -> Result<ClassificationDataset> {
    ClassificationDataset::generate(DatasetConfig {
        num_classes: config.num_classes,
        train_size: config.train_size,
        val_size: config.val_size,
        height: config.image_size,
        width: config.image_size,
        seed: config.seed,
    })
}

fn trained_classifier(
    kind: ClassifierKind,
    dataset: &ClassificationDataset,
    config: &ExperimentConfig,
) -> Result<Box<dyn Layer>> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(7000 + kind as u64));
    let mut classifier = kind.build_local(config.num_classes, &mut rng);
    ClassifierTrainer::new(ClassifierTrainingConfig {
        epochs: config.classifier_epochs,
        batch_size: 12,
        learning_rate: 3e-3,
    })
    .train(classifier.as_mut(), dataset)?;
    Ok(classifier)
}

/// Measure classifier accuracy on **clean** images routed through each
/// defense (versus the undefended clean accuracy of 100 % on the evaluation
/// subset). A good training-free defense should cost little here.
///
/// # Errors
///
/// Returns an error if any training or inference stage fails.
pub fn run_clean_accuracy_impact(config: &ExperimentConfig) -> Result<Vec<CleanImpactRow>> {
    let dataset = dataset_for(config)?;
    let trained_sr = train_sr_models(config)?;
    let mut rows = Vec::new();
    for classifier_kind in &config.classifiers {
        let classifier = trained_classifier(*classifier_kind, &dataset, config)?;
        let mut evaluator = RobustnessEvaluator::new(
            classifier_kind.name(),
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            config.eval_images,
        )?;
        rows.push(CleanImpactRow {
            classifier: classifier_kind.name().to_string(),
            defense: "No Defense".to_string(),
            clean_defended_accuracy: evaluator.clean_accuracy()?,
        });
        let clean_images: Vec<sesr_tensor::Tensor> = evaluator.scenario().eval_images().to_vec();
        for kind in &config.sr_kinds {
            let pipeline =
                build_defense(*kind, PreprocessConfig::paper(), &trained_sr, config.seed)?;
            let accuracy = evaluator.defended_accuracy(&clean_images, Some(&pipeline))?;
            rows.push(CleanImpactRow {
                classifier: classifier_kind.name().to_string(),
                defense: kind.name().to_string(),
                clean_defended_accuracy: accuracy,
            });
        }
    }
    Ok(rows)
}

/// Robustness as a function of the attack budget ε, for the "No Defense",
/// nearest-neighbour and first learned SR defense in the configuration.
///
/// # Errors
///
/// Returns an error if any stage fails.
pub fn run_epsilon_sweep(
    config: &ExperimentConfig,
    epsilons: &[f32],
) -> Result<Vec<EpsilonSweepRow>> {
    let dataset = dataset_for(config)?;
    let trained_sr = train_sr_models(config)?;
    let classifier_kind = *config
        .classifiers
        .first()
        .unwrap_or(&ClassifierKind::MobileNetV2);
    let classifier = trained_classifier(classifier_kind, &dataset, config)?;
    let mut evaluator = RobustnessEvaluator::new(
        classifier_kind.name(),
        classifier,
        dataset.val_images(),
        dataset.val_labels(),
        config.eval_images,
    )?;
    let attack_kind = *config.attacks.first().unwrap_or(&AttackKind::Pgd);
    let learned_kind = config
        .sr_kinds
        .iter()
        .copied()
        .find(|k| k.is_learned())
        .unwrap_or(SrModelKind::SesrM2);

    let mut rows = Vec::new();
    for &epsilon in epsilons {
        let attack = attack_kind.build(config.attack.with_epsilon(epsilon));
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(9000));
        let adversarial = evaluator.craft_adversarial(attack.as_ref(), &mut rng)?;
        rows.push(EpsilonSweepRow {
            epsilon,
            defense: "No Defense".to_string(),
            robust_accuracy: evaluator.defended_accuracy(&adversarial, None)?,
        });
        let nearest = build_defense(
            SrModelKind::NearestNeighbor,
            PreprocessConfig::paper(),
            &trained_sr,
            config.seed,
        )?;
        rows.push(EpsilonSweepRow {
            epsilon,
            defense: SrModelKind::NearestNeighbor.name().to_string(),
            robust_accuracy: evaluator.defended_accuracy(&adversarial, Some(&nearest))?,
        });
        let learned = build_defense(
            learned_kind,
            PreprocessConfig::paper(),
            &trained_sr,
            config.seed,
        )?;
        rows.push(EpsilonSweepRow {
            epsilon,
            defense: learned_kind.name().to_string(),
            robust_accuracy: evaluator.defended_accuracy(&adversarial, Some(&learned))?,
        });
    }
    Ok(rows)
}

/// The wavelet ablation: full pipeline versus JPEG + SR without wavelet
/// denoising, mirroring Table III's treatment of the JPEG stage.
///
/// # Errors
///
/// Returns an error if any stage fails.
pub fn run_wavelet_ablation(config: &ExperimentConfig) -> Result<Vec<WaveletAblationRow>> {
    let dataset = dataset_for(config)?;
    let trained_sr = train_sr_models(config)?;
    let mut rows = Vec::new();
    for classifier_kind in &config.classifiers {
        let classifier = trained_classifier(*classifier_kind, &dataset, config)?;
        let mut evaluator = RobustnessEvaluator::new(
            classifier_kind.name(),
            classifier,
            dataset.val_images(),
            dataset.val_labels(),
            config.eval_images,
        )?;
        let attack_kind = *config.attacks.first().unwrap_or(&AttackKind::Pgd);
        let attack = attack_kind.build(config.attack);
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(11_000));
        let adversarial = evaluator.craft_adversarial(attack.as_ref(), &mut rng)?;
        for kind in config.sr_kinds.iter().filter(|k| k.is_learned()) {
            let full = build_defense(*kind, PreprocessConfig::paper(), &trained_sr, config.seed)?;
            let no_wavelet_config = PreprocessConfig {
                wavelet: None::<WaveletConfig>,
                ..PreprocessConfig::paper()
            };
            let no_wavelet = build_defense(*kind, no_wavelet_config, &trained_sr, config.seed)?;
            rows.push(WaveletAblationRow {
                classifier: classifier_kind.name().to_string(),
                defense: kind.name().to_string(),
                no_wavelet_accuracy: evaluator
                    .defended_accuracy(&adversarial, Some(&no_wavelet))?,
                wavelet_accuracy: evaluator.defended_accuracy(&adversarial, Some(&full))?,
            });
        }
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ExperimentConfig {
        let mut config = ExperimentConfig::quick();
        config.sr_kinds = vec![SrModelKind::NearestNeighbor, SrModelKind::SesrM2];
        config.eval_images = 4;
        config
    }

    #[test]
    fn clean_accuracy_impact_rows_are_complete() {
        let config = tiny_config();
        let rows = run_clean_accuracy_impact(&config).unwrap();
        // One "No Defense" row plus one per SR kind, per classifier.
        assert_eq!(
            rows.len(),
            config.classifiers.len() * (1 + config.sr_kinds.len())
        );
        // The undefended clean accuracy is 1.0 by construction of the subset.
        assert!((rows[0].clean_defended_accuracy - 1.0).abs() < 1e-6);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.clean_defended_accuracy));
        }
    }

    #[test]
    fn epsilon_sweep_produces_three_defenses_per_epsilon() {
        let config = tiny_config();
        let epsilons = [2.0 / 255.0, 16.0 / 255.0];
        let rows = run_epsilon_sweep(&config, &epsilons).unwrap();
        assert_eq!(rows.len(), epsilons.len() * 3);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.robust_accuracy));
        }
    }

    #[test]
    fn wavelet_ablation_reports_both_settings() {
        let config = tiny_config();
        let rows = run_wavelet_ablation(&config).unwrap();
        assert_eq!(rows.len(), 1);
        assert!((0.0..=1.0).contains(&rows[0].wavelet_accuracy));
        assert!((0.0..=1.0).contains(&rows[0].no_wavelet_accuracy));
    }
}
