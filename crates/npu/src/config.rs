//! Micro-NPU hardware configurations.

use sesr_tensor::TensorError;

/// An analytic description of a micro-NPU, sufficient for roofline-style
/// per-layer latency estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct NpuConfig {
    /// Human-readable configuration name.
    pub name: String,
    /// Peak multiply-accumulate operations per clock cycle (the Ethos-U55 is
    /// configurable from 32 to 256 8-bit MACs/cycle).
    pub macs_per_cycle: u32,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
    /// Fraction of the peak MAC rate achieved on convolution workloads
    /// (covers array under-utilisation on shallow channels, halo overheads
    /// and scheduling gaps).
    pub compute_efficiency: f64,
    /// Sustained memory bandwidth for weights and activations, bytes/second
    /// (micro-NPUs stream activations through a small SRAM from flash/DRAM).
    pub memory_bandwidth_bytes_per_s: f64,
    /// Bytes per tensor element after quantisation (1 for the int8 deployment
    /// flow used with Ethos-U55).
    pub bytes_per_element: f64,
}

impl NpuConfig {
    /// The Ethos-U55-256 class configuration used for Table IV: 256 MACs per
    /// cycle at 500 MHz (≈ 0.256 TMAC/s ≈ 0.5 TOP/s counting multiply and add
    /// separately), with a modest embedded memory system.
    pub fn ethos_u55_256() -> Self {
        NpuConfig {
            name: "Ethos-U55-256".to_string(),
            macs_per_cycle: 256,
            clock_hz: 500e6,
            compute_efficiency: 0.55,
            memory_bandwidth_bytes_per_s: 3.2e9,
            bytes_per_element: 1.0,
        }
    }

    /// The smaller Ethos-U55-128 configuration (half the MAC array).
    pub fn ethos_u55_128() -> Self {
        NpuConfig {
            name: "Ethos-U55-128".to_string(),
            macs_per_cycle: 128,
            ..NpuConfig::ethos_u55_256()
        }
    }

    /// A mobile-class NPU (Ethos-N78-like) with an order of magnitude more
    /// compute and bandwidth, used for the "SESR does 1080p→4K in real time on
    /// a mobile NPU" context from the SESR paper.
    pub fn ethos_n78_like() -> Self {
        NpuConfig {
            name: "Ethos-N78-class".to_string(),
            macs_per_cycle: 2048,
            clock_hz: 1.0e9,
            compute_efficiency: 0.6,
            memory_bandwidth_bytes_per_s: 25.0e9,
            bytes_per_element: 1.0,
        }
    }

    /// Peak MAC throughput in MAC/s.
    pub fn peak_macs_per_second(&self) -> f64 {
        self.macs_per_cycle as f64 * self.clock_hz
    }

    /// Effective sustained MAC throughput in MAC/s.
    pub fn effective_macs_per_second(&self) -> f64 {
        self.peak_macs_per_second() * self.compute_efficiency
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if any rate or ratio is non-positive or the
    /// efficiency exceeds 1.
    pub fn validate(&self) -> crate::Result<()> {
        if self.macs_per_cycle == 0
            || self.clock_hz <= 0.0
            || self.memory_bandwidth_bytes_per_s <= 0.0
            || self.bytes_per_element <= 0.0
        {
            return Err(TensorError::invalid_argument(
                "npu configuration rates must be positive",
            ));
        }
        if !(0.0..=1.0).contains(&self.compute_efficiency) || self.compute_efficiency == 0.0 {
            return Err(TensorError::invalid_argument(
                "compute efficiency must be in (0, 1]",
            ));
        }
        Ok(())
    }
}

impl Default for NpuConfig {
    fn default() -> Self {
        NpuConfig::ethos_u55_256()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            NpuConfig::ethos_u55_256(),
            NpuConfig::ethos_u55_128(),
            NpuConfig::ethos_n78_like(),
        ] {
            assert!(cfg.validate().is_ok(), "{} invalid", cfg.name);
        }
    }

    #[test]
    fn u55_256_is_roughly_half_a_top() {
        // 0.5 TOP/s counting multiply and add as separate operations.
        let cfg = NpuConfig::ethos_u55_256();
        let tops = 2.0 * cfg.peak_macs_per_second() / 1e12;
        assert!((0.2..0.6).contains(&tops), "tops={tops}");
    }

    #[test]
    fn u55_128_is_half_of_u55_256() {
        let big = NpuConfig::ethos_u55_256();
        let small = NpuConfig::ethos_u55_128();
        assert!((big.peak_macs_per_second() / small.peak_macs_per_second() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mobile_npu_is_much_faster() {
        let u55 = NpuConfig::ethos_u55_256();
        let n78 = NpuConfig::ethos_n78_like();
        assert!(n78.effective_macs_per_second() > 5.0 * u55.effective_macs_per_second());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let cfg = NpuConfig {
            compute_efficiency: 0.0,
            ..NpuConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = NpuConfig {
            macs_per_cycle: 0,
            ..NpuConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = NpuConfig {
            memory_bandwidth_bytes_per_s: -1.0,
            ..NpuConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
