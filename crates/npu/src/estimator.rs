//! Roofline-style per-layer latency estimation over [`NetworkSpec`]s.

use crate::config::NpuConfig;
use crate::Result;
use sesr_nn::spec::NetworkSpec;

/// Latency breakdown of one operation.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatency {
    /// Layer name from the spec.
    pub name: String,
    /// MACs executed.
    pub macs: u64,
    /// Weight + activation traffic in bytes.
    pub traffic_bytes: u64,
    /// Compute-bound time in seconds.
    pub compute_seconds: f64,
    /// Memory-bound time in seconds.
    pub memory_seconds: f64,
    /// The roofline latency: `max(compute, memory)`.
    pub seconds: f64,
}

impl LayerLatency {
    /// `true` when the layer is limited by memory traffic rather than MACs.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_seconds > self.compute_seconds
    }
}

/// Latency estimate for a whole network.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkLatency {
    /// Network name from the spec.
    pub network: String,
    /// NPU configuration name used.
    pub npu: String,
    /// Per-layer breakdown.
    pub layers: Vec<LayerLatency>,
    /// Total latency in milliseconds.
    pub total_ms: f64,
    /// Frames per second (1000 / total_ms).
    pub fps: f64,
}

/// End-to-end pipeline estimate (SR + classification), the quantity reported
/// by Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineLatency {
    /// Latency of the SR stage in milliseconds.
    pub sr_ms: f64,
    /// Latency of the classification stage in milliseconds.
    pub classification_ms: f64,
    /// Combined latency in milliseconds.
    pub total_ms: f64,
    /// End-to-end frames per second.
    pub fps: f64,
}

/// Estimate the latency of a network on an NPU for a given input shape
/// `(channels, height, width)`.
///
/// # Errors
///
/// Returns an error if the NPU configuration is invalid or the spec is
/// internally inconsistent.
pub fn estimate_network(
    spec: &NetworkSpec,
    input: (usize, usize, usize),
    npu: &NpuConfig,
) -> Result<NetworkLatency> {
    npu.validate()?;
    let costs = spec.costs(input)?;
    let macs_per_second = npu.effective_macs_per_second();
    let mut layers = Vec::with_capacity(costs.len());
    let mut total_seconds = 0.0f64;
    for cost in costs {
        // Weight traffic (read once per inference) plus activation read/write.
        let traffic_elements = cost.params + cost.input_elements + cost.output_elements;
        let traffic_bytes = (traffic_elements as f64 * npu.bytes_per_element) as u64;
        let compute_seconds = cost.macs as f64 / macs_per_second;
        let memory_seconds = traffic_bytes as f64 / npu.memory_bandwidth_bytes_per_s;
        let seconds = compute_seconds.max(memory_seconds);
        total_seconds += seconds;
        layers.push(LayerLatency {
            name: cost.name,
            macs: cost.macs,
            traffic_bytes,
            compute_seconds,
            memory_seconds,
            seconds,
        });
    }
    let total_ms = total_seconds * 1e3;
    Ok(NetworkLatency {
        network: spec.name.clone(),
        npu: npu.name.clone(),
        layers,
        total_ms,
        fps: if total_ms > 0.0 {
            1000.0 / total_ms
        } else {
            f64::INFINITY
        },
    })
}

/// Estimate the end-to-end defense latency: the SR network upscaling
/// `sr_input` followed by the classifier running on the upscaled image.
///
/// # Errors
///
/// Returns an error if either spec is inconsistent or the NPU configuration
/// is invalid.
pub fn estimate_pipeline(
    sr_spec: &NetworkSpec,
    classifier_spec: &NetworkSpec,
    sr_input: (usize, usize, usize),
    scale: usize,
    npu: &NpuConfig,
) -> Result<PipelineLatency> {
    let sr = estimate_network(sr_spec, sr_input, npu)?;
    let classifier_input = (sr_input.0, sr_input.1 * scale, sr_input.2 * scale);
    let classifier = estimate_network(classifier_spec, classifier_input, npu)?;
    let total_ms = sr.total_ms + classifier.total_ms;
    Ok(PipelineLatency {
        sr_ms: sr.total_ms,
        classification_ms: classifier.total_ms,
        total_ms,
        fps: if total_ms > 0.0 {
            1000.0 / total_ms
        } else {
            f64::INFINITY
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sesr_classifiers::cost::mobilenet_v2_paper_spec;
    use sesr_models::SrModelKind;

    const PAPER_INPUT: (usize, usize, usize) = (3, 299, 299);

    fn u55() -> NpuConfig {
        NpuConfig::ethos_u55_256()
    }

    #[test]
    fn latency_is_positive_and_layers_add_up() {
        let spec = SrModelKind::SesrM2.paper_spec().unwrap();
        let lat = estimate_network(&spec, PAPER_INPUT, &u55()).unwrap();
        assert!(lat.total_ms > 0.0);
        let sum: f64 = lat.layers.iter().map(|l| l.seconds).sum();
        assert!((sum * 1e3 - lat.total_ms).abs() < 1e-9);
        assert!(lat.fps > 0.0);
    }

    #[test]
    fn sr_model_latency_ordering_matches_table4() {
        // Table IV: SESR-M2 < SESR-M3 < SESR-M5 << FSRCNN.
        let lat = |kind: SrModelKind| {
            estimate_network(&kind.paper_spec().unwrap(), PAPER_INPUT, &u55())
                .unwrap()
                .total_ms
        };
        let m2 = lat(SrModelKind::SesrM2);
        let m3 = lat(SrModelKind::SesrM3);
        let m5 = lat(SrModelKind::SesrM5);
        let fsrcnn = lat(SrModelKind::Fsrcnn);
        assert!(m2 < m3 && m3 < m5 && m5 < fsrcnn, "{m2} {m3} {m5} {fsrcnn}");
        assert!(
            fsrcnn / m2 > 3.0,
            "FSRCNN should be several times slower than SESR-M2 (got {})",
            fsrcnn / m2
        );
    }

    #[test]
    fn end_to_end_fps_ratio_is_roughly_3x() {
        // Table IV: SESR-M2 pipeline ~15 FPS vs FSRCNN pipeline ~5.3 FPS (≈2.9x).
        let classifier = mobilenet_v2_paper_spec();
        let run = |kind: SrModelKind| {
            estimate_pipeline(
                &kind.paper_spec().unwrap(),
                &classifier,
                PAPER_INPUT,
                2,
                &u55(),
            )
            .unwrap()
        };
        let fsrcnn = run(SrModelKind::Fsrcnn);
        let m2 = run(SrModelKind::SesrM2);
        let ratio = m2.fps / fsrcnn.fps;
        assert!(
            (1.8..6.0).contains(&ratio),
            "end-to-end FPS ratio {ratio} outside the expected band (fsrcnn {} fps, m2 {} fps)",
            fsrcnn.fps,
            m2.fps
        );
        // The classification stage cost is identical in both pipelines.
        assert!((fsrcnn.classification_ms - m2.classification_ms).abs() < 1e-9);
    }

    #[test]
    fn faster_npu_gives_lower_latency() {
        let spec = SrModelKind::Fsrcnn.paper_spec().unwrap();
        let slow = estimate_network(&spec, PAPER_INPUT, &NpuConfig::ethos_u55_128()).unwrap();
        let fast = estimate_network(&spec, PAPER_INPUT, &NpuConfig::ethos_n78_like()).unwrap();
        assert!(fast.total_ms < slow.total_ms);
    }

    #[test]
    fn invalid_npu_is_rejected() {
        let spec = SrModelKind::SesrM2.paper_spec().unwrap();
        let bad = NpuConfig {
            compute_efficiency: 0.0,
            ..NpuConfig::default()
        };
        assert!(estimate_network(&spec, PAPER_INPUT, &bad).is_err());
    }

    #[test]
    fn memory_bound_detection() {
        let spec = SrModelKind::SesrM2.paper_spec().unwrap();
        let lat = estimate_network(&spec, PAPER_INPUT, &u55()).unwrap();
        // Elementwise / depth-to-space layers move data without MACs, so at
        // least one layer must be memory bound.
        assert!(lat.layers.iter().any(|l| l.is_memory_bound()));
    }
}
