//! Analytic micro-NPU performance estimator.
//!
//! Table IV of the paper is produced with Arm's Vela performance estimator
//! for the Ethos-U55 micro-NPU — an *analytic model*, not silicon
//! measurements. This crate re-implements an estimator of the same class: for
//! every operation of a [`NetworkSpec`](sesr_nn::spec::NetworkSpec) it
//! computes a compute-bound cycle count (MACs over effective MACs/cycle) and
//! a memory-bound cycle count (weight + activation traffic over the memory
//! bandwidth), takes the maximum (the roofline assumption micro-NPU compilers
//! use for scheduling), and sums over the network.
//!
//! Absolute milliseconds will differ from Vela's (which models the real
//! datapath, SRAM tiling and kernel decomposition), but the quantities the
//! paper's conclusion rests on — the ordering of SR models, the roughly 3×
//! end-to-end FPS advantage of SESR-M2 over FSRCNN, and the fixed cost of the
//! enlarged MobileNet-V2 — are preserved because they are driven by the same
//! MAC and traffic totals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod estimator;

pub use config::NpuConfig;
pub use estimator::{
    estimate_network, estimate_pipeline, LayerLatency, NetworkLatency, PipelineLatency,
};

/// Result alias re-exported from the tensor crate.
pub type Result<T> = sesr_tensor::Result<T>;
