//! Super-resolution dataset: HR images from the procedural manifold paired
//! with LR images produced by blur + bicubic downsampling, mirroring how the
//! DIV2K ×2 bicubic track used in the paper is generated.

use crate::images::{ImageGenerator, ImageParams};
use crate::Result;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sesr_tensor::conv::{depthwise_conv2d, Conv2dConfig};
use sesr_tensor::resample::{resize, Interpolation};
use sesr_tensor::{Shape, Tensor, TensorError};

/// Configuration of a synthetic SR dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrDatasetConfig {
    /// Number of training HR/LR pairs.
    pub train_size: usize,
    /// Number of validation HR/LR pairs.
    pub val_size: usize,
    /// High-resolution patch size (square). Must be divisible by `scale`.
    pub hr_size: usize,
    /// Upscaling factor (the paper uses ×2 throughout).
    pub scale: usize,
    /// Seed controlling the dataset.
    pub seed: u64,
}

impl Default for SrDatasetConfig {
    fn default() -> Self {
        SrDatasetConfig {
            train_size: 128,
            val_size: 32,
            hr_size: 48,
            scale: 2,
            seed: 0,
        }
    }
}

/// A fully materialised SR dataset of HR/LR pairs with train/val splits.
#[derive(Debug, Clone)]
pub struct SrDataset {
    config: SrDatasetConfig,
    train: Vec<(Tensor, Tensor)>,
    val: Vec<(Tensor, Tensor)>,
}

/// Degrade an HR image to LR: light Gaussian blur followed by bicubic
/// downsampling by `scale` (the standard DIV2K-style degradation model).
///
/// # Errors
///
/// Returns an error if the image is not rank 4 or its size is not divisible
/// by `scale`.
pub fn degrade(hr: &Tensor, scale: usize) -> Result<Tensor> {
    let (_, c, h, w) = hr.shape().as_nchw()?;
    if scale == 0 || h % scale != 0 || w % scale != 0 {
        return Err(TensorError::invalid_argument(format!(
            "image size {h}x{w} must be divisible by scale {scale}"
        )));
    }
    // 3x3 Gaussian blur applied per channel via a depthwise convolution.
    let kernel_1d = [0.25f32, 0.5, 0.25];
    let mut weights = Vec::with_capacity(c * 9);
    for _ in 0..c {
        for ky in 0..3 {
            for kx in 0..3 {
                weights.push(kernel_1d[ky] * kernel_1d[kx]);
            }
        }
    }
    let weight = Tensor::from_vec(Shape::new(&[c, 1, 3, 3]), weights)?;
    let blurred = depthwise_conv2d(hr, &weight, None, Conv2dConfig::same(3))?;
    resize(&blurred, h / scale, w / scale, Interpolation::Bicubic)
}

impl SrDataset {
    /// Generate a dataset from a configuration.
    ///
    /// # Errors
    ///
    /// Returns an error if `hr_size` is not divisible by `scale` or either is
    /// zero.
    pub fn generate(config: SrDatasetConfig) -> Result<Self> {
        if config.scale == 0 || config.hr_size == 0 || !config.hr_size.is_multiple_of(config.scale)
        {
            return Err(TensorError::invalid_argument(format!(
                "hr_size {} must be a non-zero multiple of scale {}",
                config.hr_size, config.scale
            )));
        }
        let gen = ImageGenerator::new(config.hr_size, config.hr_size);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let make = |count: usize, rng: &mut StdRng| -> Result<Vec<(Tensor, Tensor)>> {
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let hr = gen.render(&ImageParams::random(rng))?;
                let lr = degrade(&hr, config.scale)?;
                out.push((hr, lr));
            }
            Ok(out)
        };
        let train = make(config.train_size, &mut rng)?;
        let val = make(config.val_size, &mut rng)?;
        Ok(SrDataset { config, train, val })
    }

    /// The configuration used to generate this dataset.
    pub fn config(&self) -> SrDatasetConfig {
        self.config
    }

    /// Number of training pairs.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Number of validation pairs.
    pub fn val_len(&self) -> usize {
        self.val.len()
    }

    /// Training pair `i` as `(hr, lr)`.
    pub fn train_pair(&self, i: usize) -> (&Tensor, &Tensor) {
        (&self.train[i].0, &self.train[i].1)
    }

    /// Validation pair `i` as `(hr, lr)`.
    pub fn val_pair(&self, i: usize) -> (&Tensor, &Tensor) {
        (&self.val[i].0, &self.val[i].1)
    }

    /// Training mini-batches as `(hr_batch, lr_batch)` tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if `batch_size` is zero.
    pub fn train_batches(&self, batch_size: usize) -> Result<Vec<(Tensor, Tensor)>> {
        Self::batches(&self.train, batch_size)
    }

    /// Validation mini-batches as `(hr_batch, lr_batch)` tensors.
    ///
    /// # Errors
    ///
    /// Returns an error if `batch_size` is zero.
    pub fn val_batches(&self, batch_size: usize) -> Result<Vec<(Tensor, Tensor)>> {
        Self::batches(&self.val, batch_size)
    }

    fn batches(pairs: &[(Tensor, Tensor)], batch_size: usize) -> Result<Vec<(Tensor, Tensor)>> {
        if batch_size == 0 {
            return Err(TensorError::invalid_argument("batch size must be non-zero"));
        }
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < pairs.len() {
            let end = (start + batch_size).min(pairs.len());
            let hr: Vec<Tensor> = pairs[start..end].iter().map(|(h, _)| h.clone()).collect();
            let lr: Vec<Tensor> = pairs[start..end].iter().map(|(_, l)| l.clone()).collect();
            out.push((Tensor::stack_batch(&hr)?, Tensor::stack_batch(&lr)?));
            start = end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> SrDatasetConfig {
        SrDatasetConfig {
            train_size: 6,
            val_size: 3,
            hr_size: 24,
            scale: 2,
            seed: 1,
        }
    }

    #[test]
    fn generation_produces_matched_pairs() {
        let ds = SrDataset::generate(small_config()).unwrap();
        assert_eq!(ds.train_len(), 6);
        assert_eq!(ds.val_len(), 3);
        let (hr, lr) = ds.train_pair(0);
        assert_eq!(hr.shape().dims(), &[1, 3, 24, 24]);
        assert_eq!(lr.shape().dims(), &[1, 3, 12, 12]);
    }

    #[test]
    fn degrade_is_low_pass() {
        let ds = SrDataset::generate(small_config()).unwrap();
        let (hr, lr) = ds.val_pair(0);
        // The LR image must have lower variance than the HR image (blur + downsample).
        let var = |t: &Tensor| {
            let m = t.mean();
            t.map(|v| (v - m) * (v - m)).mean()
        };
        assert!(var(lr) <= var(hr) + 1e-3);
        assert!(lr.min() >= 0.0 && lr.max() <= 1.0);
    }

    #[test]
    fn degrade_validates_divisibility() {
        let hr = Tensor::zeros(Shape::new(&[1, 3, 25, 24]));
        assert!(degrade(&hr, 2).is_err());
        assert!(degrade(&Tensor::zeros(Shape::new(&[1, 3, 24, 24])), 0).is_err());
    }

    #[test]
    fn same_seed_reproduces_pairs() {
        let a = SrDataset::generate(small_config()).unwrap();
        let b = SrDataset::generate(small_config()).unwrap();
        assert_eq!(a.train_pair(0).0, b.train_pair(0).0);
    }

    #[test]
    fn batches_have_consistent_shapes() {
        let ds = SrDataset::generate(small_config()).unwrap();
        let batches = ds.train_batches(4).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0.shape().dims(), &[4, 3, 24, 24]);
        assert_eq!(batches[0].1.shape().dims(), &[4, 3, 12, 12]);
        assert_eq!(batches[1].0.shape().dim(0), 2);
        assert!(ds.train_batches(0).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small_config();
        cfg.hr_size = 25;
        assert!(SrDataset::generate(cfg).is_err());
        let mut cfg = small_config();
        cfg.scale = 0;
        assert!(SrDataset::generate(cfg).is_err());
    }
}
