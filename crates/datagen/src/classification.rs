//! Labelled classification dataset over the procedural image manifold.

use crate::images::ImageGenerator;
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sesr_tensor::{Tensor, TensorError};

/// Configuration of a synthetic classification dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetConfig {
    /// Number of classes.
    pub num_classes: usize,
    /// Number of training images.
    pub train_size: usize,
    /// Number of validation images.
    pub val_size: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Seed controlling the entire dataset.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            num_classes: 8,
            train_size: 512,
            val_size: 128,
            height: 32,
            width: 32,
            seed: 0,
        }
    }
}

/// A fully materialised synthetic classification dataset with train and
/// validation splits.
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    config: DatasetConfig,
    train_images: Vec<Tensor>,
    train_labels: Vec<usize>,
    val_images: Vec<Tensor>,
    val_labels: Vec<usize>,
}

impl ClassificationDataset {
    /// Generate a dataset from a configuration.
    ///
    /// Classes are balanced in both splits (round-robin assignment before
    /// shuffling).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration has zero classes or zero-sized
    /// images.
    pub fn generate(config: DatasetConfig) -> Result<Self> {
        if config.num_classes == 0 {
            return Err(TensorError::invalid_argument(
                "dataset needs at least one class",
            ));
        }
        if config.height == 0 || config.width == 0 {
            return Err(TensorError::invalid_argument(
                "dataset image size must be non-zero",
            ));
        }
        let gen = ImageGenerator::new(config.height, config.width);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let make_split = |count: usize, rng: &mut StdRng| -> Result<(Vec<Tensor>, Vec<usize>)> {
            let mut images = Vec::with_capacity(count);
            let mut labels = Vec::with_capacity(count);
            for i in 0..count {
                let class = i % config.num_classes;
                images.push(gen.render_class(class, config.num_classes, rng)?);
                labels.push(class);
            }
            // Shuffle consistently.
            let mut order: Vec<usize> = (0..count).collect();
            order.shuffle(rng);
            let images = order.iter().map(|&i| images[i].clone()).collect();
            let labels = order.iter().map(|&i| labels[i]).collect();
            Ok((images, labels))
        };

        let (train_images, train_labels) = make_split(config.train_size, &mut rng)?;
        let (val_images, val_labels) = make_split(config.val_size, &mut rng)?;
        Ok(ClassificationDataset {
            config,
            train_images,
            train_labels,
            val_images,
            val_labels,
        })
    }

    /// The configuration used to generate this dataset.
    pub fn config(&self) -> DatasetConfig {
        self.config
    }

    /// Number of training examples.
    pub fn train_len(&self) -> usize {
        self.train_images.len()
    }

    /// Number of validation examples.
    pub fn val_len(&self) -> usize {
        self.val_images.len()
    }

    /// Training example `i` as `(image, label)`.
    pub fn train_example(&self, i: usize) -> (&Tensor, usize) {
        (&self.train_images[i], self.train_labels[i])
    }

    /// Validation example `i` as `(image, label)`.
    pub fn val_example(&self, i: usize) -> (&Tensor, usize) {
        (&self.val_images[i], self.val_labels[i])
    }

    /// All validation images.
    pub fn val_images(&self) -> &[Tensor] {
        &self.val_images
    }

    /// All validation labels.
    pub fn val_labels(&self) -> &[usize] {
        &self.val_labels
    }

    /// Iterate over training mini-batches of at most `batch_size` examples,
    /// each batch stacked into a `[B, 3, H, W]` tensor.
    ///
    /// # Errors
    ///
    /// Returns an error if `batch_size` is zero.
    pub fn train_batches(&self, batch_size: usize) -> Result<Vec<(Tensor, Vec<usize>)>> {
        Self::batches(&self.train_images, &self.train_labels, batch_size)
    }

    /// Iterate over validation mini-batches (see [`train_batches`](Self::train_batches)).
    ///
    /// # Errors
    ///
    /// Returns an error if `batch_size` is zero.
    pub fn val_batches(&self, batch_size: usize) -> Result<Vec<(Tensor, Vec<usize>)>> {
        Self::batches(&self.val_images, &self.val_labels, batch_size)
    }

    fn batches(
        images: &[Tensor],
        labels: &[usize],
        batch_size: usize,
    ) -> Result<Vec<(Tensor, Vec<usize>)>> {
        if batch_size == 0 {
            return Err(TensorError::invalid_argument("batch size must be non-zero"));
        }
        let mut out = Vec::new();
        let mut start = 0usize;
        while start < images.len() {
            let end = (start + batch_size).min(images.len());
            let batch = Tensor::stack_batch(&images[start..end])?;
            out.push((batch, labels[start..end].to_vec()));
            start = end;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DatasetConfig {
        DatasetConfig {
            num_classes: 4,
            train_size: 16,
            val_size: 8,
            height: 16,
            width: 16,
            seed: 7,
        }
    }

    #[test]
    fn generation_produces_requested_sizes() {
        let ds = ClassificationDataset::generate(small_config()).unwrap();
        assert_eq!(ds.train_len(), 16);
        assert_eq!(ds.val_len(), 8);
        assert_eq!(ds.config().num_classes, 4);
        let (img, label) = ds.train_example(0);
        assert_eq!(img.shape().dims(), &[1, 3, 16, 16]);
        assert!(label < 4);
    }

    #[test]
    fn splits_are_class_balanced() {
        let ds = ClassificationDataset::generate(small_config()).unwrap();
        let mut counts = vec![0usize; 4];
        for i in 0..ds.train_len() {
            counts[ds.train_example(i).1] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "counts={counts:?}");
    }

    #[test]
    fn same_seed_reproduces_dataset() {
        let a = ClassificationDataset::generate(small_config()).unwrap();
        let b = ClassificationDataset::generate(small_config()).unwrap();
        assert_eq!(a.train_example(0).0, b.train_example(0).0);
        assert_eq!(a.val_labels(), b.val_labels());
    }

    #[test]
    fn different_seed_changes_dataset() {
        let a = ClassificationDataset::generate(small_config()).unwrap();
        let mut cfg = small_config();
        cfg.seed = 99;
        let b = ClassificationDataset::generate(cfg).unwrap();
        assert_ne!(a.train_example(0).0, b.train_example(0).0);
    }

    #[test]
    fn batching_covers_all_examples() {
        let ds = ClassificationDataset::generate(small_config()).unwrap();
        let batches = ds.train_batches(5).unwrap();
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 16);
        assert_eq!(batches[0].0.shape().dims(), &[5, 3, 16, 16]);
        // Last batch is the remainder.
        assert_eq!(batches.last().unwrap().1.len(), 1);
        assert!(ds.train_batches(0).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = small_config();
        cfg.num_classes = 0;
        assert!(ClassificationDataset::generate(cfg).is_err());
        let mut cfg = small_config();
        cfg.height = 0;
        assert!(ClassificationDataset::generate(cfg).is_err());
    }
}
