//! Procedural synthetic datasets for the SESR adversarial-defense
//! reproduction.
//!
//! The paper evaluates on ImageNet (classification) and DIV2K (SR training).
//! Neither is available offline, so this crate defines an explicit "natural
//! image manifold": procedurally generated images composed of smooth shading,
//! oriented texture and soft geometric shapes, with class-dependent
//! parameters. The same generator feeds both tasks:
//!
//! * [`classification`] — a labelled dataset where class identity controls
//!   hue, texture orientation/frequency and shape, so that small CNNs can
//!   learn genuinely discriminative features (and gradient-based attacks have
//!   something meaningful to attack).
//! * [`sr`] — high-resolution / low-resolution pairs where the LR image is a
//!   blurred, bicubic-downsampled version of the HR image, exactly how the
//!   DIV2K ×2 bicubic track is produced.
//!
//! All images are NCHW `[1, 3, H, W]` tensors with values in `[0, 1]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classification;
pub mod images;
pub mod sr;

pub use classification::{ClassificationDataset, DatasetConfig};
pub use images::{ImageGenerator, ImageParams};
pub use sr::{SrDataset, SrDatasetConfig};

/// Result alias re-exported from the tensor crate.
pub type Result<T> = sesr_tensor::Result<T>;
