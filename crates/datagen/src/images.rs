//! Procedural "natural manifold" image generator.
//!
//! Images are a composition of three layers that together mimic the
//! statistics super-resolution networks exploit (piecewise-smooth shading,
//! oriented band-limited texture, and sharp-but-sparse edges):
//!
//! 1. a smooth low-frequency shading field (sum of a few random sinusoids),
//! 2. an oriented sinusoidal texture whose frequency and angle are
//!    class-dependent,
//! 3. one or more soft-edged shapes (disc or square) with a class-dependent
//!    base colour.

use crate::Result;
use rand::Rng;
use sesr_tensor::{Shape, Tensor};

/// Parameters controlling one generated image.
///
/// For classification datasets the class index deterministically picks the
/// hue, texture orientation and shape kind; the remaining parameters are
/// sampled per image so the class manifold has genuine intra-class variance.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageParams {
    /// Base colour of the foreground shape, RGB in `[0, 1]`.
    pub base_color: [f32; 3],
    /// Texture orientation in radians.
    pub texture_angle: f32,
    /// Texture spatial frequency in cycles per image.
    pub texture_freq: f32,
    /// Texture amplitude in `[0, 1]`.
    pub texture_amp: f32,
    /// `true` for a disc-shaped foreground object, `false` for a square.
    pub disc_shape: bool,
    /// Shape centre in normalised coordinates `[0, 1]^2`.
    pub shape_center: (f32, f32),
    /// Shape radius / half-width in normalised units.
    pub shape_radius: f32,
    /// Amplitude of the smooth background shading.
    pub shading_amp: f32,
    /// Random phases of the background shading sinusoids.
    pub shading_phase: [f32; 4],
}

impl ImageParams {
    /// Deterministic parameters for a class index, with per-image variation
    /// drawn from `rng`.
    pub fn for_class(class: usize, num_classes: usize, rng: &mut impl Rng) -> Self {
        let t = class as f32 / num_classes.max(1) as f32;
        // Class-dependent hue around the colour wheel.
        let hue = t * std::f32::consts::TAU;
        let base_color = [
            0.5 + 0.45 * hue.cos(),
            0.5 + 0.45 * (hue + 2.0).cos(),
            0.5 + 0.45 * (hue + 4.0).cos(),
        ];
        ImageParams {
            base_color,
            // Class-dependent orientation with small jitter.
            texture_angle: t * std::f32::consts::PI + rng.gen_range(-0.08..0.08),
            // Class-dependent frequency band.
            texture_freq: 2.0 + 10.0 * t + rng.gen_range(-0.5..0.5),
            texture_amp: rng.gen_range(0.10..0.22),
            disc_shape: class.is_multiple_of(2),
            shape_center: (rng.gen_range(0.3..0.7), rng.gen_range(0.3..0.7)),
            shape_radius: rng.gen_range(0.18..0.32),
            shading_amp: rng.gen_range(0.08..0.18),
            shading_phase: [
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.0..std::f32::consts::TAU),
                rng.gen_range(0.0..std::f32::consts::TAU),
            ],
        }
    }

    /// Fully random parameters (used for the SR dataset, where class identity
    /// is irrelevant and diversity matters most).
    pub fn random(rng: &mut impl Rng) -> Self {
        let class = rng.gen_range(0..1000);
        let mut p = ImageParams::for_class(class, 1000, rng);
        p.texture_amp = rng.gen_range(0.05..0.3);
        p.shape_radius = rng.gen_range(0.1..0.4);
        p
    }
}

/// Generator turning [`ImageParams`] into `[1, 3, H, W]` tensors.
#[derive(Debug, Clone, Copy)]
pub struct ImageGenerator {
    height: usize,
    width: usize,
}

impl ImageGenerator {
    /// Create a generator producing images of the given size.
    pub fn new(height: usize, width: usize) -> Self {
        ImageGenerator { height, width }
    }

    /// The configured image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configured image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Render one image from explicit parameters.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors (cannot occur for valid sizes).
    pub fn render(&self, params: &ImageParams) -> Result<Tensor> {
        let (h, w) = (self.height, self.width);
        let mut data = vec![0.0f32; 3 * h * w];
        let (cy, cx) = params.shape_center;
        let ca = params.texture_angle.cos();
        let sa = params.texture_angle.sin();
        for y in 0..h {
            let fy = y as f32 / h as f32;
            for x in 0..w {
                let fx = x as f32 / w as f32;
                // Layer 1: smooth shading.
                let shading = params.shading_amp
                    * ((fx * 2.1 * std::f32::consts::TAU + params.shading_phase[0]).sin()
                        + (fy * 1.3 * std::f32::consts::TAU + params.shading_phase[1]).sin()
                        + ((fx + fy) * 0.9 * std::f32::consts::TAU + params.shading_phase[2])
                            .cos()
                        + ((fx - fy) * 1.7 * std::f32::consts::TAU + params.shading_phase[3])
                            .cos())
                    / 4.0;
                // Layer 2: oriented texture.
                let u = fx * ca + fy * sa;
                let texture =
                    params.texture_amp * (u * params.texture_freq * std::f32::consts::TAU).sin();
                // Layer 3: soft shape mask.
                let mask = if params.disc_shape {
                    let d = ((fx - cx).powi(2) + (fy - cy).powi(2)).sqrt();
                    soft_step(params.shape_radius - d, 0.04)
                } else {
                    let dx = (fx - cx).abs();
                    let dy = (fy - cy).abs();
                    soft_step(params.shape_radius - dx.max(dy), 0.04)
                };
                for c in 0..3 {
                    let background = 0.45 + shading + 0.5 * texture;
                    let foreground = params.base_color[c] + shading + texture;
                    let v = background * (1.0 - mask) + foreground * mask;
                    data[c * h * w + y * w + x] = v.clamp(0.0, 1.0);
                }
            }
        }
        Tensor::from_vec(Shape::new(&[1, 3, h, w]), data)
    }

    /// Render an image for a class index, sampling per-image variation from `rng`.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors (cannot occur for valid sizes).
    pub fn render_class(
        &self,
        class: usize,
        num_classes: usize,
        rng: &mut impl Rng,
    ) -> Result<Tensor> {
        self.render(&ImageParams::for_class(class, num_classes, rng))
    }
}

/// Smooth step that is 0 well below zero, 1 well above zero, with a soft
/// transition of width `softness`.
fn soft_step(x: f32, softness: f32) -> f32 {
    (0.5 + 0.5 * (x / softness).tanh()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rendered_images_are_valid() {
        let gen = ImageGenerator::new(32, 32);
        let mut rng = StdRng::seed_from_u64(0);
        let img = gen.render_class(3, 8, &mut rng).unwrap();
        assert_eq!(img.shape().dims(), &[1, 3, 32, 32]);
        assert!(img.min() >= 0.0 && img.max() <= 1.0);
        // Non-degenerate: some variation.
        assert!(img.max() - img.min() > 0.05);
    }

    #[test]
    fn class_parameters_are_deterministic_given_same_rng() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let pa = ImageParams::for_class(2, 8, &mut a);
        let pb = ImageParams::for_class(2, 8, &mut b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_classes_have_different_colors() {
        let mut rng = StdRng::seed_from_u64(2);
        let p0 = ImageParams::for_class(0, 8, &mut rng);
        let p4 = ImageParams::for_class(4, 8, &mut rng);
        let dist: f32 = p0
            .base_color
            .iter()
            .zip(p4.base_color.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(dist > 0.2, "colour distance {dist} too small");
    }

    #[test]
    fn same_class_images_are_more_similar_than_cross_class() {
        let gen = ImageGenerator::new(24, 24);
        let mut rng = StdRng::seed_from_u64(3);
        // Average several pairs to smooth over per-image variation.
        let mut same = 0.0f32;
        let mut cross = 0.0f32;
        let pairs = 8;
        for _ in 0..pairs {
            let a = gen.render_class(1, 8, &mut rng).unwrap();
            let b = gen.render_class(1, 8, &mut rng).unwrap();
            let c = gen.render_class(5, 8, &mut rng).unwrap();
            same += a.mse(&b).unwrap();
            cross += a.mse(&c).unwrap();
        }
        assert!(
            same < cross,
            "same-class mse {same} should be below cross-class {cross}"
        );
    }

    #[test]
    fn random_params_produce_valid_images() {
        let gen = ImageGenerator::new(48, 48);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..4 {
            let img = gen.render(&ImageParams::random(&mut rng)).unwrap();
            assert!(img.min() >= 0.0 && img.max() <= 1.0);
        }
    }

    #[test]
    fn soft_step_limits() {
        assert!(soft_step(1.0, 0.05) > 0.99);
        assert!(soft_step(-1.0, 0.05) < 0.01);
        assert!((soft_step(0.0, 0.05) - 0.5).abs() < 1e-6);
    }
}
